"""Deterministic, seeded fault injection for the simulated Mochi stack.

Declare a campaign with :class:`FaultPlan` (wire-level drop/duplicate/
delay rules, link partitions, process crash/hang/restart, handler
exceptions and stalls) and execute it with :class:`FaultInjector`.
All randomness flows through :class:`repro.sim.RngRegistry` streams, so
identical ``(plan, seed)`` pairs replay identical fault timelines.

See ``docs/fault-injection.md`` for the fault taxonomy and guarantees.
"""

from .injector import FaultEvent, FaultInjector, HandlerAction, InjectedHandlerError
from .plan import (
    CrashFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    HandlerFaultRule,
    HangFault,
    PartitionWindow,
    RestartFault,
    WireRule,
)

__all__ = [
    "CrashFault",
    "DelayRule",
    "DropRule",
    "DuplicateRule",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HandlerAction",
    "HandlerFaultRule",
    "HangFault",
    "InjectedHandlerError",
    "PartitionWindow",
    "RestartFault",
    "WireRule",
]
