"""Synthetic particle-event files.

The paper's data-loader reads HDF5 files of physics simulation events
from a parallel filesystem; we have neither the Fermilab data nor HDF5.
The stand-in generates files with the same *shape*: a dataset of runs,
subruns, and events whose serialized payloads follow a lognormal size
distribution around ~1 KiB, with real (deterministic, content-bearing)
bytes.  The loader's code path -- key construction, batching, hashing,
put_packed -- is identical to what the real files would drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim import RngRegistry
from ..services.hepnos import event_key

__all__ = ["SyntheticEventFile", "generate_event_files", "flatten_to_pairs"]


@dataclass
class SyntheticEventFile:
    """One input file: events of a single (dataset, run)."""

    dataset: str
    run: int
    #: (subrun, event, payload bytes)
    events: list[tuple[int, int, bytes]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(len(p) for _, _, p in self.events)

    def to_pairs(self) -> list[tuple[str, bytes]]:
        """Event key/value pairs in file order."""
        return [
            (event_key(self.dataset, self.run, subrun, event), payload)
            for subrun, event, payload in self.events
        ]


def _payload(rng: np.random.Generator, size: int) -> bytes:
    """Deterministic pseudo-physics payload of exactly ``size`` bytes."""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def generate_event_files(
    *,
    dataset: str = "NOvA",
    n_files: int = 4,
    events_per_file: int = 256,
    subruns_per_file: int = 4,
    mean_event_bytes: int = 1024,
    sigma: float = 0.35,
    seed: int = 1234,
) -> list[SyntheticEventFile]:
    """Generate ``n_files`` synthetic input files.

    Event payload sizes are lognormal around ``mean_event_bytes`` --
    serialized physics objects are variable-length.
    """
    if n_files < 1 or events_per_file < 1 or subruns_per_file < 1:
        raise ValueError("file, event, and subrun counts must be positive")
    if mean_event_bytes < 1:
        raise ValueError("mean_event_bytes must be positive")
    rng = RngRegistry(seed).stream("synthetic_hdf5")
    files = []
    for run in range(n_files):
        mu = np.log(mean_event_bytes) - sigma**2 / 2
        sizes = np.exp(rng.normal(mu, sigma, size=events_per_file))
        sizes = np.maximum(16, sizes.astype(int))
        events = [
            (
                int(i * subruns_per_file // events_per_file),
                int(i),
                _payload(rng, int(sizes[i])),
            )
            for i in range(events_per_file)
        ]
        files.append(SyntheticEventFile(dataset=dataset, run=run, events=events))
    return files


def flatten_to_pairs(files: list[SyntheticEventFile]) -> list[tuple[str, bytes]]:
    """All files' events as a single key/value stream, in file order."""
    pairs: list[tuple[str, bytes]] = []
    for f in files:
        pairs.extend(f.to_pairs())
    return pairs
