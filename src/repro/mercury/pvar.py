"""Mercury performance variables (PVARs) and the external tool interface.

This implements Section IV-B of the paper verbatim:

* **PVAR classes** (Table I): STATE, COUNTER, TIMER, LEVEL, SIZE,
  HIGHWATERMARK, LOWWATERMARK.
* **PVAR bindings**: ``NO_OBJECT`` for library-global variables and
  ``HANDLE`` for variables scoped to one RPC handle, whose values "go out
  of scope and are lost forever" once the RPC completes.
* **The tool interface**: session init -> query -> handle allocation ->
  sampling -> finalize, mirroring the five steps of Section IV-B-2.

SYMBIOSYS (through Margo) is one client of this interface; the tests use
it directly as an external tool would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "PvarClass",
    "PvarBinding",
    "PvarDef",
    "PvarError",
    "PvarRegistry",
    "PvarSession",
    "PvarHandle",
]


class PvarError(RuntimeError):
    """Protocol violation against the PVAR tool interface."""


class PvarClass(enum.Enum):
    """Table I: the semantic classes a PVAR can have."""

    STATE = "STATE"  # one of a set of discrete states
    COUNTER = "COUNTER"  # monotonically increasing value
    TIMER = "TIMER"  # interval event timer
    LEVEL = "LEVEL"  # utilization level of a resource
    SIZE = "SIZE"  # size of a resource
    HIGHWATERMARK = "HIGHWATERMARK"  # highest recorded value
    LOWWATERMARK = "LOWWATERMARK"  # lowest recorded value


class PvarBinding(enum.Enum):
    NO_OBJECT = "NO_OBJECT"  # global scope within the Mercury instance
    HANDLE = "HANDLE"  # bound to one RPC handle


@dataclass(frozen=True)
class PvarDef:
    """Static description of one exported PVAR (what ``pvar_get_info``
    returns to an external tool)."""

    name: str
    pvar_class: PvarClass
    binding: PvarBinding
    description: str
    #: For NO_OBJECT PVARs whose value is computed on demand (e.g. the
    #: instantaneous completion-queue depth), a zero-arg getter.
    getter: Optional[Callable[[], Any]] = None


class PvarRegistry:
    """Holds the PVAR definitions and NO_OBJECT values for one Mercury
    instance.

    Values live in a flat list parallel to the definitions, so each
    (pvar, binding) key resolves to an integer *slot* exactly once --
    at :meth:`bind_update` / :meth:`reader` time -- and the per-RPC hot
    paths update or read ``_slots[slot]`` without hashing the name.
    The name-based methods keep full protocol validation and remain the
    API for cold paths, tests, and external tools.
    """

    def __init__(self) -> None:
        self._defs: list[PvarDef] = []
        self._index: dict[str, int] = {}
        #: Current value per definition slot (None placeholder for
        #: HANDLE-bound and getter-backed definitions).
        self._slots: list[Any] = []

    # -- definition (library side) -------------------------------------------

    def define(self, pvar_def: PvarDef) -> None:
        if pvar_def.name in self._index:
            raise PvarError(f"duplicate PVAR {pvar_def.name!r}")
        self._index[pvar_def.name] = len(self._defs)
        self._defs.append(pvar_def)
        value: Any = None
        if pvar_def.binding is PvarBinding.NO_OBJECT and pvar_def.getter is None:
            value = 0.0 if pvar_def.pvar_class is PvarClass.TIMER else 0
            if pvar_def.pvar_class is PvarClass.LOWWATERMARK:
                value = None  # no sample yet
        self._slots.append(value)

    @property
    def num_pvars(self) -> int:
        return len(self._defs)

    def info(self, index: int) -> PvarDef:
        if not 0 <= index < len(self._defs):
            raise PvarError(f"PVAR index {index} out of range")
        return self._defs[index]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise PvarError(f"unknown PVAR {name!r}") from None

    # -- interned slots (bind once, update by index) ---------------------------

    def bind_update(self, name: str) -> int:
        """Resolve *name* to its integer slot for unchecked updates.

        All protocol validation (NO_OBJECT binding, not getter-backed)
        happens here, once; afterwards :meth:`add_at` / :meth:`set_at`
        / the watermark variants touch ``_slots[slot]`` directly.
        """
        return self._slot_for_update(name)

    def add_at(self, slot: int, delta: Any = 1) -> None:
        """Unchecked increment of a bound slot (hot path)."""
        self._slots[slot] += delta

    def set_at(self, slot: int, value: Any) -> None:
        """Unchecked write of a bound slot (hot path)."""
        self._slots[slot] = value

    def hiwater_at(self, slot: int, value: Any) -> None:
        """Unchecked HIGHWATERMARK sample into a bound slot."""
        slots = self._slots
        cur = slots[slot]
        if cur is None or value > cur:
            slots[slot] = value

    def lowater_at(self, slot: int, value: Any) -> None:
        """Unchecked LOWWATERMARK sample into a bound slot."""
        slots = self._slots
        cur = slots[slot]
        if cur is None or value < cur:
            slots[slot] = value

    def value_at(self, slot: int) -> Any:
        """Current value of any NO_OBJECT slot (calls getters)."""
        getter = self._defs[slot].getter
        if getter is not None:
            return getter()
        return self._slots[slot]

    def reader(self, name: str) -> Callable[[], Any]:
        """Bind-once zero-arg reader for a NO_OBJECT PVAR.

        Getter-backed definitions hand back the getter itself; stored
        definitions hand back a closure over (slots, slot), so a read
        costs one list index instead of two dict lookups.
        """
        slot = self.index_of(name)
        d = self._defs[slot]
        if d.binding is not PvarBinding.NO_OBJECT:
            raise PvarError(f"{name!r} is HANDLE-bound")
        if d.getter is not None:
            return d.getter
        slots = self._slots
        return lambda: slots[slot]

    # -- updates (library side) ------------------------------------------------

    def _slot_for_update(self, name: str) -> int:
        slot = self.index_of(name)
        d = self._defs[slot]
        if d.binding is not PvarBinding.NO_OBJECT:
            raise PvarError(f"{name!r} is HANDLE-bound; update it on the handle")
        if d.getter is not None:
            raise PvarError(f"{name!r} is computed; it cannot be set")
        return slot

    def set(self, name: str, value: Any) -> None:
        """Direct write (STATE / LEVEL semantics)."""
        self._slots[self._slot_for_update(name)] = value

    def add(self, name: str, delta: Any = 1) -> None:
        """Increment (COUNTER semantics; LEVEL may also go up/down)."""
        slot = self._slot_for_update(name)
        if self._defs[slot].pvar_class is PvarClass.COUNTER and delta < 0:
            raise PvarError(f"COUNTER {name!r} cannot decrease")
        self._slots[slot] += delta

    def watermark(self, name: str, value: Any) -> None:
        """Record a sample into a HIGH/LOWWATERMARK PVAR."""
        slot = self._slot_for_update(name)
        cls = self._defs[slot].pvar_class
        if cls is PvarClass.HIGHWATERMARK:
            self.hiwater_at(slot, value)
        elif cls is PvarClass.LOWWATERMARK:
            self.lowater_at(slot, value)
        else:
            raise PvarError(f"{name!r} is not a watermark PVAR")

    def raw_value(self, name: str) -> Any:
        d = self._defs[self.index_of(name)]
        if d.binding is not PvarBinding.NO_OBJECT:
            raise PvarError(f"{name!r} is HANDLE-bound")
        if d.getter is not None:
            return d.getter()
        return self._slots[self._index[name]]


@dataclass
class PvarHandle:
    """An allocated reference to one PVAR within a session."""

    session: "PvarSession"
    index: int
    freed: bool = False


class PvarSession:
    """One external tool's sampling session against a Mercury instance.

    Follows the paper's five-step protocol; every step validates its
    preconditions so misuse is caught loudly.
    """

    _next_id = 1

    def __init__(self, registry: PvarRegistry):
        self._registry = registry
        self.session_id = PvarSession._next_id
        PvarSession._next_id += 1
        self._finalized = False
        self._handles: list[PvarHandle] = []

    # -- step 2: query -----------------------------------------------------

    def get_num_pvars(self) -> int:
        self._check_live()
        return self._registry.num_pvars

    def get_info(self, index: int) -> PvarDef:
        self._check_live()
        return self._registry.info(index)

    def index_of(self, name: str) -> int:
        self._check_live()
        return self._registry.index_of(name)

    # -- step 3: allocate handles -------------------------------------------

    def handle_alloc(self, index: int) -> PvarHandle:
        self._check_live()
        self._registry.info(index)  # validates range
        h = PvarHandle(session=self, index=index)
        self._handles.append(h)
        return h

    def handle_alloc_by_name(self, name: str) -> PvarHandle:
        return self.handle_alloc(self.index_of(name))

    # -- step 4: sample -----------------------------------------------------

    def read(self, pvar_handle: PvarHandle, hg_handle: Any = None) -> Any:
        self._check_live()
        if pvar_handle.session is not self:
            raise PvarError("PVAR handle belongs to a different session")
        if pvar_handle.freed:
            raise PvarError("PVAR handle already freed")
        d = self._registry.info(pvar_handle.index)
        if d.binding is PvarBinding.HANDLE:
            if hg_handle is None:
                raise PvarError(
                    f"{d.name!r} is HANDLE-bound; a Mercury handle is required"
                )
            return hg_handle.pvar_get(d.name)
        return self._registry.raw_value(d.name)

    def read_by_name(self, name: str, hg_handle: Any = None) -> Any:
        """Convenience: allocate-free read by name (tests / tooling)."""
        idx = self.index_of(name)
        d = self._registry.info(idx)
        if d.binding is PvarBinding.HANDLE:
            if hg_handle is None:
                raise PvarError(
                    f"{d.name!r} is HANDLE-bound; a Mercury handle is required"
                )
            return hg_handle.pvar_get(d.name)
        return self._registry.raw_value(d.name)

    def reader(self, name: str) -> Callable[[], Any]:
        """Bind a zero-arg reader for a NO_OBJECT PVAR once, so a
        per-RPC sample is one call instead of name resolution +
        validation each time (SYMBIOSYS's t14 fusion path)."""
        self._check_live()
        return self._registry.reader(name)

    # -- step 5: finalize ------------------------------------------------------

    def handle_free(self, pvar_handle: PvarHandle) -> None:
        self._check_live()
        if pvar_handle.freed:
            raise PvarError("PVAR handle already freed")
        pvar_handle.freed = True

    def finalize(self) -> None:
        self._check_live()
        for h in self._handles:
            h.freed = True
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    def _check_live(self) -> None:
        if self._finalized:
            raise PvarError("PVAR session already finalized")
