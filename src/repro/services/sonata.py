"""Sonata: remote JSON object storage with in-place queries.

Backed by an UnQLite-like embedded document collection.  Crucially for
the Figure 7 case study, documents travel **as RPC metadata** (not bulk):
large ``store_multi_json`` batches overflow Mercury's eager buffer and
exercise the internal-RDMA path, and deserialization is a visible
fraction of the target-side execution time.

Queries are a small Jx9-like filter language evaluated against the
stored documents -- real evaluation over real documents, with a per-
document scan cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..argobots import Compute
from ..margo import MargoInstance
from ..mercury import HGHandle, estimate_size

__all__ = [
    "SonataCosts",
    "SonataProvider",
    "SonataClient",
    "evaluate_filter",
]

RPC_CREATE_DB = "sonata_create_database"
RPC_STORE_MULTI = "sonata_store_multi_json"
RPC_FETCH = "sonata_fetch_json"
RPC_FILTER = "sonata_execute_jx9"
RPC_UPDATE = "sonata_update_json"
RPC_SIZE = "sonata_collection_size"
_ALL_RPCS = (
    RPC_CREATE_DB,
    RPC_STORE_MULTI,
    RPC_FETCH,
    RPC_FILTER,
    RPC_UPDATE,
    RPC_SIZE,
)

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
    "contains": lambda a, b: b in a if a is not None else False,
}


def evaluate_filter(doc: dict, query: dict) -> bool:
    """Evaluate a Jx9-like filter: ``{"and": [...]}, {"or": [...]}``, or a
    leaf ``{"field": f, "op": o, "value": v}``."""
    if "and" in query:
        return all(evaluate_filter(doc, q) for q in query["and"])
    if "or" in query:
        return any(evaluate_filter(doc, q) for q in query["or"])
    try:
        op = _OPS[query["op"]]
    except KeyError:
        raise ValueError(f"unknown filter op {query.get('op')!r}") from None
    return op(doc.get(query["field"]), query["value"])


@dataclass(frozen=True)
class SonataCosts:
    """UnQLite-like engine cost model."""

    create_fixed: float = 2.0e-6
    store_fixed: float = 0.45e-6  # per document insert
    store_per_byte: float = 0.45e-9
    fetch_fixed: float = 0.7e-6
    scan_per_doc: float = 0.35e-6  # Jx9 VM per-document evaluation


class _Collection:
    """One UnQLite-backed document collection (ids are dense ints)."""

    def __init__(self, name: str):
        self.name = name
        self.docs: list[dict] = []

    def append(self, doc: dict) -> int:
        self.docs.append(doc)
        return len(self.docs) - 1


class SonataProvider:
    """Server-side Sonata provider."""

    def __init__(
        self,
        mi: MargoInstance,
        provider_id: int = 0,
        costs: Optional[SonataCosts] = None,
    ):
        self.mi = mi
        self.provider_id = provider_id
        self.costs = costs or SonataCosts()
        self.collections: dict[str, _Collection] = {}
        mi.register(RPC_CREATE_DB, self._h_create, provider_id)
        mi.register(RPC_STORE_MULTI, self._h_store_multi, provider_id)
        mi.register(RPC_FETCH, self._h_fetch, provider_id)
        mi.register(RPC_FILTER, self._h_filter, provider_id)
        mi.register(RPC_UPDATE, self._h_update, provider_id)
        mi.register(RPC_SIZE, self._h_size, provider_id)

    def _collection(self, name: str) -> _Collection:
        try:
            return self.collections[name]
        except KeyError:
            raise ValueError(f"unknown Sonata collection {name!r}") from None

    # -- handlers ---------------------------------------------------------------

    def _h_create(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(self.costs.create_fixed)
        name = inp["collection"]
        if name in self.collections:
            yield from mi.respond(handle, {"ret": -1, "error": "exists"})
            return
        self.collections[name] = _Collection(name)
        yield from mi.respond(handle, {"ret": 0})

    def _h_store_multi(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        # The record array arrives as metadata; get_input charges the
        # deserialization that Figure 7 highlights.
        inp = yield from mi.get_input(handle)
        coll = self._collection(inp["collection"])
        ids = []
        for doc in inp["records"]:
            nbytes = estimate_size(doc)
            yield Compute(
                self.costs.store_fixed + self.costs.store_per_byte * nbytes
            )
            ids.append(coll.append(doc))
            mi.stats.add_memory(nbytes)
        yield from mi.respond(handle, {"ret": 0, "ids": ids})

    def _h_fetch(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        coll = self._collection(inp["collection"])
        yield Compute(self.costs.fetch_fixed)
        doc_id = inp["id"]
        doc = coll.docs[doc_id] if 0 <= doc_id < len(coll.docs) else None
        yield from mi.respond(
            handle, {"ret": 0 if doc is not None else -1, "record": doc}
        )

    def _h_filter(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        coll = self._collection(inp["collection"])
        yield Compute(self.costs.scan_per_doc * max(1, len(coll.docs)))
        matches = [
            doc for doc in coll.docs if evaluate_filter(doc, inp["query"])
        ]
        yield from mi.respond(handle, {"ret": 0, "records": matches})

    def _h_update(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """In-place update: set fields on every document matching the
        filter (the Jx9 'update' idiom)."""
        inp = yield from mi.get_input(handle)
        coll = self._collection(inp["collection"])
        yield Compute(self.costs.scan_per_doc * max(1, len(coll.docs)))
        updated = 0
        for doc in coll.docs:
            if evaluate_filter(doc, inp["query"]):
                yield Compute(self.costs.store_fixed)
                doc.update(inp["set"])
                updated += 1
        yield from mi.respond(handle, {"ret": 0, "updated": updated})

    def _h_size(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        coll = self._collection(inp["collection"])
        yield Compute(self.costs.fetch_fixed)
        yield from mi.respond(handle, {"ret": 0, "size": len(coll.docs)})


class SonataClient:
    """Client-side Sonata wrapper."""

    def __init__(self, mi: MargoInstance):
        self.mi = mi
        for rpc in _ALL_RPCS:
            mi.register(rpc)

    def create_database(
        self, target: str, provider_id: int, collection: str
    ) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_CREATE_DB, {"collection": collection}, provider_id
        )
        return out["ret"]

    def store_multi(
        self,
        target: str,
        provider_id: int,
        collection: str,
        records: list[dict],
        batch_size: Optional[int] = None,
    ) -> Generator:
        """Store a record array in batches of ``batch_size`` (the Figure 7
        benchmark parameter).  Returns the ids of the stored records."""
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        batch_size = batch_size or len(records) or 1
        ids: list[int] = []
        for start in range(0, len(records), batch_size):
            out = yield from self.mi.forward(
                target,
                RPC_STORE_MULTI,
                {
                    "collection": collection,
                    "records": records[start : start + batch_size],
                },
                provider_id,
            )
            ids.extend(out["ids"])
        return ids

    def fetch(
        self, target: str, provider_id: int, collection: str, doc_id: int
    ) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_FETCH, {"collection": collection, "id": doc_id}, provider_id
        )
        return out["record"]

    def filter(
        self, target: str, provider_id: int, collection: str, query: dict
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_FILTER,
            {"collection": collection, "query": query},
            provider_id,
        )
        return out["records"]

    def update(
        self,
        target: str,
        provider_id: int,
        collection: str,
        query: dict,
        set_fields: dict,
    ) -> Generator:
        """Set ``set_fields`` on every matching document; returns the
        number of documents updated."""
        out = yield from self.mi.forward(
            target,
            RPC_UPDATE,
            {"collection": collection, "query": query, "set": set_fields},
            provider_id,
        )
        return out["updated"]

    def size(self, target: str, provider_id: int, collection: str) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_SIZE, {"collection": collection}, provider_id
        )
        return out["size"]
