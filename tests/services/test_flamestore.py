"""Tests for the FlameStore model-checkpoint service."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.flamestore import (
    FlameStoreClient,
    FlameStoreDeployment,
    FlameStoreError,
)
from repro.sim import RngRegistry, Simulator


def make_store(n_workers=3):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    dep = FlameStoreDeployment.deploy(sim, fabric, n_workers=n_workers)
    mi = MargoInstance(sim, fabric, "trainer", "tnode")
    client = FlameStoreClient(mi, dep)
    return sim, dep, mi, client


def run_gen(sim, mi, gen, limit=10.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def sample_tensors(n_layers=5, size=2048, seed=9):
    rng = RngRegistry(seed).stream("model")
    return {
        f"layer{i}": rng.integers(0, 256, size=size, dtype="uint8").tobytes()
        for i in range(n_layers)
    }


def test_checkpoint_and_reload_bit_exact():
    sim, dep, mi, client = make_store()
    tensors = sample_tensors()

    def flow():
        yield from client.checkpoint("resnet", tensors)
        return (yield from client.load_model("resnet"))

    restored = run_gen(sim, mi, flow())
    assert restored == tensors


def test_layers_placed_round_robin_across_workers():
    sim, dep, mi, client = make_store(n_workers=3)
    tensors = sample_tensors(n_layers=6)

    def flow():
        return (yield from client.checkpoint("m", tensors))

    placement = run_gen(sim, mi, flow())
    workers = list(placement.values())
    assert set(workers) == {f"flame-worker{i}" for i in range(3)}
    # Round-robin: each worker got exactly two of the six layers.
    assert all(workers.count(w) == 2 for w in set(workers))
    # And the tensors physically live on the workers (BAKE regions).
    assert all(p.regions for p in dep.bake_providers)


def test_duplicate_model_rejected():
    sim, dep, mi, client = make_store()

    def flow():
        yield from client.register_model("dup", [("l", 8)])
        try:
            yield from client.register_model("dup", [("l", 8)])
        except FlameStoreError as exc:
            return str(exc)

    assert "exists" in run_gen(sim, mi, flow())


def test_commit_requires_all_layers():
    sim, dep, mi, client = make_store()

    def flow():
        placement = yield from client.register_model(
            "partial", [("a", 8), ("b", 8)]
        )
        yield from client.write_layer("partial", "a", placement, b"x" * 8)
        try:
            yield from client.commit_model("partial")
        except FlameStoreError as exc:
            return str(exc)

    assert "missing layers" in run_gen(sim, mi, flow())


def test_load_uncommitted_rejected():
    sim, dep, mi, client = make_store()

    def flow():
        yield from client.register_model("wip", [("a", 8)])
        try:
            yield from client.load_model("wip")
        except FlameStoreError as exc:
            return str(exc)

    assert "not committed" in run_gen(sim, mi, flow())


def test_unknown_model_and_layer_errors():
    sim, dep, mi, client = make_store()

    def flow():
        errors = []
        try:
            yield from client.load_model("ghost")
        except FlameStoreError as exc:
            errors.append(str(exc))
        try:
            yield from client.write_layer("ghost", "l", {}, b"x")
        except FlameStoreError as exc:
            errors.append(str(exc))
        return errors

    errors = run_gen(sim, mi, flow())
    assert len(errors) == 2


def test_list_models_reports_status():
    sim, dep, mi, client = make_store()

    def flow():
        yield from client.checkpoint("done", sample_tensors(n_layers=2))
        yield from client.register_model("wip", [("a", 8)])
        return (yield from client.list_models())

    models = run_gen(sim, mi, flow())
    assert models == [["done", True], ["wip", False]] or models == [
        ("done", True),
        ("wip", False),
    ]


def test_deploy_validation():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    with pytest.raises(ValueError):
        FlameStoreDeployment.deploy(sim, fabric, n_workers=0)
