"""Terminal-rendered plots for the analysis scripts.

The paper's summary scripts "generate visual plots"; this module renders
the three plot families as text so they work anywhere the library runs:

* :func:`gantt` -- the Figure 5 request Gantt chart from a stitched
  :class:`~repro.symbiosys.analysis.trace_summary.RequestTrace`,
* :func:`scatter` -- the Figure 10 blocked-ULT scatter,
* :func:`timeseries` -- the Figure 12 PVAR sample series with an
  optional threshold line.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .trace_summary import RequestTrace

__all__ = ["gantt", "scatter", "timeseries"]


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    pos = int((value - lo) / (hi - lo) * (width - 1))
    return min(width - 1, max(0, pos))


def gantt(request: RequestTrace, width: int = 72) -> str:
    """Gantt chart of one request's spans on a common timeline.

    Each row is one span: ``|===X===|`` marks [t1, t14] with ``X`` at the
    target execution interval [t5, t8].
    """
    spans = [s for root in request.roots for s in root.walk() if s.complete]
    if not spans:
        return "(no complete spans)"
    t_lo = min(s.t1 for s in spans)
    t_hi = max(s.t14 for s in spans)
    name_w = max(len(s.rpc_name) for s in spans) + 2
    lines = [
        f"request {request.request_id}: "
        f"{(t_hi - t_lo) * 1e6:.1f} us end to end"
    ]

    def emit(span, depth):
        row = [" "] * width
        a = _scale(span.t1, t_lo, t_hi, width)
        b = _scale(span.t14, t_lo, t_hi, width)
        for i in range(a, b + 1):
            row[i] = "="
        x1 = _scale(span.t5, t_lo, t_hi, width)
        x2 = _scale(span.t8, t_lo, t_hi, width)
        for i in range(x1, x2 + 1):
            row[i] = "#"
        row[a] = "|"
        row[b] = "|"
        label = ("  " * depth + span.rpc_name).ljust(name_w)[:name_w]
        lines.append(f"{label}{''.join(row)}")
        for child in span.children:
            emit(child, depth + 1)

    for root in request.roots:
        emit(root, 0)
    lines.append(
        f"{'':{name_w}}{'^t=' + format((0.0), '.0f'):<{width // 2}}"
        f"{'(=' + ' wire/origin, # target execution)':>{width // 2}}"
    )
    return "\n".join(lines)


def scatter(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 72,
    height: int = 16,
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Dot plot of (x, y) samples -- the Figure 10 rendering."""
    if not points:
        return "(no samples)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = "*"
    lines = [f"{y_label} (max {y_hi:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}")
    return "\n".join(lines)


def timeseries(
    samples: Sequence[tuple[float, float]],
    *,
    threshold: Optional[float] = None,
    width: int = 72,
    height: int = 12,
    label: str = "value",
) -> str:
    """Sample series with an optional horizontal threshold line -- the
    Figure 12 rendering (e.g. num_ofi_events_read vs OFI_max_events)."""
    if not samples:
        return "(no samples)"
    xs = [s[0] for s in samples]
    ys = [s[1] for s in samples]
    y_hi = max(max(ys), threshold or 0)
    y_lo = min(min(ys), 0)
    x_lo, x_hi = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    if threshold is not None:
        t_row = height - 1 - _scale(threshold, y_lo, y_hi, height)
        for c in range(width):
            grid[t_row][c] = "-"
    for x, y in samples:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = "*"
    lines = [f"{label} (max {max(ys):g}"
             + (f", threshold {threshold:g})" if threshold is not None else ")")]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" t: {x_lo:g} .. {x_hi:g}")
    return "\n".join(lines)
