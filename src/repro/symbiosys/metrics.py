"""Online metrics primitives for the always-on telemetry layer.

SYMBIOSYS's pitch is *always-on, low-overhead* measurement, yet the
original workflow is post-mortem: profiles and traces materialize after
the run.  This module is the in-flight half: a small, fully deterministic
metrics vocabulary (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) behind a :class:`MetricsRegistry`, plus bounded
ring-buffer :class:`TimeSeries` the
:class:`~repro.symbiosys.monitor.Monitor` fills while the simulation is
still running.

Design constraints (all load-bearing for the determinism tests):

* No wall-clock reads anywhere -- every sample is stamped with the
  *simulated* time handed in by the caller.
* Bounded memory -- time-series are ring buffers; once full they drop
  the oldest sample and count the loss instead of growing.
* Deterministic iteration -- registries and stores render their contents
  in sorted ``(name, labels)`` order so exports are byte-stable.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Iterable, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SeriesStore",
    "TimeSeries",
]

#: Default histogram bucket upper bounds (queue depths / event counts).
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Optional[dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing value (Prometheus ``counter``)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += delta

    def set_total(self, total: float) -> None:
        """Adopt an externally maintained cumulative total (e.g. a
        COUNTER-class PVAR sampled by the monitor)."""
        if total < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot go backward "
                f"({total} < {self.value})"
            )
        self.value = total


class Gauge:
    """Instantaneous value that may go up or down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, delta: float = 1) -> None:
        self.value += delta

    def dec(self, delta: float = 1) -> None:
        self.value -= delta


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus ``histogram``).

    ``bounds`` are upper bucket edges; an implicit ``+Inf`` bucket
    catches the rest.  Counts, sum, and bucket layout are all plain
    integers/floats -- no randomness, no wall clock.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        if len(set(self.bounds)) != len(self.bounds):
            raise ValueError("histogram bounds must be distinct")
        #: Per-bucket (non-cumulative) counts; index len(bounds) is +Inf.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last --
        the ``_bucket{le=...}`` series of the Prometheus exposition."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


Metric = Any  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by ``(name, labels)``.

    One metric *family* (name) has one type and one help string; label
    sets distinguish instances (typically ``{"process": addr}``).
    Iteration order is sorted, so rendering the registry is
    deterministic regardless of creation order.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}
        #: name -> (type string, help string)
        self._families: dict[str, tuple[str, str]] = {}

    # -- creation ---------------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> None:
        existing = self._families.get(name)
        if existing is None:
            self._families[name] = (kind, help)
        elif existing[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {existing[0]}, not a {kind}"
            )

    def counter(
        self, name: str, help: str = "", labels: Optional[dict] = None
    ) -> Counter:
        self._family(name, "counter", help)
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter(name, key[1])
        return metric

    def gauge(
        self, name: str, help: str = "", labels: Optional[dict] = None
    ) -> Gauge:
        self._family(name, "gauge", help)
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[dict] = None,
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        self._family(name, "histogram", help)
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(name, key[1], bounds)
        return metric

    # -- introspection ----------------------------------------------------

    def family_info(self, name: str) -> tuple[str, str]:
        return self._families[name]

    def families(self) -> list[str]:
        return sorted(self._families)

    def collect(self) -> Iterator[tuple[str, str, str, list[Metric]]]:
        """Yield ``(name, kind, help, metrics)`` per family, sorted by
        family name, metrics sorted by labels."""
        by_family: dict[str, list[Metric]] = {}
        for (name, _labels), metric in self._metrics.items():
            by_family.setdefault(name, []).append(metric)
        for name in sorted(by_family):
            kind, help = self._families[name]
            metrics = sorted(by_family[name], key=lambda m: m.labels)
            yield name, kind, help, metrics

    def __len__(self) -> int:
        return len(self._metrics)


class TimeSeries:
    """A bounded ``(time, value)`` ring buffer for one metric instance.

    Appending past capacity evicts the oldest sample and increments
    :attr:`dropped`; the window always holds the *latest* ``capacity``
    samples, which is what live monitoring wants.

    Storage is a pair of parallel ``array('d')`` ring buffers, so an
    append is two C-level scalar writes -- no tuple allocation on the
    sampling hot path.  Values are coerced to float; every consumer
    (CSV export, threshold checks) treats them numerically.
    """

    __slots__ = ("name", "labels", "capacity", "dropped", "_t", "_v", "_head")

    def __init__(self, name: str, labels: LabelItems = (), capacity: int = 4096):
        if capacity < 1:
            raise ValueError("time-series capacity must be positive")
        self.name = name
        self.labels = labels
        self.capacity = capacity
        self.dropped = 0
        self._t = array("d")
        self._v = array("d")
        self._head = 0  # index of the oldest sample once wrapped

    def append(self, t: float, value: float) -> None:
        tcol = self._t
        if len(tcol) < self.capacity:
            tcol.append(t)
            self._v.append(value)
        else:
            head = self._head
            tcol[head] = t
            self._v[head] = value
            self._head = (head + 1) % self.capacity
            self.dropped += 1

    def samples(self) -> list[tuple[float, float]]:
        """Chronological ``(time, value)`` list of the retained window."""
        head = self._head
        times = self._t
        values = self._v
        if head:
            order = list(range(head, len(times))) + list(range(head))
            return [(times[i], values[i]) for i in order]
        return list(zip(times, values))

    def latest(self) -> Optional[tuple[float, float]]:
        if not self._t:
            return None
        head = self._head - 1
        return (self._t[head], self._v[head])

    def __len__(self) -> int:
        return len(self._t)


class SeriesStore:
    """All time-series of one monitor, keyed like registry metrics."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._series: dict[tuple[str, LabelItems], TimeSeries] = {}

    def series(self, name: str, labels: Optional[dict] = None) -> TimeSeries:
        key = (name, _label_items(labels))
        ts = self._series.get(key)
        if ts is None:
            ts = self._series[key] = TimeSeries(name, key[1], self.capacity)
        return ts

    def all_series(self) -> list[TimeSeries]:
        """Every series, sorted by ``(name, labels)`` for stable export."""
        return [self._series[key] for key in sorted(self._series)]

    @property
    def total_samples(self) -> int:
        return sum(len(ts) for ts in self._series.values())

    def __len__(self) -> int:
        return len(self._series)
