"""Tests for SDSKV snapshotting and REMI-based database migration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.argobots import AbtRuntime
from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.remi import RemiClient, RemiProvider
from repro.services.sdskv import SdskvProvider, make_database
from repro.services.sdskv.snapshot import (
    decode_value,
    dump_database,
    encode_value,
    load_snapshot,
    migrate_database,
)
from repro.sim import Simulator


# ------------------------------------------------------------ codec


def test_encode_decode_scalars():
    for v in (None, True, False, 7, 3.5, "text"):
        assert decode_value(encode_value(v)) == v


def test_encode_decode_bytes_and_tuples():
    assert decode_value(encode_value(b"\x00\xff")) == b"\x00\xff"
    assert decode_value(encode_value((1, b"x", "s"))) == (1, b"x", "s")


def test_encode_decode_nested():
    value = {"rows": [(1, b"a"), (2, b"b")], "meta": {"n": 2}}
    assert decode_value(encode_value(value)) == value


def test_encode_rejects_unknown_types():
    with pytest.raises(TypeError):
        encode_value(object())


def test_encode_rejects_tag_collision():
    with pytest.raises(ValueError):
        encode_value({"__b64__": "sneaky"})


payload_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**53), 2**53),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(max_size=6).filter(
                lambda k: k not in ("__b64__", "__tuple__")
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(payload_values)
@settings(max_examples=80)
def test_property_codec_roundtrip(value):
    assert decode_value(encode_value(value)) == value


# ------------------------------------------------------------ snapshots


def make_db_world():
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    rt.create_xstream(pool)
    return sim, rt, pool


def test_dump_and_load_snapshot():
    sim, rt, pool = make_db_world()
    src = make_database("map", rt, db_id=0)
    dst = make_database("map", rt, db_id=1)
    done = {}

    def body():
        yield from src.put_many(
            [("a", {"x": 1}), ("b", b"blob"), ("c", [1, 2, 3])]
        )
        snap = dump_database(src)
        done["n"] = yield from load_snapshot(dst, snap)
        done["a"] = yield from dst.get("a")
        done["b"] = yield from dst.get("b")

    rt.spawn(body(), pool)
    sim.run(until=1.0)
    assert done["n"] == 3
    assert done["a"] == {"x": 1}
    assert done["b"] == b"blob"
    assert len(dst) == len(src)


# ------------------------------------------------------------ full migration


def test_migrate_database_between_providers():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    src_mi = MargoInstance(sim, fabric, "src", "n0")
    dst_mi = MargoInstance(sim, fabric, "dst", "n1")
    # Source hosts sdskv + the REMI origin; destination hosts sdskv + REMI.
    src_skv = SdskvProvider(src_mi, provider_id=2, n_databases=1)
    dst_skv = SdskvProvider(dst_mi, provider_id=2, n_databases=1)
    dst_remi = RemiProvider(dst_mi, provider_id=3)
    remi = RemiClient(src_mi)

    pairs = [(f"k{i:03d}", b"v" * (i + 1)) for i in range(40)]
    done = {}

    def body():
        yield from src_skv.databases[0].put_many(pairs)
        n = yield from migrate_database(
            remi,
            src_skv.databases[0],
            "dst",
            3,
            dst_skv.databases[0],
            name="db0-migration",
        )
        done["n"] = n

    src_mi.client_ult(body())
    assert sim.run_until(lambda: "n" in done, limit=5.0)
    assert done["n"] == 40
    # Destination backend holds the exact data.
    assert len(dst_skv.databases[0]) == 40
    assert dst_skv.databases[0]._data["k005"] == b"v" * 6
    # The REMI provider recorded the fileset (audit trail).
    assert "db0-migration" in dst_remi.filesets
    snap = dst_remi.filesets["db0-migration"].files["db.snapshot"]
    assert len(snap) > 100


def test_migration_cost_scales_with_content():
    durations = {}
    for n_pairs in (10, 500):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig())
        src_mi = MargoInstance(sim, fabric, "src", "n0")
        dst_mi = MargoInstance(sim, fabric, "dst", "n1")
        src_skv = SdskvProvider(src_mi, provider_id=2)
        dst_skv = SdskvProvider(dst_mi, provider_id=2)
        RemiProvider(dst_mi, provider_id=3)
        remi = RemiClient(src_mi)
        done = {}

        def body(n=n_pairs):
            yield from src_skv.databases[0].put_many(
                [(f"k{i}", b"x" * 100) for i in range(n)]
            )
            t0 = sim.now
            yield from migrate_database(
                remi, src_skv.databases[0], "dst", 3,
                dst_skv.databases[0], name="m",
            )
            done["dt"] = sim.now - t0

        src_mi.client_ult(body())
        assert sim.run_until(lambda: "dt" in done, limit=10.0)
        durations[n_pairs] = done["dt"]
    assert durations[500] > 3 * durations[10]
