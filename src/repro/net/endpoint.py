"""Network endpoints with OFI-style completion queues.

An endpoint belongs to one simulated process.  Completion events pile up
in its queue until a progress loop drains them with
:meth:`Endpoint.cq_read` -- reading at most ``max_events`` entries per
call, exactly like Mercury's ``OFI_max_events`` bound on
``fi_cq_read``.  The number of entries actually returned is what the
``num_ofi_events_read`` PVAR reports (Figure 12); the time entries sit in
the queue is the OFI backlog that shows up as unaccounted request time
(Figure 11).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim import Simulator
from .message import CQEntry

__all__ = ["Endpoint"]


class Endpoint:
    """A process's attachment point to the fabric."""

    def __init__(self, sim: Simulator, addr: str, node: str = ""):
        self.sim = sim
        self.addr = addr
        self.node = node
        self._cq: deque[CQEntry] = deque()
        self._armed: list[Callable[[], None]] = []
        #: Deepest the CQ has ever been (saturation metric).
        self.cq_high_watermark = 0
        #: Total entries ever enqueued / read.
        self.total_enqueued = 0
        self.total_read = 0
        #: A closed endpoint models a crashed process' NIC: deliveries are
        #: discarded and the fabric refuses sends originating from it.
        self.closed = False
        self.total_discarded = 0

    # -- lifecycle (crash / restart support) ----------------------------------

    def close(self) -> None:
        """Stop accepting completions; queued entries are lost with the
        process."""
        self.closed = True
        self._cq.clear()
        self._armed.clear()

    def reopen(self) -> None:
        """Bring the endpoint back after a simulated process restart."""
        self.closed = False

    # -- producer side (called by the fabric) --------------------------------

    def push(self, entry: CQEntry) -> None:
        if self.closed:
            self.total_discarded += 1
            return
        self._cq.append(entry)
        self.total_enqueued += 1
        if len(self._cq) > self.cq_high_watermark:
            self.cq_high_watermark = len(self._cq)
        if self._armed:
            callbacks, self._armed = self._armed, []
            for cb in callbacks:
                cb()

    # -- consumer side (called by the Mercury progress loop) ------------------

    @property
    def cq_depth(self) -> int:
        return len(self._cq)

    def cq_read(self, max_events: int) -> list[CQEntry]:
        """Drain up to ``max_events`` completion entries (non-blocking)."""
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        n = min(max_events, len(self._cq))
        out = [self._cq.popleft() for _ in range(n)]
        self.total_read += n
        return out

    def arm(self, callback: Callable[[], None]) -> Callable[[], None]:
        """One-shot notification: run ``callback`` when the CQ next becomes
        non-empty (immediately if it already is).

        Returns a disarm function; calling it withdraws the callback if it
        has not fired yet (safe to call after firing).
        """
        if self._cq:
            callback()

            def _noop() -> None:
                return None

            return _noop
        self._armed.append(callback)

        def _disarm() -> None:
            try:
                self._armed.remove(callback)
            except ValueError:
                pass

        return _disarm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Endpoint({self.addr!r}, node={self.node!r}, cq={len(self._cq)})"
