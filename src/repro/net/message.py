"""Wire messages and completion-queue entries.

The network layer transports opaque payloads between endpoints; Mercury
gives the payloads meaning (RPC requests, responses, RDMA reads).  A
delivered message, a completed local send, and a completed RDMA transfer
each surface as a :class:`CQEntry` in an endpoint's completion queue --
the queue whose drain rate Figure 12 is about.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "CQEntry", "CQKind"]

_msg_ids = itertools.count(1)


class CQKind(enum.Enum):
    """What a completion-queue entry notifies."""

    RECV = "recv"  # a message arrived from the fabric
    SEND_COMPLETE = "send_complete"  # a local send finished injecting
    RDMA_COMPLETE = "rdma_complete"  # an RDMA get/put we initiated finished


@dataclass
class Message:
    """A message in flight on the fabric."""

    src: str
    dst: str
    size_bytes: int
    payload: Any
    kind: str = "data"
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")


@dataclass
class CQEntry:
    """One entry in an endpoint completion queue."""

    kind: CQKind
    payload: Any
    #: True simulated time the entry was enqueued; the gap between this and
    #: the time it is read is the OFI backlog delay (part of the
    #: "unaccounted" component in Figure 11).
    enqueued_at: float = 0.0
