"""Seeded, virtual-node-weighted consistent-hash ring.

Tokens come from sha256 (first 8 bytes, little-endian) so placement is
identical across processes and interpreter runs — Python's builtin
``hash()`` is salted per process and must never leak into placement.
Each node contributes ``vnodes`` points on the ring; a key is owned by
the first node token at or clockwise of the key's token.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing", "h64"]


def h64(text: str) -> int:
    """Stable 64-bit hash of ``text`` (sha256 prefix, little-endian)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "little")


class HashRing:
    """Consistent-hash ring over node addresses.

    ``seed`` perturbs every token, so two rings with different seeds
    give independent placements while a fixed seed is fully
    deterministic.  ``weights`` scales a node's virtual-node count
    (weight 2.0 -> twice the vnodes -> roughly twice the keyspace).
    """

    def __init__(self, seed: int = 0, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.seed = seed
        self.vnodes = vnodes
        self._nodes: dict[str, int] = {}  # addr -> vnode count
        self._tokens: list[int] = []
        self._owners: list[str] = []

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, addr: str) -> bool:
        return addr in self._nodes

    def _token(self, addr: str, vnode: int) -> int:
        return h64(f"{addr}#{vnode}#{self.seed}")

    def add_node(self, addr: str, weight: float = 1.0) -> None:
        if addr in self._nodes:
            raise ValueError(f"{addr!r} already on ring")
        count = max(1, round(self.vnodes * weight))
        self._nodes[addr] = count
        for v in range(count):
            token = self._token(addr, v)
            i = bisect.bisect_left(self._tokens, token)
            # sha256 collisions are out of scope; break ties by address
            # so insertion order can't leak into placement.
            while i < len(self._tokens) and self._tokens[i] == token and self._owners[i] < addr:
                i += 1
            self._tokens.insert(i, token)
            self._owners.insert(i, addr)

    def remove_node(self, addr: str) -> None:
        if addr not in self._nodes:
            raise ValueError(f"{addr!r} not on ring")
        del self._nodes[addr]
        keep = [(t, o) for t, o in zip(self._tokens, self._owners) if o != addr]
        self._tokens = [t for t, _ in keep]
        self._owners = [o for _, o in keep]

    def replace(self, members: Iterable[str]) -> None:
        """Reset the ring to exactly ``members`` (weight 1 each)."""
        self._nodes = {}
        self._tokens = []
        self._owners = []
        for addr in members:
            self.add_node(addr)

    # -- lookup ------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """Owner of ``key``: first node token clockwise of the key."""
        if not self._tokens:
            raise LookupError("ring is empty")
        i = bisect.bisect_right(self._tokens, h64(key))
        if i == len(self._tokens):
            i = 0
        return self._owners[i]

    def token_counts(self) -> dict[str, int]:
        """Virtual-node count actually placed per node (sorted keys)."""
        counts: dict[str, int] = {}
        for o in self._owners:
            counts[o] = counts.get(o, 0) + 1
        return dict(sorted(counts.items()))
