"""Unit and property tests for callpath ancestry encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.symbiosys import (
    CallpathRegistry,
    MAX_DEPTH,
    components,
    depth,
    hash16,
    push,
)


def test_hash16_is_stable_and_nonzero():
    assert hash16("sdskv_put_packed") == hash16("sdskv_put_packed")
    for name in ("a", "b", "mobject_write_op", ""):
        assert 1 <= hash16(name) <= 0xFFFF


def test_push_from_root():
    code = push(0, "op")
    assert code == hash16("op")
    assert depth(code) == 1


def test_push_chains_shift_left_16():
    c1 = push(0, "a")
    c2 = push(c1, "b")
    assert c2 == ((c1 << 16) | hash16("b"))
    assert components(c2) == [hash16("a"), hash16("b")]


def test_depth_counts_components():
    code = 0
    for i, name in enumerate(["a", "b", "c", "d"]):
        code = push(code, name)
        assert depth(code) == i + 1


def test_depth_overflow_drops_oldest():
    """A fifth push loses the first ancestor -- the paper's depth-4
    limitation, made explicit."""
    names = ["a", "b", "c", "d", "e"]
    code = 0
    for name in names:
        code = push(code, name)
    assert depth(code) == MAX_DEPTH
    assert components(code) == [hash16(n) for n in names[1:]]


def test_components_of_root():
    assert components(0) == []
    assert depth(0) == 0


def test_out_of_range_codes_rejected():
    with pytest.raises(ValueError):
        push(-1, "x")
    with pytest.raises(ValueError):
        push(1 << 64, "x")
    with pytest.raises(ValueError):
        components(-1)


def test_registry_decode_known_chain():
    reg = CallpathRegistry()
    reg.register("mobject_write_op")
    reg.register("sdskv_put_rpc")
    code = push(push(0, "mobject_write_op"), "sdskv_put_rpc")
    assert reg.decode(code) == "mobject_write_op -> sdskv_put_rpc"


def test_registry_decode_root():
    assert CallpathRegistry().decode(0) == "<root>"


def test_registry_unknown_component():
    reg = CallpathRegistry()
    code = push(0, "never_registered")
    assert "unknown" in reg.decode(code)


def test_registry_collision_flagged():
    reg = CallpathRegistry()
    reg.register("x")
    # Forge a collision by injecting a second name at the same hash.
    h = hash16("x")
    reg._names[h] = "x"
    reg.collisions.setdefault(h, {"x"}).add("y")
    assert "ambiguous" in reg.name_of(h)


def test_registry_known_names_sorted():
    reg = CallpathRegistry()
    for name in ("b_op", "a_op", "c_op"):
        reg.register(name)
    assert reg.known_names() == ["a_op", "b_op", "c_op"]


@given(st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=4))
def test_property_chain_roundtrip_within_depth(names):
    """Up to depth 4, components() recovers exactly the pushed sequence."""
    code = 0
    for name in names:
        code = push(code, name)
    assert components(code) == [hash16(n) for n in names]


@given(st.lists(st.text(min_size=1, max_size=30), min_size=5, max_size=12))
def test_property_deep_chain_keeps_last_four(names):
    code = 0
    for name in names:
        code = push(code, name)
    assert components(code) == [hash16(n) for n in names[-4:]]


@given(st.integers(0, (1 << 64) - 1), st.text(min_size=1, max_size=20))
def test_property_push_stays_in_64_bits(code, name):
    assert 0 <= push(code, name) < (1 << 64)


@given(st.text(min_size=0, max_size=50))
def test_property_hash16_range(name):
    assert 1 <= hash16(name) <= 0xFFFF
