"""Property tests for the consistent-hash ring.

The three load-bearing properties from the issue: placement is
deterministic across seeds *and* OS processes (no ``hash()``
randomization leakage), removing one of N nodes remaps only ~K/N keys
(monotone remapping), and virtual nodes balance the keyspace within a
tolerance band.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import HashRing, ShardMap
from repro.shard.ring import h64

NODES = [f"kv{i}" for i in range(16)]
KEYS = [f"key-{i}" for i in range(2000)]


def make_ring(nodes=NODES, seed=7, vnodes=64):
    ring = HashRing(seed=seed, vnodes=vnodes)
    for n in nodes:
        ring.add_node(n)
    return ring


# -- determinism -----------------------------------------------------------


def test_placement_deterministic_same_seed():
    a = make_ring()
    b = make_ring()
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_placement_independent_of_insertion_order():
    a = make_ring(NODES)
    b = make_ring(list(reversed(NODES)))
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_different_seeds_give_different_placements():
    a = make_ring(seed=1)
    b = make_ring(seed=2)
    assert [a.node_for(k) for k in KEYS] != [b.node_for(k) for k in KEYS]


def test_placement_deterministic_across_processes():
    """Run the same placement in a child interpreter (fresh hash seed)
    and compare: sha256 tokens must make it byte-identical."""
    prog = (
        "from repro.shard import HashRing\n"
        "r = HashRing(seed=7, vnodes=32)\n"
        "for i in range(8): r.add_node(f'kv{i}')\n"
        "print(';'.join(r.node_for(f'key-{i}') for i in range(200)))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", prog],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    ).stdout.strip()
    ring = HashRing(seed=7, vnodes=32)
    for i in range(8):
        ring.add_node(f"kv{i}")
    local = ";".join(ring.node_for(f"key-{i}") for i in range(200))
    assert out == local


# -- monotone remapping ----------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_remove_node_moves_only_its_keys(victim, seed):
    """Monotone remapping: keys not owned by the removed node must not
    move at all, and the removed node's ~K/N share is re-spread."""
    ring = make_ring(seed=seed)
    before = {k: ring.node_for(k) for k in KEYS}
    dead = NODES[victim]
    ring.remove_node(dead)
    after = {k: ring.node_for(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    assert all(before[k] == dead for k in moved)
    assert all(after[k] != dead for k in KEYS)
    # ~K/N keys move; allow generous variance on top of the expectation.
    assert len(moved) <= 3 * len(KEYS) / len(NODES)


def test_add_node_only_steals_keys():
    ring = make_ring()
    before = {k: ring.node_for(k) for k in KEYS}
    ring.add_node("kv-new")
    after = {k: ring.node_for(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    assert all(after[k] == "kv-new" for k in moved)
    assert 0 < len(moved) <= 3 * len(KEYS) / len(NODES)


# -- virtual-node balance --------------------------------------------------


def test_vnode_balance_within_tolerance_band():
    ring = make_ring(vnodes=128)
    counts = {n: 0 for n in NODES}
    for k in KEYS:
        counts[ring.node_for(k)] += 1
    mean = len(KEYS) / len(NODES)
    for n, c in counts.items():
        assert 0.4 * mean <= c <= 1.9 * mean, (n, c, mean)


def test_weighted_node_gets_proportional_share():
    ring = HashRing(seed=3, vnodes=128)
    for n in NODES[:8]:
        ring.add_node(n)
    ring.add_node("big", weight=4.0)
    counts = {n: 0 for n in NODES[:8]}
    counts["big"] = 0
    for k in KEYS:
        counts[ring.node_for(k)] += 1
    mean_small = sum(counts[n] for n in NODES[:8]) / 8
    assert counts["big"] > 2 * mean_small


# -- API edges -------------------------------------------------------------


def test_ring_rejects_duplicates_and_unknown_removal():
    ring = make_ring(NODES[:2])
    with pytest.raises(ValueError):
        ring.add_node(NODES[0])
    with pytest.raises(ValueError):
        ring.remove_node("ghost")
    with pytest.raises(LookupError):
        HashRing().node_for("k")


def test_replace_resets_membership():
    ring = make_ring()
    ring.replace(["a", "b"])
    assert ring.nodes == ["a", "b"]
    assert ring.node_for("k") in ("a", "b")


def test_h64_is_stable():
    # Pin one value so an accidental hash-function change is loud.
    assert h64("shard:0") == h64("shard:0")
    assert h64("a") != h64("b")


# -- shard map -------------------------------------------------------------


def test_shard_map_build_and_diff():
    ring = make_ring()
    old = ShardMap.build(ring, n_shards=64, version=1)
    assert len(old.owners) == 64
    assert old.owner_of_key("k") == old.owners[old.shard_of("k")]
    ring.remove_node(NODES[0])
    new = ShardMap.build(ring, n_shards=64, version=2)
    moves = old.diff(new)
    assert all(m.src == NODES[0] for m in moves)
    assert sorted(m.shard for m in moves) == [m.shard for m in moves]
    assert set(old.shards_on(NODES[0])) == {m.shard for m in moves}


def test_shard_map_diff_requires_same_shard_count():
    ring = make_ring()
    with pytest.raises(ValueError):
        ShardMap.build(ring, 8).diff(ShardMap.build(ring, 16))
    with pytest.raises(ValueError):
        ShardMap.build(ring, 0)
