"""Runtime invariant checkers.

An :class:`InvariantMonitor` attaches to a cluster through the same
observer seams the online telemetry uses -- the Argobots scheduler
observer, the Mercury progress observer, and the Margo instrumentation
hooks -- and asserts, *while the run unfolds*:

* **clock monotonicity** -- no observer callback ever sees simulated
  time move backwards,
* **ULT state machine** -- created -> ready -> running ->
  blocked/terminated; a terminated ULT must never be scheduled again,
  and a ULT leaving its execution stream must not still be RUNNING,
* **pool conservation** -- for every Argobots pool,
  ``total_pushed - total_popped == len(pool)``,
* **RPC lifecycle ordering** -- the Figure 2 stage marks must be
  non-decreasing on each side of the wire (origin: t1 <= t14; target:
  t3 <= t4 <= t5 <= t8 <= t13),
* **byte conservation** -- every byte injected into the fabric is
  eventually delivered, dropped, discarded, or handed to a peer logical
  process: ``total + duplicated + imported == delivered + dropped +
  discarded + inflight + exported`` (the exported/imported terms are
  zero outside partitioned parallel runs),
* **drain on exit** -- after the teardown drain no live process holds
  completion-queue backlog or posted-but-unanswered handles (relaxed
  under fault injection, where late responses are legitimate).

Every violation is recorded with simulated time, invariant name,
process address, and callpath (RPC or ULT name).  In ``strict`` mode
(the default) :meth:`InvariantMonitor.finalize` raises
:class:`InvariantViolationError`; with ``strict=False`` the fuzz runner
reads :attr:`InvariantMonitor.violations` instead.

Checkers are pure observers: they read state, never mutate the
workload, and add no simulated time -- a validated run has the same
makespan and the same export digests as an unvalidated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..config import Replaceable
from ..margo.hooks import CompositeInstrumentation, Instrumentation

if TYPE_CHECKING:  # pragma: no cover
    from ..argobots.ult import ULT
    from ..argobots.xstream import ExecutionStream
    from ..margo import MargoInstance
    from ..mercury import HGHandle
    from ..net import Fabric
    from ..sim import Simulator

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "ValidationConfig",
]


@dataclass(frozen=True, kw_only=True)
class ValidationConfig(Replaceable):
    """Knobs of one :class:`InvariantMonitor`."""

    #: Raise :class:`InvariantViolationError` from ``finalize`` when any
    #: violation was recorded.  ``False`` collects silently (the fuzz
    #: runner's mode).
    strict: bool = True
    #: Check completion-queue / posted-handle drain at finalize.
    check_drain: bool = True
    #: Cap on recorded violations; further ones only increment
    #: :attr:`InvariantMonitor.dropped` (a broken invariant usually fires
    #: on every subsequent event).
    max_violations: int = 100

    def __post_init__(self) -> None:
        if self.max_violations < 1:
            raise ValueError("max_violations must be positive")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to localize it."""

    time: float
    invariant: str
    process: str
    callpath: str
    message: str

    def render(self) -> str:
        where = self.process or "-"
        path = self.callpath or "-"
        return (
            f"{self.time * 1e3:12.6f} ms  {self.invariant:<20} "
            f"{where:<14} {path:<24} {self.message}"
        )


class InvariantViolationError(AssertionError):
    """Raised by ``finalize`` in strict mode; carries the violations."""

    def __init__(self, violations: list[InvariantViolation]):
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [f"  {v.render()}" for v in violations[:10]]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        super().__init__("\n".join(lines))


class _SchedChecker:
    """Per-process scheduler observer: clock + ULT state machine."""

    def __init__(self, monitor: "InvariantMonitor", mi: "MargoInstance"):
        self.monitor = monitor
        self.addr = mi.addr
        #: id(ULT) -> "live" | "terminated" (ids are stable while the
        #: ULT object is referenced here, which pins it).
        self._known: dict[int, tuple["ULT", str]] = {}
        #: Per-ES end time of the last reported slice.
        self._es_last_end: dict[str, float] = {}

    def on_spawn(self, ult: "ULT") -> None:
        from ..argobots.ult import UltState

        self._known[id(ult)] = (ult, "live")
        if ult.state is not UltState.READY:
            self.monitor.record(
                "ult_state_machine",
                f"spawned ULT in state {ult.state.value!r}, expected ready",
                process=self.addr,
                callpath=ult.name,
            )

    def on_slice(
        self, es: "ExecutionStream", ult: "ULT", start: float, end: float
    ) -> None:
        from ..argobots.ult import UltState

        mon = self.monitor
        mon.observe_time(end, self.addr, ult.name)
        if end < start:
            mon.record(
                "clock_monotonicity",
                f"run slice ends before it starts ({start} -> {end})",
                process=self.addr,
                callpath=ult.name,
            )
        last = self._es_last_end.get(es.name)
        if last is not None and start < last:
            mon.record(
                "clock_monotonicity",
                f"ES {es.name} slice starts at {start} before previous "
                f"slice ended at {last}",
                process=self.addr,
                callpath=ult.name,
            )
        self._es_last_end[es.name] = end

        entry = self._known.get(id(ult))
        if entry is not None and entry[1] == "terminated":
            mon.record(
                "ult_state_machine",
                "terminated ULT scheduled again",
                process=self.addr,
                callpath=ult.name,
            )
        if ult.state is UltState.RUNNING:
            mon.record(
                "ult_state_machine",
                "ULT still RUNNING after leaving its execution stream",
                process=self.addr,
                callpath=ult.name,
            )
        if ult.state is UltState.TERMINATED:
            self._known[id(ult)] = (ult, "terminated")


#: Expected non-decreasing stage marks per handle side (Figure 2).
_ORIGIN_ORDER = ("t1", "t14")
_TARGET_ORDER = ("t3", "t4", "t5", "t8", "t13")


class _RpcLifecycleChecker(Instrumentation):
    """Instrumentation hooks asserting t1..t14 stage ordering."""

    def __init__(self, monitor: "InvariantMonitor", mi: "MargoInstance"):
        self.monitor = monitor
        self.addr = mi.addr

    def _check_order(self, handle: "HGHandle", order: tuple[str, ...]) -> None:
        present = [(m, handle.marks[m]) for m in order if m in handle.marks]
        for (m_a, t_a), (m_b, t_b) in zip(present, present[1:]):
            if t_b < t_a:
                self.monitor.record(
                    "rpc_lifecycle",
                    f"stage {m_b} at {t_b} precedes {m_a} at {t_a}",
                    process=self.addr,
                    callpath=handle.rpc_name,
                )

    def on_forward(self, mi, handle, ult) -> None:
        self.monitor.observe_time(
            handle.marks.get("t1", mi.sim.now), self.addr, handle.rpc_name
        )

    def on_forward_complete(self, mi, handle, ult, t1, t14) -> None:
        # t14 is the completion-callback mark; the origin ULT resumes a
        # scheduling quantum later, by which time concurrent clients may
        # already have advanced the global watermark.  Feed the resume
        # time; t14's ordering is covered by the t1/t14 check below.
        self.monitor.observe_time(mi.sim.now, self.addr, handle.rpc_name)
        if t14 < t1:
            self.monitor.record(
                "rpc_lifecycle",
                f"completion t14={t14} precedes issue t1={t1}",
                process=self.addr,
                callpath=handle.rpc_name,
            )
        self._check_order(handle, _ORIGIN_ORDER)

    def on_handler_start(self, mi, handle, ult) -> None:
        self.monitor.observe_time(
            handle.marks.get("t5", mi.sim.now), self.addr, handle.rpc_name
        )
        self._check_order(handle, _TARGET_ORDER)

    def on_respond(self, mi, handle, ult) -> None:
        self._check_order(handle, _TARGET_ORDER)

    def on_handler_end(self, mi, handle, ult) -> None:
        self._check_order(handle, _TARGET_ORDER)


class InvariantMonitor:
    """The validation hub for one simulated cluster.

    Wire it by hand (``attach`` each MargoInstance, ``finalize()`` after
    the teardown drain) or let :class:`~repro.cluster.Cluster` do both
    via ``Cluster(validate=True)`` /
    ``Cluster(validate=ValidationConfig(...))``.
    """

    def __init__(
        self,
        sim: "Simulator",
        *,
        fabric: Optional["Fabric"] = None,
        config: Optional[ValidationConfig] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.config = config or ValidationConfig()
        self.violations: list[InvariantViolation] = []
        #: Violations beyond the ``max_violations`` cap.
        self.dropped = 0
        self._processes: dict[str, "MargoInstance"] = {}
        self._sched_checkers: dict[str, _SchedChecker] = {}
        self._last_time = sim.now
        self._finalized = False

    # -- wiring -------------------------------------------------------------

    def attach(self, mi: "MargoInstance") -> None:
        """Adopt one process: scheduler, progress, and RPC hooks."""
        if mi.addr in self._processes:
            raise ValueError(f"process {mi.addr!r} already validated")
        self._processes[mi.addr] = mi
        checker = _SchedChecker(self, mi)
        self._sched_checkers[mi.addr] = checker
        mi.rt.add_sched_observer(checker)
        mi.hg.add_progress_observer(
            lambda t, n, mi=mi: self._on_progress(mi, t, n)
        )
        # The instrumentation slot is single-occupancy; wrap whatever is
        # installed (possibly a NullInstrumentation) so SYMBIOSYS
        # measurement and lifecycle checking coexist.
        mi.instr = CompositeInstrumentation(
            [mi.instr, _RpcLifecycleChecker(self, mi)]
        )

    # -- recording ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations and not self.dropped

    def record(
        self, invariant: str, message: str, *, process: str = "", callpath: str = ""
    ) -> None:
        if len(self.violations) >= self.config.max_violations:
            self.dropped += 1
            return
        self.violations.append(
            InvariantViolation(
                time=self.sim.now,
                invariant=invariant,
                process=process,
                callpath=callpath,
                message=message,
            )
        )

    def observe_time(self, t: float, process: str, callpath: str = "") -> None:
        """Feed one observed timestamp into the monotonicity check."""
        if t < self._last_time:
            self.record(
                "clock_monotonicity",
                f"observed time {t} after {self._last_time}",
                process=process,
                callpath=callpath,
            )
        else:
            self._last_time = t

    # -- periodic checks (ride the progress observer) -----------------------

    def _on_progress(self, mi: "MargoInstance", t: float, n: int) -> None:
        self.observe_time(t, mi.addr, "progress")
        self._check_pools(mi)
        self._check_fabric()

    def _check_pools(self, mi: "MargoInstance") -> None:
        for pool in mi.rt.pools:
            drift = pool.total_pushed - pool.total_popped - len(pool)
            if drift != 0:
                self.record(
                    "pool_conservation",
                    f"pool {pool.name}: pushed {pool.total_pushed} - popped "
                    f"{pool.total_popped} != depth {len(pool)} "
                    f"(drift {drift:+d})",
                    process=mi.addr,
                    callpath=pool.name,
                )

    def _check_fabric(self) -> None:
        f = self.fabric
        if f is None:
            return
        exported = getattr(f, "exported_bytes", 0)
        imported = getattr(f, "imported_bytes", 0)
        injected = f.total_bytes + f.duplicated_bytes + imported
        accounted = (
            f.delivered_bytes
            + f.dropped_bytes
            + f.discarded_bytes
            + f.inflight_bytes
            + exported
        )
        if injected != accounted:
            self.record(
                "byte_conservation",
                f"injected {injected} B != delivered {f.delivered_bytes} + "
                f"dropped {f.dropped_bytes} + discarded {f.discarded_bytes} "
                f"+ inflight {f.inflight_bytes} + exported {exported}",
            )
        if f.inflight_bytes < 0:
            self.record(
                "byte_conservation",
                f"negative in-flight byte gauge: {f.inflight_bytes}",
            )

    # -- finalize -----------------------------------------------------------

    def finalize(self, *, allow_undrained: bool = False) -> None:
        """Run the end-of-run checks; in strict mode raise on violations.

        Call after the teardown drain.  ``allow_undrained`` relaxes the
        drain-on-exit invariants -- under fault injection late responses
        and abandoned handles are legitimate outcomes, not bugs.
        Idempotent; crashed processes are always exempt from drain
        checks (their queues died with them).
        """
        if self._finalized:
            return
        self._finalized = True
        for mi in self._processes.values():
            self._check_pools(mi)
            if not self.config.check_drain or allow_undrained or mi.crashed:
                continue
            backlog = mi.endpoint.cq_depth
            if backlog:
                self.record(
                    "drain_on_exit",
                    f"{backlog} OFI completion(s) never progressed",
                    process=mi.addr,
                )
            if mi.hg.has_pending_completions:
                self.record(
                    "drain_on_exit",
                    f"{len(mi.hg._completion_queue)} Mercury callback(s) "
                    "never triggered",
                    process=mi.addr,
                )
            if mi.hg._posted:
                names = sorted(
                    {h.rpc_name for h, _ in mi.hg._posted.values()}
                )
                self.record(
                    "drain_on_exit",
                    f"{len(mi.hg._posted)} posted handle(s) never completed",
                    process=mi.addr,
                    callpath=",".join(names),
                )
        self._check_fabric()
        if (
            self.fabric is not None
            and not allow_undrained
            and self.fabric.inflight_bytes != 0
        ):
            self.record(
                "drain_on_exit",
                f"{self.fabric.inflight_bytes} bytes still on the wire",
            )
        if self.config.strict and not self.ok:
            raise InvariantViolationError(list(self.violations))

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        """Deterministic plain-text violation listing."""
        total = len(self.violations) + self.dropped
        lines = [f"invariant violations ({total}):"]
        lines += [f"  {v.render()}" for v in self.violations]
        if self.dropped:
            lines.append(f"  ... {self.dropped} further violation(s) dropped")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvariantMonitor(processes={len(self._processes)}, "
            f"violations={len(self.violations)})"
        )
