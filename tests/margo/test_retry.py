"""RetryPolicy semantics and the forward retry loop."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.margo import (
    Instrumentation,
    MargoTimeoutError,
    RemoteRpcError,
    RetryPolicy,
)

from .conftest import echo_handler


# -- policy unit tests --------------------------------------------------------


def test_delay_is_exponential_and_clamped():
    p = RetryPolicy(backoff=1e-3, backoff_factor=2.0, max_backoff=10e-3)
    assert p.delay(1) == pytest.approx(1e-3)
    assert p.delay(2) == pytest.approx(2e-3)
    assert p.delay(4) == pytest.approx(8e-3)
    assert p.delay(10) == pytest.approx(10e-3)  # clamped


def test_delay_jitter_stays_in_bounds():
    p = RetryPolicy(backoff=1e-3, backoff_factor=1.0, jitter=0.5)
    rng = np.random.default_rng(0)
    for _ in range(100):
        d = p.delay(1, rng)
        assert 0.5e-3 <= d <= 1.5e-3
    # No rng supplied -> jitter is skipped, not an error.
    assert p.delay(1) == pytest.approx(1e-3)


def test_delay_attempt_is_one_based():
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


@pytest.mark.parametrize(
    "kw",
    [
        {"max_attempts": 0},
        {"timeout": 0.0},
        {"backoff": -1e-3},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
    ],
)
def test_policy_validation(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


def test_policy_is_keyword_only_and_replaceable():
    with pytest.raises(TypeError):
        RetryPolicy(5)
    p = RetryPolicy(max_attempts=2)
    q = p.replace(timeout=5.0)
    assert q.max_attempts == 2 and q.timeout == 5.0
    assert p.timeout == 1.0


def test_target_for_rotates_through_failover_ring():
    p = RetryPolicy(failover=["b", "c"])  # list normalized to tuple
    assert p.failover == ("b", "c")
    assert [p.target_for("a", i) for i in range(1, 5)] == ["a", "b", "c", "a"]
    no_failover = RetryPolicy()
    assert no_failover.target_for("a", 3) == "a"


# -- integration: the forward retry loop --------------------------------------


def _slow_then_fast_handler(stalls):
    """Echo handler that oversleeps for its first ``stalls`` invocations."""
    state = {"calls": 0}

    def handler(mi, handle):
        state["calls"] += 1
        inp = yield from mi.get_input(handle)
        if state["calls"] <= stalls:
            yield from mi.rt.sleep(20e-3)
        yield from mi.respond(handle, {"echo": inp})

    return handler, state


def _one_forward(cluster, client, target, results, *, timeout=None, retry=None):
    def body():
        try:
            out = yield from client.forward(
                target, "echo", {"x": 1}, timeout=timeout, retry=retry
            )
            results.append(("ok", out))
        except (MargoTimeoutError, RemoteRpcError) as exc:
            results.append(("err", exc))

    client.client_ult(body())


def test_retry_recovers_from_slow_server():
    with Cluster(seed=0, stage=None) as cluster:
        handler, state = _slow_then_fast_handler(stalls=2)
        server = cluster.process("svr", "nA", n_handler_es=2)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        policy = RetryPolicy(max_attempts=4, timeout=1e-3, backoff=0.1e-3)
        results = []
        _one_forward(cluster, client, "svr", results, retry=policy)
        assert cluster.run_until(lambda: results, limit=1.0)
        status, out = results[0]
        assert status == "ok" and out == {"echo": {"x": 1}}
        assert state["calls"] == 3
        counters = client.resilience_counters()
        assert counters["num_forward_timeouts"] == 2
        assert counters["num_forward_retries"] == 2
        assert counters["num_failed_over_forwards"] == 0


def test_retry_exhaustion_raises_timeout():
    with Cluster(seed=0, stage=None) as cluster:
        handler, state = _slow_then_fast_handler(stalls=99)
        server = cluster.process("svr", "nA", n_handler_es=2)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        policy = RetryPolicy(max_attempts=2, timeout=1e-3, backoff=0.1e-3)
        results = []
        _one_forward(cluster, client, "svr", results, retry=policy)
        assert cluster.run_until(lambda: results, limit=1.0)
        status, exc = results[0]
        assert status == "err" and isinstance(exc, MargoTimeoutError)
        counters = client.resilience_counters()
        assert counters["num_forward_timeouts"] == 2
        assert counters["num_forward_retries"] == 1


def test_failover_reaches_backup_server():
    with Cluster(seed=0, stage=None) as cluster:
        stuck, _ = _slow_then_fast_handler(stalls=99)
        primary = cluster.process("primary", "nA", n_handler_es=1)
        primary.register("echo", stuck)
        backup = cluster.process("backup", "nB", n_handler_es=1)
        backup.register("echo", echo_handler)
        client = cluster.process("cli", "nC")
        client.register("echo")
        policy = RetryPolicy(
            max_attempts=2, timeout=1e-3, backoff=0.1e-3, failover=("backup",)
        )
        results = []
        _one_forward(cluster, client, "primary", results, retry=policy)
        assert cluster.run_until(lambda: results, limit=1.0)
        status, out = results[0]
        assert status == "ok" and out == {"echo": {"x": 1}}
        counters = client.resilience_counters()
        assert counters["num_failed_over_forwards"] == 1
        assert counters["num_forward_retries"] == 1


def _error_then_ok_handler(errors):
    state = {"calls": 0}

    def handler(mi, handle):
        state["calls"] += 1
        inp = yield from mi.get_input(handle)
        if state["calls"] <= errors:
            raise ValueError("transient")
        yield from mi.respond(handle, {"echo": inp})

    return handler, state


@pytest.mark.parametrize("retry_remote,expected_calls", [(False, 1), (True, 3)])
def test_remote_errors_retried_only_when_opted_in(retry_remote, expected_calls):
    with Cluster(seed=0, stage=None) as cluster:
        handler, state = _error_then_ok_handler(errors=2)
        server = cluster.process("svr", "nA", n_handler_es=1)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        policy = RetryPolicy(
            max_attempts=4,
            timeout=10e-3,
            backoff=0.1e-3,
            retry_remote_errors=retry_remote,
        )
        results = []
        _one_forward(cluster, client, "svr", results, retry=policy)
        assert cluster.run_until(lambda: results, limit=1.0)
        status, payload = results[0]
        if retry_remote:
            assert status == "ok"
        else:
            assert status == "err" and isinstance(payload, RemoteRpcError)
        assert state["calls"] == expected_calls


def test_per_call_policy_overrides_instance_default():
    with Cluster(seed=0, stage=None, retry=RetryPolicy(max_attempts=1, timeout=1e-3)) as cluster:
        handler, state = _slow_then_fast_handler(stalls=1)
        server = cluster.process("svr", "nA", n_handler_es=2)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        results = []
        # Instance default (1 attempt) would fail; the per-call policy wins.
        _one_forward(
            cluster, client, "svr", results,
            retry=RetryPolicy(max_attempts=3, timeout=1e-3, backoff=0.1e-3),
        )
        assert cluster.run_until(lambda: results, limit=1.0)
        assert results[0][0] == "ok"
        assert state["calls"] == 2


def test_explicit_timeout_overrides_policy_timeout():
    with Cluster(seed=0, stage=None) as cluster:
        handler, _ = _slow_then_fast_handler(stalls=99)
        server = cluster.process("svr", "nA", n_handler_es=1)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        policy = RetryPolicy(max_attempts=1, timeout=50e-3)
        results = []
        _one_forward(
            cluster, client, "svr", results, timeout=1e-3, retry=policy
        )
        assert cluster.run_until(lambda: results, limit=1.0)
        status, exc = results[0]
        assert status == "err"
        assert exc.timeout == pytest.approx(1e-3)


def test_retry_hooks_fire_on_instrumentation():
    class Recorder(Instrumentation):
        def __init__(self):
            self.timeouts = []
            self.retries = []

        def on_forward_timeout(self, mi, handle, ult, timeout):
            self.timeouts.append((mi.addr, timeout))

        def on_forward_retry(self, mi, handle, ult, attempt, delay, target):
            self.retries.append((attempt, target))

    recorder = Recorder()
    with Cluster(
        seed=0, stage=None, instrumentation_factory=lambda: recorder
    ) as cluster:
        handler, _ = _slow_then_fast_handler(stalls=1)
        server = cluster.process("svr", "nA", n_handler_es=2)
        server.register("echo", handler)
        client = cluster.process("cli", "nB")
        client.register("echo")
        policy = RetryPolicy(max_attempts=3, timeout=1e-3, backoff=0.1e-3)
        results = []
        _one_forward(cluster, client, "svr", results, retry=policy)
        assert cluster.run_until(lambda: results, limit=1.0)
        assert results[0][0] == "ok"
    assert recorder.timeouts == [("cli", pytest.approx(1e-3))]
    assert recorder.retries == [(1, "svr")]
