"""Table II: the list of available performance variables.

Queries a live Mercury instance through the PVAR session interface and
verifies every (name, class, binding) row of the paper's Table II.
"""

from repro.argobots import AbtRuntime
from repro.mercury import HGCore
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.experiments import ascii_table
from .conftest import run_once

#: name -> (class, binding), as printed in the paper's Table II.
PAPER_TABLE_II = {
    "num_posted_handles": ("LEVEL", "NO_OBJECT"),
    "completion_queue_size": ("STATE", "NO_OBJECT"),
    "num_ofi_events_read": ("LEVEL", "NO_OBJECT"),
    "num_rpcs_invoked": ("COUNTER", "NO_OBJECT"),
    "internal_rdma_transfer_time": ("TIMER", "HANDLE"),
    "input_serialization_time": ("TIMER", "HANDLE"),
    "input_deserialization_time": ("TIMER", "HANDLE"),
    "origin_completion_callback_time": ("TIMER", "HANDLE"),
}


def _enumerate_pvars():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    rt = AbtRuntime(sim)
    hg = HGCore(sim, fabric, fabric.create_endpoint("p"), rt)
    session = hg.pvar_session_init()
    rows = []
    for i in range(session.get_num_pvars()):
        info = session.get_info(i)
        rows.append(
            {
                "PVAR Name": info.name,
                "Description": info.description,
                "PVAR Class": info.pvar_class.value,
                "PVAR Binding": info.binding.value,
            }
        )
    session.finalize()
    return rows


def test_table2_pvar_list(benchmark, report):
    rows = run_once(benchmark, _enumerate_pvars)
    report.append("Table II: List of Available Performance Variables")
    report.append(ascii_table(rows))
    by_name = {r["PVAR Name"]: r for r in rows}
    for name, (cls, binding) in PAPER_TABLE_II.items():
        assert name in by_name, f"Table II PVAR {name} missing"
        assert by_name[name]["PVAR Class"] == cls
        assert by_name[name]["PVAR Binding"] == binding
    # The implementation may export more than the paper lists, never less.
    assert len(rows) >= len(PAPER_TABLE_II)
    benchmark.extra_info["num_pvars"] = len(rows)
