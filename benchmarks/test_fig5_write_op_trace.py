"""Figure 5: Zipkin trace of a single mobject_write_op request.

Runs ior over Mobject (one provider node, 10 colocated clients), stitches
the distributed trace, and exports one write_op request as an OpenZipkin
JSON document: the root span plus its 12 discrete SDSKV/BAKE child calls.
"""

import json

from repro.experiments import run_mobject_experiment
from repro.symbiosys.zipkin import to_zipkin_json
from repro.workloads import IorConfig
from .conftest import run_once


def _run():
    return run_mobject_experiment(
        n_clients=10,
        ior_config=IorConfig(objects_per_client=2, read_iterations=1),
    )


def test_fig5_write_op_trace(benchmark, report):
    result = run_once(benchmark, _run)
    request = result.write_op_trace()
    assert request is not None, "no complete write_op trace captured"

    calls = request.discrete_calls()
    report.append("Figure 5: single mobject_write_op request structure")
    report.append(f"  request {request.request_id}: root mobject_write_op")
    for i, name in enumerate(calls, 1):
        report.append(f"   step {i:>2}: {name}")

    # Shape: exactly 12 discrete SDSKV/BAKE microservice calls per write.
    assert len(calls) == 12
    assert all(c.startswith(("sdskv_", "bake_")) for c in calls)
    assert "sdskv_get_rpc" in calls
    assert "bake_persist_rpc" in calls

    # The Zipkin export is valid JSON with correct parentage and a Gantt-
    # compatible timeline (children within the root interval).
    doc = to_zipkin_json([request])
    spans = json.loads(doc)
    assert len(spans) == 13
    roots = [s for s in spans if "parentId" not in s]
    assert len(roots) == 1 and roots[0]["name"] == "mobject_write_op"
    root = roots[0]
    root_end = root["timestamp"] + root["duration"]
    for child in spans:
        if child is root:
            continue
        assert child["parentId"] == root["id"]
        assert root["timestamp"] <= child["timestamp"] <= root_end
    benchmark.extra_info["discrete_calls"] = len(calls)
