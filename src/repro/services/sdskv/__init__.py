"""SDSKV microservice: RPC access to multiple key-value backends."""

from .backends import (
    BACKENDS,
    BackendCosts,
    BDBDatabase,
    KVDatabase,
    LevelDBDatabase,
    MapDatabase,
    make_database,
)
from .provider import SdskvClient, SdskvProvider

__all__ = [
    "BACKENDS",
    "BackendCosts",
    "BDBDatabase",
    "KVDatabase",
    "LevelDBDatabase",
    "MapDatabase",
    "SdskvClient",
    "SdskvProvider",
    "make_database",
]
