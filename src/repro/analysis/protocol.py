"""The analysis-service request/response protocol.

Modeled on ``algo74/py-sim-serv``'s ``protocol.md``: a request is one
JSON object naming an operation plus parameters, a reply is one JSON
object echoing the operation with a result or an error.  Over a socket
both are newline-delimited; in-process they are the
:class:`Query`/:class:`Reply` dataclasses directly.

Wire encoding is *canonical* JSON (sorted keys, no whitespace), so the
serialized reply to a given query over a given store is byte-identical
across runs -- the determinism tests diff raw reply bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "Query",
    "Reply",
    "decode_query",
    "decode_reply",
    "encode_query",
    "encode_reply",
]

PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Query:
    """One analysis request: an operation name plus its parameters."""

    op: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"v": PROTOCOL_VERSION, "op": self.op, "params": self.params}


@dataclass(frozen=True)
class Reply:
    """One analysis response.

    ``ok`` selects between ``result`` (the operation's payload) and
    ``error`` (a human-readable failure string).
    """

    op: str
    ok: bool
    result: Optional[dict] = None
    error: Optional[str] = None

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "v": PROTOCOL_VERSION, "op": self.op, "ok": self.ok,
        }
        if self.ok:
            doc["result"] = self.result
        else:
            doc["error"] = self.error
        return doc


def _canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def encode_query(query: Query) -> str:
    return _canonical(query.to_dict())


def decode_query(text: str) -> Query:
    doc = json.loads(text)
    if not isinstance(doc, dict) or "op" not in doc:
        raise ValueError("query must be a JSON object with an 'op' field")
    v = doc.get("v", PROTOCOL_VERSION)
    if v != PROTOCOL_VERSION:
        raise ValueError(f"unsupported protocol version {v}")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ValueError("'params' must be an object")
    return Query(op=str(doc["op"]), params=params)


def encode_reply(reply: Reply) -> str:
    return _canonical(reply.to_dict())


def decode_reply(text: str) -> Reply:
    doc = json.loads(text)
    return Reply(
        op=doc.get("op", ""),
        ok=bool(doc.get("ok")),
        result=doc.get("result"),
        error=doc.get("error"),
    )
