"""Simulated network fabric + OFI-style endpoints (DESIGN.md §2 item 3)."""

from .endpoint import Endpoint
from .fabric import Fabric, FabricConfig, WireFault
from .message import CQEntry, CQKind, Message

__all__ = [
    "CQEntry",
    "CQKind",
    "Endpoint",
    "Fabric",
    "FabricConfig",
    "Message",
    "WireFault",
]
