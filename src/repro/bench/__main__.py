"""Command-line benchmark runner.

Usage::

    python -m repro.bench                    # full suites, write BENCH_*.json
    python -m repro.bench --smoke            # CI-sized workloads
    python -m repro.bench --suite kernel     # one suite only
    python -m repro.bench --compare OLD.json # embed OLD as the baseline
    python -m repro.bench --check BASE.json  # fail on >25% regression
    python -m repro.bench --max-ratio hepnos_monitor/hepnos=1.20
                                             # gate a same-run overhead ratio
    python -m repro.bench --store perf.db    # also archive into the store
    python -m repro.bench --check perf.db    # gate against store baselines

``--check`` compares machine-normalized costs (median / calibration
constant), so a committed baseline from one machine still gates runs on
another; see ``docs/performance.md``.  The baseline may be BENCH JSON or
a performance-store ``.db`` (recorded with ``--store`` or imported via
``python -m repro.store import-bench``).  ``--compare`` also appends a
dated entry to the ``history`` list carried inside each BENCH JSON --
idempotently: one entry per (machine, git revision), so re-running on
the same checkout updates the trajectory instead of growing it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys

from .harness import (
    check_ratios,
    check_regressions,
    dedupe_history,
    history_entry,
    write_suite,
)
from .kernel import run_kernel_benchmarks
from .macro import run_macro_benchmarks

_SUITES = {
    "kernel": (run_kernel_benchmarks, "BENCH_kernel.json"),
    "macro": (run_macro_benchmarks, "BENCH_macro.json"),
}


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def _load_baseline(path: str) -> dict:
    """A --compare/--check source: BENCH JSON, or a performance-store
    database (sniffed by the SQLite magic), whose recorded bench runs
    become the baseline bundle."""
    with open(path, "rb") as f:
        magic = f.read(16)
    if not magic.startswith(b"SQLite format 3"):
        return _load(path)
    from ..store import PerfStore

    store = PerfStore(path)
    try:
        return store.bench_baseline()
    finally:
        store.close()


def _baseline_for(compare: dict, suite_name: str) -> dict | None:
    """A --compare/--check file is either one suite dict or a bundle
    keyed by suite name (the committed baseline format)."""
    if compare.get("suite") == suite_name:
        return compare
    entry = compare.get(suite_name)
    return entry if isinstance(entry, dict) else None


def _prior_history(path: str, baseline: dict | None) -> list:
    """The dated trajectory to carry forward: the destination file's
    ``history`` if it exists (the usual overwrite-in-place flow), else
    the baseline's (first ``--compare`` run after the format change)."""
    try:
        prior = _load(path).get("history")
    except (OSError, ValueError):
        prior = None
    if prior is None and baseline is not None:
        prior = baseline.get("history")
    return list(prior) if isinstance(prior, list) else []


def _parse_ratio(spec: str) -> tuple[str, str, float]:
    """Parse a ``NUM/DEN=LIMIT`` gate spec, e.g.
    ``hepnos_monitor/hepnos=1.20``."""
    try:
        pair, limit = spec.rsplit("=", 1)
        num, den = pair.split("/", 1)
        return num.strip(), den.strip(), float(limit)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NUM/DEN=LIMIT, got {spec!r}"
        ) from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Wall-clock benchmarks for the kernel and harnesses.",
    )
    parser.add_argument(
        "--suite", choices=[*_SUITES, "all"], default="all",
        help="which suite to run (default: all)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workloads for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeats per benchmark (median is reported)")
    parser.add_argument("--out", default=".",
                        help="directory for BENCH_*.json (default: cwd)")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="embed OLD (BENCH json or store .db) as the "
                             "baseline and report speedups")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="exit 1 on >--threshold regression vs BASELINE "
                             "(BENCH json or a performance-store .db)")
    parser.add_argument("--store", default=None, metavar="PERF.db",
                        help="also record the suite (and an idempotent "
                             "history entry) into a performance store")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression for --check")
    parser.add_argument(
        "--max-ratio", action="append", type=_parse_ratio, default=[],
        metavar="NUM/DEN=LIMIT",
        help="exit 1 when median(NUM)/median(DEN) exceeds LIMIT "
             "(repeatable; e.g. hepnos_monitor/hepnos=1.20)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    args = parser.parse_args(argv)

    log = (lambda s: None) if args.quiet else print
    compare = _load_baseline(args.compare) if args.compare else None
    check = _load_baseline(args.check) if args.check else None
    suites = list(_SUITES) if args.suite == "all" else [args.suite]
    failures: list[str] = []
    all_results: dict[str, dict] = {}
    today = datetime.date.today().isoformat()

    os.makedirs(args.out, exist_ok=True)
    for name in suites:
        run, filename = _SUITES[name]
        kwargs = {"smoke": args.smoke, "log": log}
        if args.repeats is not None:
            kwargs["repeats"] = args.repeats
        suite = run(**kwargs)
        path = os.path.join(args.out, filename)
        baseline = compare and _baseline_for(compare, name)
        history = None
        if compare is not None:
            history = dedupe_history(
                _prior_history(path, baseline), history_entry(suite, today)
            )
        payload = write_suite(suite, path, baseline=baseline, history=history)
        all_results.update(payload.get("results", {}))
        print(f"{name}: wrote {path}")
        if args.store:
            from ..store import record_bench_suite

            run_id = record_bench_suite(args.store, payload, date=today)
            print(f"{name}: recorded run {run_id} into {args.store}")
        for row in suite.rows():
            line = f"  {row['benchmark']:<16} {row['median']:>10}  {row['rate']}"
            speedups = payload.get("speedup_vs_baseline", {})
            if row["benchmark"] in speedups:
                line += f"  ({speedups[row['benchmark']]:.2f}x vs baseline)"
            print(line)
        if check is not None:
            base = _baseline_for(check, name)
            if base is None:
                failures.append(f"{name}: no baseline in {args.check}")
            else:
                failures.extend(
                    f"{name}/{msg}"
                    for msg in check_regressions(
                        base, payload, threshold=args.threshold
                    )
                )

    if args.max_ratio:
        ratio_failures = check_ratios({"results": all_results}, args.max_ratio)
        failures.extend(f"ratio/{msg}" for msg in ratio_failures)
        if not ratio_failures:
            gates = ", ".join(f"{a}/{b}<={lim}" for a, b, lim in args.max_ratio)
            print(f"bench --max-ratio passed ({gates})")

    if failures:
        print("bench gate FAILED:")
        for msg in failures:
            print(f"  {msg}")
        return 1
    if check is not None:
        print(f"bench --check passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
