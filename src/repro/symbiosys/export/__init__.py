"""The unified export surface for collected performance data.

Historically this repo had two modules -- ``repro.symbiosys.export``
(profile CSV, trace JSON) and ``repro.symbiosys.exporters``
(Prometheus text, series CSV).  They are now one package behind a
common :class:`~repro.symbiosys.export.registry.Exporter` protocol:

* :mod:`~repro.symbiosys.export.text` -- Prometheus exposition and
  time-series CSV,
* :mod:`~repro.symbiosys.export.profile` -- callpath-profile CSV and
  lossless trace-event JSON,
* :mod:`~repro.symbiosys.export.registry` -- the :class:`ExportBundle`
  / :class:`Exporter` protocol and the name registry
  (``prometheus``, ``csv``, ``profile``, ``json``, ``perfetto``,
  ``store``),
* :mod:`~repro.symbiosys.export.store` -- the exporter that archives a
  run into a :mod:`repro.store` database.

Every historical name still imports from here unchanged
(``from repro.symbiosys.export import events_to_json`` etc.); the old
``repro.symbiosys.exporters`` module remains as a deprecation shim.
"""

from .profile import (
    events_to_json,
    load_events_json,
    profile_to_rows,
    write_profile_csv,
)
from .registry import (
    ExportBundle,
    Exporter,
    exporter_names,
    get_exporter,
    register_exporter,
)
from .store import StoreExporter
from .text import series_to_csv, to_prometheus, write_text

__all__ = [
    "ExportBundle",
    "Exporter",
    "StoreExporter",
    "events_to_json",
    "exporter_names",
    "get_exporter",
    "load_events_json",
    "profile_to_rows",
    "register_exporter",
    "series_to_csv",
    "to_prometheus",
    "write_profile_csv",
    "write_text",
]
