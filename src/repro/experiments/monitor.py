"""Online-monitoring experiment: watch a Sonata campaign live.

The post-mortem harnesses (profiles, traces, the fault campaign) answer
questions after the run; this one exercises the *online* half of the
observability layer.  It runs the Sonata ``store_multi_json`` workload
under the default fault plan with a :class:`~repro.symbiosys.Monitor`
attached, so the run produces, while it unfolds:

* ring-buffer time-series of every PVAR / tasking / fabric gauge,
* ULT-level scheduler slices for the Perfetto timeline,
* anomaly findings (the server crash trips the progress-starvation
  detector; the retry storm around it trips the timeout-burst detector),

and then renders the three export formats.  Everything is deterministic:
``run_monitor_experiment(seed=S).report()`` -- including the sha256
digests of all four artifacts -- is byte-identical across runs of the
same ``S``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster
from ..faults import FaultPlan
from ..margo import MargoError, RetryPolicy
from ..services.sonata import SonataClient, SonataProvider
from ..symbiosys import Stage
from ..symbiosys.export import series_to_csv, to_prometheus, write_text
from ..symbiosys.monitor import Finding, MonitorConfig
from ..symbiosys.perfetto import chrome_trace_json
from ..workloads import generate_json_records
from .faults import default_fault_plan, default_retry_policy

__all__ = [
    "MonitorExperimentResult",
    "default_monitor_config",
    "run_monitor_experiment",
]

_SERVER = "sonata-svr"
_CLIENT = "sonata-cli"
_PROVIDER_ID = 1


def default_monitor_config() -> MonitorConfig:
    """Tuned for the default fault campaign: the sampler is fast enough
    to see the 0.4 ms restart downtime, and the burst detector matches
    the retry policy's timeout scale."""
    return MonitorConfig(
        interval=25e-6,
        starvation_threshold=0.2e-3,
        queue_watermark=8,
        timeout_burst_count=2,
        timeout_burst_window=2e-3,
    )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class MonitorExperimentResult:
    """One monitored Sonata campaign plus its rendered artifacts."""

    seed: int
    plan_name: str
    n_records: int
    batch_size: int
    makespan: float
    batches_ok: int
    batches_failed: int
    n_series: int
    n_samples: int
    n_sched_slices: int
    sampler_ticks: int
    findings: list[Finding] = field(default_factory=list)
    #: Rendered artifacts (also written to disk by ``write_artifacts``).
    prometheus_text: str = ""
    series_csv: str = ""
    perfetto_json: str = ""
    findings_text: str = ""

    def detectors_fired(self) -> list[str]:
        return sorted({f.detector for f in self.findings})

    def digests(self) -> dict[str, str]:
        """sha256 prefixes of every artifact -- the determinism probe."""
        return {
            "prometheus": _digest(self.prometheus_text),
            "series_csv": _digest(self.series_csv),
            "perfetto": _digest(self.perfetto_json),
            "findings": _digest(self.findings_text),
        }

    def write_artifacts(self, out_dir) -> list[str]:
        """Write the four artifacts into ``out_dir``; returns the paths."""
        import os

        os.makedirs(out_dir, exist_ok=True)
        files = {
            "metrics.prom": self.prometheus_text,
            "series.csv": self.series_csv,
            "timeline.perfetto.json": self.perfetto_json,
            "findings.txt": self.findings_text,
        }
        paths = []
        for name, text in files.items():
            path = os.path.join(out_dir, name)
            write_text(path, text)
            paths.append(path)
        return paths

    def report(self) -> str:
        """Deterministic plain-text report (byte-identical per seed)."""
        lines = [
            f"monitored campaign {self.plan_name!r} (seed={self.seed})",
            f"  workload: {self.n_records} records in batches of "
            f"{self.batch_size}",
            f"  makespan: {self.makespan * 1e3:.6f} ms  "
            f"({self.batches_ok} batches ok, {self.batches_failed} lost)",
            f"  telemetry: {self.n_series} series, {self.n_samples} samples, "
            f"{self.sampler_ticks} ticks, {self.n_sched_slices} sched slices",
            f"  anomalies ({len(self.findings)}):",
        ]
        for f in self.findings:
            lines.append(
                f"    {f.time * 1e3:12.6f} ms  {f.detector:<24} "
                f"{f.process:<14} {f.message}"
            )
        lines.append("  artifact digests:")
        for name, digest in sorted(self.digests().items()):
            lines.append(f"    {name:<12} {digest}")
        return "\n".join(lines)


def run_monitor_experiment(
    *,
    seed: int = 0,
    n_records: int = 2_000,
    batch_size: int = 100,
    monitor_config: Optional[MonitorConfig] = None,
    plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    out_dir: Optional[str] = None,
    time_limit: float = 600.0,
    store=None,
) -> MonitorExperimentResult:
    """Run the Sonata workload under faults with the monitor attached.

    ``out_dir``, if given, receives the four artifacts (Prometheus
    snapshot, CSV time-series, Perfetto timeline, findings log).
    ``store``, if given (a path or :class:`~repro.store.PerfStore`),
    receives the full run -- telemetry, traces, profiles -- as one
    archived run named ``monitor-seed<seed>``; the artifacts written to
    ``out_dir`` stay byte-identical either way.
    """
    monitor_config = (
        monitor_config if monitor_config is not None else default_monitor_config()
    )
    plan = plan if plan is not None else default_fault_plan()
    retry = retry if retry is not None else default_retry_policy()

    with Cluster(
        seed=seed,
        stage=Stage.FULL,
        fault_plan=plan,
        retry=retry,
        monitoring=monitor_config,
        store=store,
        run_name=f"monitor-seed{seed}",
        run_tags={
            "experiment": "monitor",
            "plan": plan.name,
            "n_records": str(n_records),
            "batch_size": str(batch_size),
        },
    ) as cluster:
        server = cluster.process(_SERVER, "nodeA", n_handler_es=2)
        SonataProvider(server, _PROVIDER_ID)
        client_mi = cluster.process(_CLIENT, "nodeB")
        client = SonataClient(client_mi)
        records = generate_json_records(n_records, fields_per_record=6)
        outcome = {"ok": 0, "failed": 0}
        done = cluster.sim.event("campaign-done")

        def body():
            yield from client.create_database(_SERVER, _PROVIDER_ID, "bench")
            for start in range(0, n_records, batch_size):
                batch = records[start : start + batch_size]
                try:
                    yield from client.store_multi(
                        _SERVER, _PROVIDER_ID, "bench", batch,
                        batch_size=len(batch),
                    )
                    outcome["ok"] += 1
                except MargoError:
                    outcome["failed"] += 1
            done.succeed(cluster.sim.now)

        client_mi.client_ult(body(), name="monitor-campaign")
        if not cluster.run_until_event(done, limit=time_limit):
            raise RuntimeError("monitored campaign did not finish in time")
        makespan = done.value

    monitor = cluster.monitor
    result = MonitorExperimentResult(
        seed=seed,
        plan_name=plan.name,
        n_records=n_records,
        batch_size=batch_size,
        makespan=makespan,
        batches_ok=outcome["ok"],
        batches_failed=outcome["failed"],
        n_series=len(monitor.store),
        n_samples=monitor.store.total_samples,
        n_sched_slices=len(monitor.sched),
        sampler_ticks=monitor.sampler.ticks,
        findings=list(monitor.findings),
        prometheus_text=to_prometheus(monitor.registry),
        series_csv=series_to_csv(monitor.store),
        perfetto_json=chrome_trace_json(
            monitor=monitor,
            collector=cluster.collector,
            fault_events=cluster.fault_events(),
        ),
        findings_text=monitor.findings_report() + "\n",
    )
    if out_dir is not None:
        result.write_artifacts(out_dir)
    return result
