"""Figure 10: too many databases (C2 vs C3).

The origin hashes keys over the total database count, so C2 (32
databases) turns every client batch into 4x as many put_packed RPCs as
C3 (8 databases).  The map backend cannot insert in parallel within a
database, so the C2 flood piles blocked ULTs onto the backend mutexes
during bursts -- the vertical-line pattern of Fig 10a -- while C3's
spikes are much lower and overall RPC performance improves (paper:
28.5%).
"""

import numpy as np

from repro.experiments import TABLE_IV, ascii_table, run_hepnos_experiment
from .conftest import run_once

EVENTS_PER_CLIENT = 2048


def _run_pair():
    return {
        name: run_hepnos_experiment(
            TABLE_IV[name], events_per_client=EVENTS_PER_CLIENT
        )
        for name in ("C2", "C3")
    }


def test_fig10_blocked_ults(benchmark, report):
    results = run_once(benchmark, _run_pair)
    c2, c3 = results["C2"], results["C3"]

    stats = {}
    rows = []
    for r in (c2, c3):
        samples = r.blocked_samples()
        ys = np.array([b for _, b, _ in samples])
        stats[r.config.name] = ys
        rows.append(
            {
                "config": r.config.name,
                "databases": r.config.databases,
                "put_packed RPCs": r.rpcs_issued,
                "blocked ULTs (max)": int(ys.max()),
                "blocked ULTs (p95)": int(np.percentile(ys, 95)),
                "blocked ULTs (mean)": float(ys.mean()),
            }
        )
    report.append("Figure 10: blocked-ULT samples at request start (t4)")
    report.append(ascii_table(rows))
    improvement = 1 - c3.cumulative_target_time / c2.cumulative_target_time
    report.append(
        f"C3 improves cumulative RPC time by {100 * improvement:.1f}% "
        f"(paper: 28.5%)"
    )

    # Shape 1: more databases => proportionally more RPCs (4x here).
    assert c2.rpcs_issued == 4 * c3.rpcs_issued
    # Shape 2: serialization severity is much reduced in C3 -- the blocked
    # ULT spikes drop by at least 2x at the max and the 95th percentile.
    assert stats["C2"].max() > 2 * stats["C3"].max()
    assert np.percentile(stats["C2"], 95) > 2 * np.percentile(stats["C3"], 95)
    # Shape 3: RPC performance improves by a comparable margin (>= 15%).
    assert improvement > 0.15
    # Shape 4: the C2 scatter shows "vertical lines" -- requests that
    # began executing at (nearly) the same instant while the blocked-ULT
    # count spans a wide range, i.e. stacked points.  Measure the widest
    # vertical span within a 50us start-time bucket.
    def max_vertical_span(result):
        buckets: dict[int, list[int]] = {}
        for t4, blocked, _ in result.blocked_samples():
            buckets.setdefault(int(t4 / 50e-6), []).append(blocked)
        return max(
            (max(v) - min(v)) for v in buckets.values() if len(v) >= 3
        )

    span_c2 = max_vertical_span(c2)
    span_c3 = max_vertical_span(c3)
    report.append(
        f"widest vertical blocked-ULT span in one 50us window: "
        f"C2={span_c2}, C3={span_c3}"
    )
    assert span_c2 > 50, "C2 should show tall vertical serialization lines"
    assert span_c2 > 2 * span_c3
    benchmark.extra_info["c2_vertical_span"] = int(span_c2)
    benchmark.extra_info["c3_vertical_span"] = int(span_c3)
    benchmark.extra_info["c2_blocked_max"] = int(stats["C2"].max())
    benchmark.extra_info["c3_blocked_max"] = int(stats["C3"].max())
    benchmark.extra_info["improvement"] = round(improvement, 4)
