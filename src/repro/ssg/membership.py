"""Fabric-delayed view propagation and failure-driven membership.

``ViewPropagator`` models SSG's gossip dissemination: an authoritative
view change reaches each registered replica after a per-replica fabric
delay, so replicas are *eventually* consistent and can observe views
out of order (the stale-epoch guard in ``SSGGroup.apply_view`` makes
that safe).

``MembershipService`` is the SWIM-ish failure detector: a sim-clock
heartbeat scans the member processes for crashes (and revivals after a
``RestartFault``), mutates the authoritative group, and propagates the
new epoch-numbered view.  Actuation beyond membership (ring rebuilds,
shard migration) belongs to observers — see ``repro.shard``.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from .group import SSGGroup, SSGView

__all__ = ["ViewPropagator", "MembershipService"]


class ViewPropagator:
    """Deliver views to replica groups after simulated fabric delays.

    Each registered replica receives every propagated view after
    ``base_delay + stagger * index`` seconds (index = registration
    order), modelling the staggered hops of a dissemination tree.
    Per-call ``delay`` overrides support tests that force reordering.
    """

    def __init__(self, sim, base_delay: float = 5e-6, stagger: float = 1e-6):
        self.sim = sim
        self.base_delay = base_delay
        self.stagger = stagger
        self._replicas: list[SSGGroup] = []
        self.delivered = 0
        self.stale_drops = 0

    def register(self, replica: SSGGroup) -> None:
        self._replicas.append(replica)

    def propagate(self, view: SSGView, delay: Optional[float] = None) -> None:
        for i, replica in enumerate(self._replicas):
            d = delay if delay is not None else self.base_delay + self.stagger * i
            self.sim.call_at(self.sim.now + d, self._deliver, replica, view)

    def _deliver(self, replica: SSGGroup, view: SSGView) -> None:
        if replica.apply_view(view):
            self.delivered += 1
        else:
            self.stale_drops += 1


class MembershipService:
    """Heartbeat failure detection driving an authoritative SSG group.

    Scans ``processes`` (addr -> MargoInstance) every ``interval`` sim
    seconds; a crashed member leaves the group, a previously evicted
    address that is alive again rejoins.  Every membership change bumps
    the group epoch and propagates the new view.  The scan loop
    self-reschedules, so ``stop()`` must run before the cluster drains
    its event queue (``Cluster.add_shutdown_hook`` handles this).
    """

    def __init__(
        self,
        sim,
        group: SSGGroup,
        processes: Mapping[str, object],
        propagator: Optional[ViewPropagator] = None,
        interval: float = 100e-6,
    ):
        self.sim = sim
        self.group = group
        self.processes = processes
        self.propagator = propagator
        self.interval = interval
        self._running = False
        self._evicted: set[str] = set()
        self._view_callbacks: list[Callable[[SSGView], None]] = []
        self.events: list[tuple[float, str, str, int]] = []

    def on_view(self, callback: Callable[[SSGView], None]) -> None:
        """``callback(view)`` after each locally detected change."""
        self._view_callbacks.append(callback)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.call_at(self.sim.now + self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.scan()
        self.sim.call_at(self.sim.now + self.interval, self._tick)

    def scan(self) -> bool:
        """One heartbeat round; returns True if membership changed."""
        changed = False
        for addr in self.group.members:
            mi = self.processes.get(addr)
            if mi is not None and getattr(mi, "crashed", False):
                self.group.leave(addr)
                self._evicted.add(addr)
                self.events.append((self.sim.now, "death", addr, self.group.epoch))
                changed = True
        for addr in sorted(self._evicted):
            mi = self.processes.get(addr)
            if mi is not None and not getattr(mi, "crashed", False):
                self.group.join(addr)
                self._evicted.discard(addr)
                self.events.append((self.sim.now, "revive", addr, self.group.epoch))
                changed = True
        if changed:
            view = self.group.view()
            if self.propagator is not None:
                self.propagator.propagate(view)
            for cb in self._view_callbacks:
                cb(view)
        return changed
