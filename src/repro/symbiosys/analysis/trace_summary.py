"""Trace stitching and summarization: the paper's "trace summary script".

Consolidates the per-process trace buffers, groups events by request id,
reconstructs the span tree of every request (discovering the *individual
request structure* of §V-A-3), and corrects clock skew.

Skew correction combines two mechanisms:

* **Lamport ordering** -- every event carries the process's Lamport
  clock, updated with the received clock on message receipt; sorting by
  ``(lamport, order)`` yields a valid happened-before linearization even
  with arbitrarily skewed local clocks (the paper's §IV-A-2 mechanism).
* **Offset estimation** -- for timestamp alignment (Gantt charts), the
  per-process clock offset is estimated from the forward/backward
  message deltas of every completed span, NTP-style:
  ``offset ≈ (Δforward − Δbackward) / 2``, anchored at a reference
  process and propagated across the process graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..tracing import EventKind, FaultAnnotation, TraceEvent

__all__ = [
    "Span",
    "RequestTrace",
    "TraceSummary",
    "estimate_clock_offsets",
    "stitch_traces",
    "trace_summary",
    "blocked_ult_samples",
    "ofi_events_series",
]


@dataclass
class Span:
    """One RPC reconstructed from its (up to) four trace events."""

    span_id: int
    parent_span_id: Optional[int]
    request_id: str
    rpc_name: str
    callpath: int
    origin_process: str = ""
    target_process: str = ""
    #: Corrected timestamps (reference-process timeline).
    t1: Optional[float] = None
    t5: Optional[float] = None
    t8: Optional[float] = None
    t14: Optional[float] = None
    events: list[TraceEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)
    #: Injected faults that fired on this span's origin/target process
    #: inside its observed time window -- the attribution that separates
    #: "latency spike caused by an injected fault" from emergent
    #: queueing.  Empty without a fault plan.
    faults: list[FaultAnnotation] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return None not in (self.t1, self.t5, self.t8, self.t14)

    @property
    def duration(self) -> Optional[float]:
        if self.t1 is None or self.t14 is None:
            return None
        return self.t14 - self.t1

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class RequestTrace:
    """All spans of one end-to-end request."""

    request_id: str
    roots: list[Span]
    spans: dict[int, Span]

    @property
    def end_to_end_latency(self) -> float:
        durations = [s.duration for s in self.roots if s.duration is not None]
        return max(durations) if durations else 0.0

    def discrete_calls(self) -> list[str]:
        """The RPC names of every non-root span, in start order --
        the '12 discrete SDSKV and BAKE microservice calls' view of
        Figure 5."""
        subs = [
            s
            for root in self.roots
            for s in root.walk()
            if s is not root
        ]
        subs.sort(key=lambda s: (s.t1 if s.t1 is not None else float("inf")))
        return [s.rpc_name for s in subs]

    def structure_signature(self) -> tuple:
        """Shape of the request: (root rpc, sorted child rpc multiset)."""

        def sig(span: Span) -> tuple:
            return (
                span.rpc_name,
                tuple(sorted(sig(c) for c in span.children)),
            )

        return tuple(sorted(sig(r) for r in self.roots))


@dataclass
class TraceSummary:
    requests: dict[str, RequestTrace]
    clock_offsets: dict[str, float]
    total_events: int
    #: Every fault annotation recorded during the run (firing order).
    annotations: list[FaultAnnotation] = field(default_factory=list)

    def spans_with_faults(self) -> list[Span]:
        """Spans whose window covers at least one injected fault on an
        involved process, slowest first."""
        hit = [
            s
            for req in self.requests.values()
            for root in req.roots
            for s in root.walk()
            if s.faults
        ]
        hit.sort(key=lambda s: -(s.duration or 0.0))
        return hit

    def slowest(self, n: int = 10) -> list[RequestTrace]:
        return sorted(
            self.requests.values(),
            key=lambda r: r.end_to_end_latency,
            reverse=True,
        )[:n]

    def structure_counts(self) -> dict[tuple, int]:
        out: dict[tuple, int] = {}
        for req in self.requests.values():
            key = req.structure_signature()
            out[key] = out.get(key, 0) + 1
        return out

    def render(self, n: int = 5) -> str:
        lines = [
            f"requests: {len(self.requests)}   events: {self.total_events}",
            f"{'request':<24} {'latency':>12} {'spans':>6}",
            "-" * 46,
        ]
        for req in self.slowest(n):
            lines.append(
                f"{req.request_id:<24} {req.end_to_end_latency * 1e3:>10.4f}ms "
                f"{len(req.spans):>6}"
            )
        if self.annotations:
            lines.append(
                f"injected faults: {len(self.annotations)}   "
                f"spans attributed: {len(self.spans_with_faults())}"
            )
        return "\n".join(lines)


def estimate_clock_offsets(events: list[TraceEvent]) -> dict[str, float]:
    """Estimate each process's clock offset from span message deltas.

    Returns offsets such that ``corrected = local_ts - offset[process]``
    puts all processes on the reference process's timeline.
    """
    # Collect per-span event quadruples.
    by_span: dict[int, dict[EventKind, TraceEvent]] = {}
    for ev in events:
        by_span.setdefault(ev.span_id, {})[ev.kind] = ev

    # Pairwise delta samples: the forward leg carries +offset(B-A) plus
    # queueing, the backward leg carries -offset(B-A) plus queueing.
    # Queueing only ever *adds* delay, so the NTP trick applies: estimate
    # from the minimum-delay samples, where the deltas are closest to
    # pure (symmetric) wire latency.
    fwd: dict[tuple[str, str], list[float]] = {}
    bwd: dict[tuple[str, str], list[float]] = {}
    for quad in by_span.values():
        of = quad.get(EventKind.ORIGIN_FORWARD)
        tus = quad.get(EventKind.TARGET_ULT_START)
        tr = quad.get(EventKind.TARGET_RESPOND)
        oc = quad.get(EventKind.ORIGIN_COMPLETE)
        if None in (of, tus, tr, oc):
            continue
        a, b = of.process, tus.process
        if a == b:
            continue
        fwd.setdefault((a, b), []).append(tus.local_ts - of.local_ts)
        bwd.setdefault((a, b), []).append(oc.local_ts - tr.local_ts)

    mean_off: dict[tuple[str, str], float] = {
        pair: (min(fwd[pair]) - min(bwd[pair])) / 2.0 for pair in fwd
    }
    adj: dict[str, list[tuple[str, float]]] = {}
    for (a, b), off in mean_off.items():
        adj.setdefault(a, []).append((b, off))
        adj.setdefault(b, []).append((a, -off))

    processes = sorted({ev.process for ev in events})
    offsets: dict[str, float] = {}
    for start in processes:
        if start in offsets:
            continue
        offsets[start] = 0.0  # anchor each connected component
        queue = deque([start])
        while queue:
            cur = queue.popleft()
            for nxt, off in adj.get(cur, []):
                if nxt not in offsets:
                    offsets[nxt] = offsets[cur] + off
                    queue.append(nxt)
    return offsets


def _attribute_faults(
    spans: dict[int, Span],
    annotations_by_process: dict[str, list[FaultAnnotation]],
) -> None:
    """Attach each fault annotation to every span whose observed
    [first-event, last-event] true-time window covers it on an involved
    process.  Completed-but-slow spans (wire delays, handler stalls,
    duplicates) attribute exactly; spans killed outright by a fault
    never complete and stay unattributed by design."""
    for span in spans.values():
        if not span.events:
            continue
        start = min(ev.true_ts for ev in span.events)
        end = max(ev.true_ts for ev in span.events)
        procs = {span.origin_process, span.target_process} - {""}
        for proc in sorted(procs):
            for ann in annotations_by_process.get(proc, ()):
                if start <= ann.time <= end:
                    span.faults.append(ann)
        span.faults.sort(key=lambda a: (a.time, a.kind, a.detail))


def stitch_traces(
    events: list[TraceEvent],
    annotations_by_process: Optional[dict[str, list[FaultAnnotation]]] = None,
) -> TraceSummary:
    """Group events into spans and spans into request trees, with
    skew-corrected timestamps.

    ``annotations_by_process`` (as returned by
    ``SymbiosysCollector.annotations_by_process``) enables fault
    attribution: each injected-fault annotation is attached to the spans
    whose window covers it (see :attr:`Span.faults`)."""
    offsets = estimate_clock_offsets(events)

    spans: dict[int, Span] = {}
    for ev in sorted(events, key=lambda e: (e.lamport, e.order)):
        span = spans.get(ev.span_id)
        if span is None:
            span = spans[ev.span_id] = Span(
                span_id=ev.span_id,
                parent_span_id=ev.parent_span_id,
                request_id=ev.request_id,
                rpc_name=ev.rpc_name,
                callpath=ev.callpath,
            )
        span.events.append(ev)
        ts = ev.local_ts - offsets.get(ev.process, 0.0)
        if ev.kind is EventKind.ORIGIN_FORWARD:
            span.origin_process = ev.process
            span.t1 = ts
        elif ev.kind is EventKind.TARGET_ULT_START:
            span.target_process = ev.process
            span.t5 = ts
        elif ev.kind is EventKind.TARGET_RESPOND:
            span.target_process = ev.process
            span.t8 = ts
        elif ev.kind is EventKind.ORIGIN_COMPLETE:
            span.origin_process = ev.process
            span.t14 = ts

    requests: dict[str, RequestTrace] = {}
    by_request: dict[str, list[Span]] = {}
    for span in spans.values():
        by_request.setdefault(span.request_id, []).append(span)

    for request_id, req_spans in by_request.items():
        index = {s.span_id: s for s in req_spans}
        roots: list[Span] = []
        for span in req_spans:
            parent = (
                index.get(span.parent_span_id)
                if span.parent_span_id is not None
                else None
            )
            if parent is None:
                roots.append(span)
            else:
                parent.children.append(span)
        for span in req_spans:
            span.children.sort(
                key=lambda s: (s.t1 if s.t1 is not None else float("inf"))
            )
        requests[request_id] = RequestTrace(
            request_id=request_id, roots=roots, spans=index
        )

    annotations: list[FaultAnnotation] = []
    if annotations_by_process:
        _attribute_faults(spans, annotations_by_process)
        # Wire faults are recorded into both endpoints' buffers; the
        # flat view dedupes them (FaultAnnotation is frozen/hashable).
        annotations = sorted(
            {a for anns in annotations_by_process.values() for a in anns},
            key=lambda a: (a.time, a.kind, a.detail),
        )

    return TraceSummary(
        requests=requests,
        clock_offsets=offsets,
        total_events=len(events),
        annotations=annotations,
    )


def trace_summary(collector) -> TraceSummary:
    """Stitch everything the collector gathered, including any fault
    annotations the injector recorded into the per-process buffers."""
    by_process = getattr(collector, "annotations_by_process", None)
    return stitch_traces(
        collector.all_events(),
        annotations_by_process=by_process() if by_process is not None else None,
    )


# -- figure-extraction helpers -------------------------------------------------


def blocked_ult_samples(
    events: list[TraceEvent], target_process: Optional[str] = None
) -> list[tuple[float, int, str]]:
    """(t4, blocked-ULT count, target process) samples from handler-start
    events: the Figure 10 scatter."""
    out = []
    for ev in events:
        if ev.kind is not EventKind.TARGET_ULT_START:
            continue
        if target_process is not None and ev.process != target_process:
            continue
        out.append(
            (ev.data.get("t4", ev.true_ts), ev.sysstats.get("num_blocked", 0), ev.process)
        )
    out.sort()
    return out


def ofi_events_series(
    events: list[TraceEvent], process: Optional[str] = None
) -> list[tuple[float, int]]:
    """(timestamp, num_ofi_events_read) samples from origin-completion
    events: the Figure 12 series."""
    out = []
    for ev in events:
        if ev.kind is not EventKind.ORIGIN_COMPLETE:
            continue
        if process is not None and ev.process != process:
            continue
        if "num_ofi_events_read" in ev.pvars:
            out.append((ev.true_ts, ev.pvars["num_ofi_events_read"]))
    out.sort()
    return out
