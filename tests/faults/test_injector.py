"""FaultInjector behaviour through the full stack (fabric + Margo)."""

import pytest

from repro.faults import (
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    HandlerFaultRule,
    HangFault,
    PartitionWindow,
    RestartFault,
)
from repro.margo import MargoTimeoutError, RemoteRpcError, RetryPolicy

from .conftest import make_echo_cluster


def _call(world, payload, timeout=None, collect=None):
    """Spawn one echo forward; returns the shared results list."""
    results = collect if collect is not None else []

    def body():
        try:
            out = yield from world.client.forward(
                "svr", "echo", payload, timeout=timeout
            )
            results.append(("ok", out["echo"], world.sim.now))
        except MargoTimeoutError:
            results.append(("timeout", None, world.sim.now))
        except RemoteRpcError as exc:
            results.append(("remote-error", exc.detail, world.sim.now))

    world.client.client_ult(body())
    return results


def test_drop_rule_loses_requests():
    plan = FaultPlan(wire_rules=[DropRule(kind="rpc_request", probability=1.0)])
    world = make_echo_cluster(plan=plan)
    results = _call(world, {"i": 1}, timeout=1e-3)
    world.sim.run_until(lambda: results, limit=0.1)
    assert results[0][0] == "timeout"
    assert world.injector.counters["drop"] >= 1
    # The timed-out handle was cancelled and cleaned up.
    assert len(world.client.hg._posted) == 0


def test_duplicate_rule_is_at_least_once_hazard():
    """Duplicated requests run the handler twice; the client consumes one
    response and counts the other as a dropped late response."""
    plan = FaultPlan(
        wire_rules=[DuplicateRule(kind="rpc_request", probability=1.0)]
    )
    world = make_echo_cluster(plan=plan)
    results = _call(world, {"i": 2})
    world.sim.run_until(lambda: results, limit=0.1)
    world.sim.run(until=world.sim.now + 5e-3)  # let the duplicate land
    assert results[0][:2] == ("ok", {"i": 2})
    assert world.injector.counters["duplicate"] >= 1
    counters = world.client.resilience_counters()
    assert counters["num_late_responses_dropped"] >= 1


def test_delay_rule_adds_latency():
    baseline = make_echo_cluster()
    r0 = _call(baseline, {})
    baseline.sim.run_until(lambda: r0, limit=0.1)
    base_latency = r0[0][2]

    plan = FaultPlan(
        wire_rules=[DelayRule(kind="rpc_request", extra=1e-3, probability=1.0)]
    )
    world = make_echo_cluster(plan=plan)
    r1 = _call(world, {})
    world.sim.run_until(lambda: r1, limit=0.1)
    assert r1[0][0] == "ok"
    assert r1[0][2] - base_latency >= 1e-3 - 1e-9
    assert world.injector.counters["delay"] >= 1


def test_partition_window_severs_then_heals():
    plan = FaultPlan(
        partitions=[PartitionWindow(node_a="nA", node_b="nB", start=0.0, end=5e-3)]
    )
    world = make_echo_cluster(plan=plan)
    results = _call(world, {"during": True}, timeout=1e-3)
    world.sim.run_until(lambda: results, limit=0.1)
    assert results[0][0] == "timeout"
    assert world.injector.counters["partition_drop"] >= 1

    # After the window the link heals.
    world.sim.run(until=6e-3)
    _call(world, {"after": True}, timeout=10e-3, collect=results)
    world.sim.run_until(lambda: len(results) == 2, limit=0.1)
    assert results[1][:2] == ("ok", {"after": True})


def test_crash_restart_cycle():
    plan = FaultPlan(
        process_faults=[
            RestartFault(addr="svr", at=2e-3, downtime=2e-3, warmup=1e-3)
        ]
    )
    world = make_echo_cluster(plan=plan)

    timeline = []

    def body():
        out = yield from world.client.forward("svr", "echo", {"n": 1})
        timeline.append(("before", out["echo"], world.sim.now))
        # Land mid-crash: the server is down until t=4ms (+1ms warmup).
        yield from world.client.rt.sleep(2.5e-3 - world.sim.now)
        try:
            yield from world.client.forward("svr", "echo", {"n": 2}, timeout=1e-3)
            timeline.append(("during", None, world.sim.now))
        except MargoTimeoutError:
            timeline.append(("during-timeout", None, world.sim.now))
        # Wait for the restart + warmup to complete, then try again.
        yield from world.client.rt.sleep(6e-3 - world.sim.now)
        out = yield from world.client.forward("svr", "echo", {"n": 3}, timeout=50e-3)
        timeline.append(("after", out["echo"], world.sim.now))

    world.client.client_ult(body())
    assert world.sim.run_until(lambda: len(timeline) == 3, limit=0.5)
    assert timeline[0][0] == "before"
    assert timeline[1][0] == "during-timeout"
    assert timeline[2][:2] == ("after", {"n": 3})
    kinds = [k for _, k, *_ in world.injector.event_trace()]
    assert "crash" in kinds and "restart" in kinds
    assert not world.server.crashed


def test_crashed_server_discards_deliveries():
    plan = FaultPlan(process_faults=[RestartFault(addr="svr", at=1e-3, downtime=1.0)])
    world = make_echo_cluster(plan=plan)
    world.sim.run(until=2e-3)  # crash has fired
    assert world.server.crashed
    results = _call(world, {}, timeout=1e-3)
    world.sim.run_until(lambda: results, limit=0.1)
    assert results[0][0] == "timeout"
    assert world.server.endpoint.total_discarded >= 1


def test_hang_services_requests_late_not_never():
    plan = FaultPlan(
        process_faults=[HangFault(addr="svr", at=0.0, duration=5e-3)]
    )
    world = make_echo_cluster(plan=plan)
    results = _call(world, {"q": 1})
    world.sim.run_until(lambda: results, limit=0.1)
    status, echoed, at = results[0]
    assert status == "ok"
    assert echoed == {"q": 1}
    assert at >= 5e-3  # serviced only after the hang lifted
    assert world.injector.counters["hang"] == 1


def test_handler_error_injection_surfaces_as_remote_error():
    plan = FaultPlan(
        handler_rules=[HandlerFaultRule(rpc="echo", error_probability=1.0)]
    )
    world = make_echo_cluster(plan=plan)
    results = _call(world, {})
    world.sim.run_until(lambda: results, limit=0.1)
    status, detail, _ = results[0]
    assert status == "remote-error"
    assert "injected fault" in detail
    assert world.injector.counters["handler_error"] >= 1
    # The server survives injected handler faults like real ones.
    assert world.server.handler_errors


def test_handler_stall_injection_burns_time():
    baseline = make_echo_cluster()
    r0 = _call(baseline, {})
    baseline.sim.run_until(lambda: r0, limit=0.1)

    plan = FaultPlan(
        handler_rules=[
            HandlerFaultRule(rpc="echo", stall_probability=1.0, stall=2e-3)
        ]
    )
    world = make_echo_cluster(plan=plan)
    r1 = _call(world, {})
    world.sim.run_until(lambda: r1, limit=0.1)
    assert r1[0][0] == "ok"
    assert r1[0][2] >= r0[0][2] + 2e-3
    assert world.injector.counters["handler_stall"] == 1


def test_retry_rides_out_faults():
    """A retry policy turns a lossy wire into degraded-but-working."""
    plan = FaultPlan(
        wire_rules=[
            DropRule(kind="rpc_request", probability=0.5, end=1.0),
        ]
    )
    retry = RetryPolicy(max_attempts=6, timeout=1e-3, backoff=0.2e-3)
    world = make_echo_cluster(plan=plan, retry=retry, seed=5)
    results = []
    for i in range(10):
        _call(world, {"i": i}, collect=results)
    assert world.sim.run_until(lambda: len(results) == 10, limit=1.0)
    assert all(status == "ok" for status, _, _ in results)
    counters = world.client.resilience_counters()
    assert counters["num_forward_timeouts"] >= 1
    assert counters["num_forward_retries"] >= 1


def test_attach_rejects_duplicate_process():
    world = make_echo_cluster(plan=FaultPlan())
    with pytest.raises(ValueError):
        world.injector.attach(world.server)


def test_fault_events_record_no_cookies():
    """Event details must only contain stable identifiers (addresses,
    rpc names, kinds) so traces compare across runs in one process."""
    plan = FaultPlan(
        wire_rules=[DropRule(kind="rpc_request", probability=1.0)],
        handler_rules=[HandlerFaultRule(rpc="echo", error_probability=1.0)],
    )
    world = make_echo_cluster(plan=plan)
    results = _call(world, {}, timeout=1e-3)
    world.sim.run_until(lambda: results, limit=0.1)
    for entry in world.injector.event_trace():
        for item in entry[1:]:
            assert isinstance(item, (str, int, float))
            if isinstance(item, str):
                assert not item.startswith("cookie")
