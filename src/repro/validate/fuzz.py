"""Seed / workload / fault-plan fuzzing with shrinking.

``fuzz_sweep`` walks a matrix of seeds, workload presets, and randomly
generated :class:`~repro.faults.FaultPlan` s.  Every configuration runs
**twice**; a configuration fails when

* either run records an invariant violation,
* the two runs disagree on any export digest (Perfetto / Prometheus /
  CSV / profile -- export-level nondeterminism), or
* the workload hangs.

A failing configuration is **shrunk** ddmin-style -- drop fault rules
one at a time, then halve the workload scale -- to a minimal config
that still fails, and written to a JSON repro file that
``python -m repro.validate fuzz --repro FILE`` replays exactly.

All randomness comes from one seeded :class:`numpy.random.Generator`;
generated plan parameters are quantized so plans survive the JSON
round-trip bit-exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..faults import FaultPlan
from ..faults.plan import (
    CrashFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    HandlerFaultRule,
    RestartFault,
)
from .workloads import WORKLOAD_SERVERS, WorkloadHang, run_workload

__all__ = [
    "FailureReport",
    "FuzzConfig",
    "SweepResult",
    "check_config",
    "fuzz_sweep",
    "load_repro",
    "random_fault_plan",
    "shrink",
    "write_repro",
]


@dataclass(frozen=True)
class FuzzConfig:
    """One point in the fuzzed configuration space."""

    seed: int
    workload: str = "echo"
    preset: str = "fast"
    scale: int = 2
    plan: Optional[FaultPlan] = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "workload": self.workload,
            "preset": self.preset,
            "scale": self.scale,
            "plan": None if self.plan is None else self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzConfig":
        plan = data.get("plan")
        return cls(
            seed=data["seed"],
            workload=data.get("workload", "echo"),
            preset=data.get("preset", "fast"),
            scale=data.get("scale", 2),
            plan=None if plan is None else FaultPlan.from_dict(plan),
        )

    def describe(self) -> str:
        n_rules = 0
        if self.plan is not None:
            n_rules = (
                len(self.plan.wire_rules)
                + len(self.plan.partitions)
                + len(self.plan.process_faults)
                + len(self.plan.handler_rules)
            )
        return (
            f"{self.workload}/{self.preset} seed={self.seed} "
            f"scale={self.scale} fault_rules={n_rules}"
        )


@dataclass(frozen=True)
class FailureReport:
    """Why one configuration failed, plus its shrunk form."""

    config: FuzzConfig
    kind: str  # "invariant" | "nondeterminism" | "hang"
    detail: str
    shrunk: Optional[FuzzConfig] = None


@dataclass
class SweepResult:
    configs_run: int = 0
    failures: list[FailureReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _quantize(x: float, step: float = 1e-6) -> float:
    """Snap to a decimal grid so the value survives JSON round-trips."""
    return round(round(x / step) * step, 9)


def random_fault_plan(
    rng: np.random.Generator, workload: str
) -> Optional[FaultPlan]:
    """Draw a random (possibly empty) campaign aimed at the workload's
    servers.  Parameters are quantized for lossless serialization."""
    servers = WORKLOAD_SERVERS[workload]
    server = str(rng.choice(list(servers)))
    wire_rules = []
    process_faults = []
    handler_rules = []

    if rng.random() < 0.5:
        wire_rules.append(
            DropRule(
                dst=server,
                kind="rpc_request",
                probability=_quantize(0.05 + 0.15 * rng.random(), 0.01),
            )
        )
    if rng.random() < 0.35:
        wire_rules.append(
            DuplicateRule(
                dst=server,
                probability=_quantize(0.05 + 0.10 * rng.random(), 0.01),
            )
        )
    if rng.random() < 0.35:
        wire_rules.append(
            DelayRule(
                dst=server,
                extra=_quantize(50e-6 + 150e-6 * rng.random()),
                spread=_quantize(100e-6 * rng.random()),
                probability=_quantize(0.1 + 0.2 * rng.random(), 0.01),
            )
        )
    if rng.random() < 0.3:
        at = _quantize(0.2e-3 + 1e-3 * rng.random())
        if rng.random() < 0.5:
            process_faults.append(CrashFault(addr=server, at=at))
        else:
            process_faults.append(
                RestartFault(
                    addr=server,
                    at=at,
                    downtime=_quantize(0.1e-3 + 0.4e-3 * rng.random()),
                    warmup=_quantize(0.1e-3 * rng.random()),
                )
            )
    if rng.random() < 0.3:
        handler_rules.append(
            HandlerFaultRule(
                addr=server,
                error_probability=_quantize(0.05 + 0.1 * rng.random(), 0.01),
            )
        )

    if not (wire_rules or process_faults or handler_rules):
        return None
    return FaultPlan(
        name="fuzz",
        wire_rules=wire_rules,
        process_faults=process_faults,
        handler_rules=handler_rules,
    )


def check_config(config: FuzzConfig, time_limit: float = 5.0) -> Optional[str]:
    """Run ``config`` twice; return a failure description or None.

    The double run cross-checks export-level determinism: identical
    Perfetto JSON, Prometheus text, CSV series, and profile output for
    identical inputs.
    """
    runs = []
    for _ in range(2):
        try:
            runs.append(
                run_workload(
                    config.workload,
                    seed=config.seed,
                    preset=config.preset,
                    scale=config.scale,
                    plan=config.plan,
                    time_limit=time_limit,
                )
            )
        except WorkloadHang as exc:
            return f"hang: {exc}"
    for artifacts in runs:
        if artifacts.violations:
            v = artifacts.violations[0]
            return (
                f"invariant: {len(artifacts.violations)} violation(s), "
                f"first: {v.render()}"
            )
    mismatch = {
        name: (a, b)
        for (name, a), (_, b) in zip(
            sorted(runs[0].digests().items()), sorted(runs[1].digests().items())
        )
        if a != b
    }
    if mismatch:
        detail = ", ".join(
            f"{name}: {a} != {b}" for name, (a, b) in mismatch.items()
        )
        return f"nondeterminism: {detail}"
    return None


def _plan_variants(plan: FaultPlan) -> list[Optional[FaultPlan]]:
    """Candidate simplifications: the plan with one rule removed each."""
    variants: list[Optional[FaultPlan]] = []
    for attr in ("wire_rules", "partitions", "process_faults", "handler_rules"):
        rules = getattr(plan, attr)
        for i in range(len(rules)):
            reduced = plan.replace(**{attr: rules[:i] + rules[i + 1 :]})
            variants.append(None if reduced.is_empty else reduced)
    return variants


def shrink(
    config: FuzzConfig,
    is_failing: Callable[[FuzzConfig], bool],
    max_evals: int = 32,
) -> FuzzConfig:
    """Greedy ddmin: drop fault rules one at a time, then halve the
    scale, keeping every simplification that still fails.  Bounded by
    ``max_evals`` calls to ``is_failing``."""
    evals = 0

    def still_fails(candidate: FuzzConfig) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return is_failing(candidate)

    current = config
    progress = True
    while progress and evals < max_evals:
        progress = False
        if current.plan is not None:
            for plan in _plan_variants(current.plan):
                candidate = FuzzConfig(
                    seed=current.seed,
                    workload=current.workload,
                    preset=current.preset,
                    scale=current.scale,
                    plan=plan,
                )
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
            if progress:
                continue
        if current.scale > 1:
            candidate = FuzzConfig(
                seed=current.seed,
                workload=current.workload,
                preset=current.preset,
                scale=max(1, current.scale // 2),
                plan=current.plan,
            )
            if still_fails(candidate):
                current = candidate
                progress = True
    return current


def write_repro(report: FailureReport, path: str) -> None:
    """Persist a failure as a replayable JSON repro file."""
    payload = {
        "kind": report.kind,
        "detail": report.detail,
        "config": report.config.to_dict(),
        "shrunk": None if report.shrunk is None else report.shrunk.to_dict(),
    }
    with open(path, "w", newline="\n") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def load_repro(path: str) -> FuzzConfig:
    """Load the (shrunk, if available) config from a repro file."""
    with open(path) as f:
        payload = json.load(f)
    data = payload.get("shrunk") or payload.get("config")
    if not isinstance(data, dict) or "seed" not in data:
        raise ValueError(
            f"{path} is not a fuzz repro file (expected a 'config' entry "
            "as written by write_repro)"
        )
    return FuzzConfig.from_dict(data)


def _sweep_configs(
    seeds, workloads, presets, fault_fraction: float
) -> list[FuzzConfig]:
    """The sweep's configuration matrix, in deterministic order (plan
    generation consumes the per-seed RNG identically regardless of how
    the configs are later dispatched)."""
    configs = []
    for workload in workloads:
        for preset in presets:
            for seed in seeds:
                rng = np.random.default_rng(seed * 1_000_003 + 17)
                plan = (
                    random_fault_plan(rng, workload)
                    if rng.random() < fault_fraction
                    else None
                )
                configs.append(
                    FuzzConfig(
                        seed=seed, workload=workload, preset=preset, plan=plan
                    )
                )
    return configs


def fuzz_sweep(
    *,
    seeds: range | list[int] = range(4),
    workloads: tuple[str, ...] = ("echo", "sonata"),
    presets: tuple[str, ...] = ("fast",),
    fault_fraction: float = 0.5,
    repro_path: Optional[str] = None,
    log: Callable[[str], None] = lambda s: None,
    stop_on_failure: bool = True,
    jobs: int = 1,
) -> SweepResult:
    """The fuzz campaign: seeds x workloads x presets, with a random
    fault plan on ``fault_fraction`` of the configs.

    Failures are shrunk and (if ``repro_path`` is given) written as a
    repro file.  With ``stop_on_failure`` the sweep aborts at the first
    failure -- the CI smoke mode.

    ``jobs > 1`` checks the configurations in parallel worker processes
    (shrinking stays sequential -- ddmin is adaptive).  The reported
    result is identical to ``jobs=1``: failures are examined in matrix
    order, and with ``stop_on_failure`` only the first one counts, even
    if later cells (already dispatched) also failed.
    """
    configs = _sweep_configs(seeds, workloads, presets, fault_fraction)
    result = SweepResult()

    if jobs > 1:
        from ..experiments.runner import fuzz_check_cell, map_cells

        for config in configs:
            log(f"fuzz: {config.describe()}")
        details = map_cells(
            fuzz_check_cell, [c.to_dict() for c in configs], jobs=jobs
        )
    else:
        details = None

    for i, config in enumerate(configs):
        if details is not None:
            detail = details[i]
        else:
            log(f"fuzz: {config.describe()}")
            detail = check_config(config)
        result.configs_run += 1
        if detail is None:
            continue
        kind = detail.split(":", 1)[0]
        log(f"  FAILED ({detail}); shrinking...")
        shrunk = shrink(config, lambda c: check_config(c) is not None)
        report = FailureReport(
            config=config, kind=kind, detail=detail, shrunk=shrunk
        )
        result.failures.append(report)
        log(f"  shrunk to: {shrunk.describe()}")
        if repro_path is not None:
            write_repro(report, repro_path)
            log(f"  repro written to {repro_path}")
        if stop_on_failure:
            return result
    return result
