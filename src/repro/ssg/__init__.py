"""SSG: Scalable Service Groups (Mochi core component)."""

from .group import SSGError, SSGGroup, SSGView
from .membership import MembershipService, ViewPropagator

__all__ = ["SSGError", "SSGGroup", "SSGView", "MembershipService", "ViewPropagator"]
