"""Unit tests for kernel-level resources (Mutex, Semaphore, Store)."""

import pytest

from repro.sim import Mutex, Semaphore, SimulationError, Simulator, Store, Timeout


# ---------------------------------------------------------------- Mutex


def test_mutex_uncontended_acquire_release():
    sim = Simulator()
    m = Mutex(sim)
    done = []

    def proc():
        yield from m.acquire()
        assert m.locked
        m.release()
        done.append(True)

    sim.spawn(proc())
    sim.run()
    assert done == [True]
    assert not m.locked


def test_mutex_serializes_critical_sections():
    sim = Simulator()
    m = Mutex(sim)
    intervals = []

    def proc(tag):
        yield from m.acquire()
        start = sim.now
        yield Timeout(1.0)
        m.release()
        intervals.append((tag, start, sim.now))

    for tag in range(3):
        sim.spawn(proc(tag))
    sim.run()
    # FIFO handoff, back-to-back with no overlap.
    assert intervals == [(0, 0.0, 1.0), (1, 1.0, 2.0), (2, 2.0, 3.0)]


def test_mutex_fifo_fairness():
    sim = Simulator()
    m = Mutex(sim)
    order = []

    def holder():
        yield from m.acquire()
        yield Timeout(5.0)
        m.release()

    def waiter(tag, delay):
        yield Timeout(delay)
        yield from m.acquire()
        order.append(tag)
        m.release()

    sim.spawn(holder())
    sim.spawn(waiter("late", 2.0))
    sim.spawn(waiter("early", 1.0))
    sim.run()
    assert order == ["early", "late"]


def test_mutex_release_unlocked_raises():
    sim = Simulator()
    m = Mutex(sim)
    with pytest.raises(SimulationError):
        m.release()


def test_mutex_try_acquire():
    sim = Simulator()
    m = Mutex(sim)
    assert m.try_acquire()
    assert not m.try_acquire()
    m.release()
    assert m.try_acquire()


def test_mutex_waiting_count():
    sim = Simulator()
    m = Mutex(sim)

    def holder():
        yield from m.acquire()
        yield Timeout(10.0)
        m.release()

    def waiter():
        yield from m.acquire()
        m.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(until=5.0)
    assert m.waiting == 2
    sim.run()
    assert m.waiting == 0


# ---------------------------------------------------------------- Semaphore


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    active = {"n": 0, "max": 0}

    def proc():
        yield from sem.acquire()
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield Timeout(1.0)
        active["n"] -= 1
        sem.release()

    for _ in range(6):
        sim.spawn(proc())
    sim.run()
    assert active["max"] == 2
    assert sim.now == 3.0  # 6 jobs, width 2, 1s each


def test_semaphore_initial_value_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, -1)


def test_semaphore_release_beyond_initial_value():
    sim = Simulator()
    sem = Semaphore(sim, 0)
    sem.release()
    assert sem.value == 1


# ---------------------------------------------------------------- Store


def test_store_put_then_get():
    sim = Simulator()
    st = Store(sim)
    out = []

    def consumer():
        item = yield from st.get()
        out.append(item)

    st.put("x")
    sim.spawn(consumer())
    sim.run()
    assert out == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    st = Store(sim)
    out = []

    def consumer():
        item = yield from st.get()
        out.append((item, sim.now))

    sim.spawn(consumer())
    sim.call_at(3.0, st.put, "late")
    sim.run()
    assert out == [("late", 3.0)]


def test_store_fifo_ordering():
    sim = Simulator()
    st = Store(sim)
    for i in range(5):
        st.put(i)
    assert [st.get_nowait() for _ in range(5)] == [0, 1, 2, 3, 4]
    assert st.get_nowait() is None


def test_store_get_batch_nowait():
    sim = Simulator()
    st = Store(sim)
    for i in range(10):
        st.put(i)
    assert st.get_batch_nowait(4) == [0, 1, 2, 3]
    assert st.get_batch_nowait(100) == [4, 5, 6, 7, 8, 9]
    assert st.get_batch_nowait(4) == []
    assert st.get_batch_nowait(0) == []


def test_store_wait_nonempty_immediate():
    sim = Simulator()
    st = Store(sim)
    st.put("a")
    out = []

    def poller():
        ok = yield from st.wait_nonempty()
        out.append(ok)

    sim.spawn(poller())
    sim.run()
    assert out == [True]
    assert len(st) == 1  # wait_nonempty must not consume


def test_store_wait_nonempty_wakes_on_put():
    sim = Simulator()
    st = Store(sim)
    out = []

    def poller():
        ok = yield from st.wait_nonempty()
        out.append((ok, sim.now, len(st)))

    sim.spawn(poller())
    sim.call_at(2.0, st.put, "item")
    sim.run()
    assert out == [(True, 2.0, 1)]


def test_store_wait_nonempty_timeout():
    sim = Simulator()
    st = Store(sim)
    out = []

    def poller():
        ok = yield from st.wait_nonempty(timeout=1.5)
        out.append((ok, sim.now))

    sim.spawn(poller())
    sim.run()
    assert out == [(False, 1.5)]


def test_store_wait_nonempty_timeout_put_after():
    """An item put after a timed-out wait is still retrievable."""
    sim = Simulator()
    st = Store(sim)
    out = []

    def poller():
        ok = yield from st.wait_nonempty(timeout=1.0)
        out.append(ok)
        yield Timeout(5.0)
        out.append(st.get_nowait())

    sim.spawn(poller())
    sim.call_at(3.0, st.put, "later")
    sim.run()
    assert out == [False, "later"]


def test_store_waiting_getters_counter():
    sim = Simulator()
    st = Store(sim)

    def consumer():
        yield from st.get()

    sim.spawn(consumer())
    sim.spawn(consumer())
    sim.run()
    assert st.waiting_getters == 2
    st.put(1)
    st.put(2)
    sim.run()
    assert st.waiting_getters == 0
