"""Per-request critical-path and wait-state decomposition (Figs 11-12).

The diagnostic half of the paper explains *where* a slow RPC spent its
time: progress-loop starvation, OFI event-queue backlog, handler-pool
queueing.  This engine stitches the t1..t14 span timeline with ULT
run/block slices, fabric arrival timestamps, retry/backoff records, and
fault annotations into a per-request **critical path**, decomposed into
named wait-state categories:

==================  ==========================================================
client_serialize    t1 -> t2-3: input serialization on the origin ULT
network_transit     request and response wire transit (t2-3 -> arrival,
                    t9-10 -> t11)
ofi_cq_backlog      completion sat in the OFI CQ while the progress loop
                    was running (bounded reads / deep queue; Fig 12)
progress_starvation completion sat in the OFI CQ while the progress ULT
                    was *not* running (monopolized ES; Fig 11)
handler_pool_queue  t4 -> t5: spawned handler ULT waiting for an ES (Fig 9)
handler_execute     handler computation proper (exclusive)
backend_service     time inside downstream (child-span) RPCs
rdma_bulk           internal-RDMA metadata pull plus bulk transfers
retry_backoff       backoff slept between failed forward attempts
                    (aggregate/per-operation: each attempt is its own
                    request id, so no *complete* request contains one)
unattributed        reserved; always 0 for complete spans
==================  ==========================================================

**Exact sum-to-total invariant.**  All boundaries are mapped into the
reference timeline of the Lamport/NTP clock correction
(:func:`~repro.symbiosys.analysis.trace_summary.estimate_clock_offsets`),
rounded to integer picoseconds, and monotone-clamped; every category is
a difference (or exact partition) of consecutive boundaries, so the
telescoping sum equals the end-to-end latency *exactly*, per request,
as integers.

**Blame attribution.**  For each queueing wait the engine identifies
what occupied the contended resource during the wait window: other
requests' handler executions for ``handler_pool_queue``, and the
non-progress ULTs holding the execution stream for CQ waits
(``progress_starvation``).  Per-request blame entries aggregate into a
cross-request interference matrix ``victim rpc -> occupant -> ps``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from .analysis.trace_summary import Span, TraceSummary, stitch_traces
from .tracing import EventKind, TraceEvent

__all__ = [
    "CATEGORIES",
    "WAIT_CATEGORIES",
    "BlameEntry",
    "CriticalReport",
    "RequestBreakdown",
    "analyze",
    "analyze_collector",
    "analyze_run",
    "annotate_findings",
    "dominant_wait_state",
]

#: Every wait-state category, in canonical (reporting) order.
CATEGORIES = (
    "client_serialize",
    "network_transit",
    "ofi_cq_backlog",
    "progress_starvation",
    "handler_pool_queue",
    "handler_execute",
    "backend_service",
    "rdma_bulk",
    "retry_backoff",
    "unattributed",
)

#: The subset that is *waiting* (vs. doing the request's own work);
#: finding annotation picks its dominant wait state from these.
WAIT_CATEGORIES = (
    "network_transit",
    "ofi_cq_backlog",
    "progress_starvation",
    "handler_pool_queue",
    "rdma_bulk",
    "retry_backoff",
)

#: Detector -> wait state used when no breakdown overlaps a finding
#: (e.g. the process crashed and produced no complete spans).
_FALLBACK_WAIT = {
    "progress_starvation": "progress_starvation",
    "handler_queue_depth": "handler_pool_queue",
    "forward_timeout_burst": "retry_backoff",
}

_PS = 1e12  # picoseconds per second


def _ps(seconds: float) -> int:
    return int(round(seconds * _PS))


@dataclass(frozen=True)
class BlameEntry:
    """One occupant of a contended resource during one wait window."""

    category: str
    occupant: str
    overlap_ps: int


@dataclass
class RequestBreakdown:
    """The decomposed critical path of one complete root span."""

    request_id: str
    span_id: int
    rpc_name: str
    origin: str
    target: str
    #: Corrected t1 / t14, integer picoseconds on the reference timeline.
    start_ps: int
    total_ps: int
    #: category -> integer picoseconds; sums exactly to ``total_ps``.
    categories: dict
    #: Ordered ``(category, start_ps, duration_ps)`` segments for the
    #: Perfetto critical-path lane.  Category totals are exact; segment
    #: *positions* inside composite windows (CQ wait splits, the handler
    #: window) are ordered placements, not literal sub-timestamps.
    segments: tuple
    blame: tuple
    #: Uncorrected (simulator-truth) span window, for overlap queries
    #: against monitor findings and fault annotations.
    start_true: float
    end_true: float
    n_faults: int = 0

    def check(self) -> bool:
        """The exact sum-to-total invariant."""
        return sum(self.categories.values()) == self.total_ps


class _ProcessIndex:
    """Per-process interval indexes over the scheduler slices."""

    def __init__(self) -> None:
        self.progress: list[tuple[float, float]] = []
        #: Non-progress run slices: parallel (starts, ends, labels).
        self.run_starts: list[float] = []
        self.run_ends: list[float] = []
        self.run_labels: list[str] = []

    def coverage(self, lo: float, hi: float) -> float:
        """Seconds of [lo, hi] covered by progress-ULT run slices."""
        if hi <= lo or not self.progress:
            return 0.0
        covered = 0.0
        starts = [s for s, _ in self.progress]
        i = max(bisect_left(starts, lo) - 1, 0)
        for s, e in self.progress[i:]:
            if s >= hi:
                break
            if e > lo:
                covered += min(e, hi) - max(s, lo)
        return covered

    def occupants(self, lo: float, hi: float) -> dict[str, float]:
        """label -> overlap seconds of non-progress run slices in
        [lo, hi]."""
        out: dict[str, float] = {}
        if hi <= lo or not self.run_starts:
            return out
        i = max(bisect_left(self.run_starts, lo) - 1, 0)
        for j in range(i, len(self.run_starts)):
            s = self.run_starts[j]
            if s >= hi:
                break
            e = self.run_ends[j]
            if e > lo:
                label = self.run_labels[j]
                out[label] = out.get(label, 0.0) + min(e, hi) - max(s, lo)
        return out


def _index_slices(sched_slices: Iterable) -> dict[str, _ProcessIndex]:
    """Split run slices per process into progress vs. everything else."""
    by_process: dict[str, _ProcessIndex] = {}
    rows = []
    for sl in sched_slices:
        if sl.kind != "run" or sl.end <= sl.start:
            continue
        rows.append(sl)
    rows.sort(key=lambda sl: (sl.process, sl.start, sl.end, sl.ult))
    for sl in rows:
        idx = by_process.get(sl.process)
        if idx is None:
            idx = by_process[sl.process] = _ProcessIndex()
        prefix = sl.process + "."
        name = sl.ult[len(prefix):] if sl.ult.startswith(prefix) else sl.ult
        if name == "__margo_progress":
            idx.progress.append((sl.start, sl.end))
        else:
            idx.run_starts.append(sl.start)
            idx.run_ends.append(sl.end)
            idx.run_labels.append(name)
    return by_process


def _span_events(span: Span) -> dict[EventKind, TraceEvent]:
    quad: dict[EventKind, TraceEvent] = {}
    for ev in span.events:
        quad.setdefault(ev.kind, ev)
    return quad


def _split_cq_wait(
    window_ps: int,
    idx: Optional[_ProcessIndex],
    lo_true: float,
    hi_true: float,
) -> tuple[int, int]:
    """Partition a CQ-wait window into (backlog, starvation) ps.

    The covered portion (progress ULT was running: the queue was simply
    deep or reads were capped) is backlog; the uncovered portion is
    starvation.  A process with *no* recorded progress slices degrades
    to all-backlog -- without scheduler data we cannot claim starvation.
    """
    if window_ps <= 0:
        return 0, 0
    if idx is None or not idx.progress:
        return window_ps, 0
    covered = idx.coverage(lo_true, hi_true)
    backlog = min(window_ps, max(_ps(covered), 0))
    return backlog, window_ps - backlog


def _merged_ps(intervals: list[tuple[int, int]], lo: int, hi: int) -> int:
    """Total ps of the union of ``intervals`` clipped to [lo, hi]."""
    clipped = sorted(
        (max(s, lo), min(e, hi)) for s, e in intervals if min(e, hi) > max(s, lo)
    )
    total = 0
    cur_s = cur_e = None
    for s, e in clipped:
        if cur_e is None or s > cur_e:
            if cur_e is not None:
                total += cur_e - cur_s
            cur_s, cur_e = s, e
        elif e > cur_e:
            cur_e = e
    if cur_e is not None:
        total += cur_e - cur_s
    return total


def _decompose(
    span: Span,
    offsets: dict[str, float],
    proc_index: dict[str, _ProcessIndex],
    handler_windows: dict[str, list[tuple[float, float, str, int]]],
) -> Optional[RequestBreakdown]:
    quad = _span_events(span)
    of = quad.get(EventKind.ORIGIN_FORWARD)
    tus = quad.get(EventKind.TARGET_ULT_START)
    tr = quad.get(EventKind.TARGET_RESPOND)
    oc = quad.get(EventKind.ORIGIN_COMPLETE)
    if None in (of, tus, tr, oc) or not span.complete:
        return None

    origin, target = of.process, tus.process
    # Corrected-frame shifts: each side's events anchor the mapping
    # true -> corrected for timestamps recorded on that process.
    shift_t = tus.local_ts - offsets.get(target, 0.0) - tus.true_ts
    shift_o = oc.local_ts - offsets.get(origin, 0.0) - oc.true_ts

    t4_true = tus.data.get("t4", tus.true_ts)
    t_arrival_true = tus.data.get("t_arrival", t4_true)
    irdma = max(tus.data.get("internal_rdma_transfer_time", 0.0), 0.0)
    bulk = max(tr.data.get("bulk_transfer_time", 0.0), 0.0)
    ser = max(oc.pvars.get("input_serialization_time", 0.0), 0.0)
    t11_true = oc.data.get("t11", oc.true_ts)
    t14_true = oc.true_ts

    # Boundary chain, corrected frame:
    #  b0 t1 | b1 serialized | b2 arrival at target CQ | b3 rdma start
    #  b4 t4 deliver | b5 t5 handler start | b6 t8 respond
    #  b7 t11 arrival at origin CQ | b8 t14 completion callback
    raw = (
        span.t1,
        span.t1 + ser,
        t_arrival_true + shift_t,
        t4_true - irdma + shift_t,
        t4_true + shift_t,
        span.t5,
        span.t8,
        t11_true + shift_o,
        span.t14,
    )
    b = [_ps(x) for x in raw]
    start, end = b[0], max(b[0], b[8])
    for i in range(1, 8):
        b[i] = min(end, max(b[i - 1], b[i]))
    b[8] = end
    total = end - start

    cat = dict.fromkeys(CATEGORIES, 0)
    cat["client_serialize"] = b[1] - b[0]
    cat["network_transit"] = (b[2] - b[1]) + (b[7] - b[6])

    tgt_idx = proc_index.get(target)
    org_idx = proc_index.get(origin)
    t_backlog, t_starve = _split_cq_wait(
        b[3] - b[2], tgt_idx, t_arrival_true, t4_true - irdma
    )
    o_backlog, o_starve = _split_cq_wait(
        b[8] - b[7], org_idx, t11_true, t14_true
    )
    cat["ofi_cq_backlog"] = t_backlog + o_backlog
    cat["progress_starvation"] = t_starve + o_starve
    cat["rdma_bulk"] = b[4] - b[3]
    cat["handler_pool_queue"] = b[5] - b[4]

    # Handler window [b5, b6]: child-span time is backend service, the
    # recorded bulk transfer is RDMA, the remainder is handler compute.
    handler_win = b[6] - b[5]
    child_windows = [
        (_ps(c.t1), _ps(c.t14))
        for c in span.children
        if c.t1 is not None and c.t14 is not None
    ]
    backend = _merged_ps(child_windows, b[5], b[6])
    bulk_ps = min(max(_ps(bulk), 0), handler_win - backend)
    cat["backend_service"] = backend
    cat["rdma_bulk"] += bulk_ps
    cat["handler_execute"] = handler_win - backend - bulk_ps

    segments = []
    for category, seg_start, dur in (
        ("client_serialize", b[0], b[1] - b[0]),
        ("network_transit", b[1], b[2] - b[1]),
        ("ofi_cq_backlog", b[2], t_backlog),
        ("progress_starvation", b[2] + t_backlog, t_starve),
        ("rdma_bulk", b[3], b[4] - b[3]),
        ("handler_pool_queue", b[4], b[5] - b[4]),
        ("backend_service", b[5], backend),
        ("rdma_bulk", b[5] + backend, bulk_ps),
        ("handler_execute", b[5] + backend + bulk_ps, cat["handler_execute"]),
        ("network_transit", b[6], b[7] - b[6]),
        ("ofi_cq_backlog", b[7], o_backlog),
        ("progress_starvation", b[7] + o_backlog, o_starve),
    ):
        if dur > 0:
            segments.append((category, seg_start, dur))

    # Blame: who occupied the contended resource during each wait.
    blame: dict[tuple[str, str], int] = {}
    t5_true = tus.true_ts
    for w_start, w_end, rpc, sid in handler_windows.get(target, ()):
        if sid == span.span_id:
            continue
        overlap = min(w_end, t5_true) - max(w_start, t4_true)
        if overlap > 0:
            key = ("handler_pool_queue", rpc)
            blame[key] = blame.get(key, 0) + _ps(overlap)
    for idx, lo, hi in (
        (tgt_idx, t_arrival_true, t4_true - irdma),
        (org_idx, t11_true, t14_true),
    ):
        if idx is None:
            continue
        for label, overlap in idx.occupants(lo, hi).items():
            key = ("progress_starvation", label)
            blame[key] = blame.get(key, 0) + _ps(overlap)
    blame_entries = tuple(
        BlameEntry(category=c, occupant=o, overlap_ps=p)
        for (c, o), p in sorted(blame.items())
        if p > 0
    )

    return RequestBreakdown(
        request_id=span.request_id,
        span_id=span.span_id,
        rpc_name=span.rpc_name,
        origin=origin,
        target=target,
        start_ps=start,
        total_ps=total,
        categories=cat,
        segments=tuple(segments),
        blame=blame_entries,
        start_true=min(ev.true_ts for ev in span.events),
        end_true=max(ev.true_ts for ev in span.events),
        n_faults=len(span.faults),
    )


@dataclass
class CriticalReport:
    """Everything the engine derived from one run's telemetry."""

    breakdowns: list
    #: rpc_name -> {"kind": .., "count": .., "delay_ps": ..} retry cost.
    retry_by_op: dict
    clock_offsets: dict
    n_requests: int
    n_incomplete: int

    # -- invariants ----------------------------------------------------------

    def check_invariant(self) -> None:
        """Raise if any request's categories do not sum to its total."""
        for bd in self.breakdowns:
            if not bd.check():
                raise AssertionError(
                    f"sum-to-total violated for request {bd.request_id} "
                    f"(span {bd.span_id}): {sum(bd.categories.values())} != "
                    f"{bd.total_ps}"
                )

    # -- aggregation ---------------------------------------------------------

    def operation_profiles(self) -> dict:
        """Per-operation breakdown: rpc -> count/total/category sums
        (integer ps), including aggregate retry backoff."""
        ops: dict[str, dict] = {}
        for bd in self.breakdowns:
            op = ops.get(bd.rpc_name)
            if op is None:
                op = ops[bd.rpc_name] = {
                    "count": 0,
                    "total_ps": 0,
                    "categories": dict.fromkeys(CATEGORIES, 0),
                }
            op["count"] += 1
            op["total_ps"] += bd.total_ps
            for name, v in bd.categories.items():
                op["categories"][name] += v
        for rpc, rec in self.retry_by_op.items():
            op = ops.get(rpc)
            if op is None:
                op = ops[rpc] = {
                    "count": 0,
                    "total_ps": 0,
                    "categories": dict.fromkeys(CATEGORIES, 0),
                }
            op["categories"]["retry_backoff"] += rec["delay_ps"]
            op["total_ps"] += rec["delay_ps"]
        return {rpc: ops[rpc] for rpc in sorted(ops)}

    def interference_matrix(self) -> dict:
        """victim rpc -> occupant -> overlap ps, from all blame entries."""
        matrix: dict[str, dict[str, int]] = {}
        for bd in self.breakdowns:
            for entry in bd.blame:
                row = matrix.setdefault(bd.rpc_name, {})
                row[entry.occupant] = (
                    row.get(entry.occupant, 0) + entry.overlap_ps
                )
        return {
            victim: dict(sorted(row.items()))
            for victim, row in sorted(matrix.items())
        }

    def category_totals(self) -> dict:
        """Run-wide category sums (integer ps), retry backoff included."""
        totals = dict.fromkeys(CATEGORIES, 0)
        for bd in self.breakdowns:
            for name, v in bd.categories.items():
                totals[name] += v
        for rec in self.retry_by_op.values():
            totals["retry_backoff"] += rec["delay_ps"]
        return totals

    def render(self, top: int = 5) -> str:
        """Deterministic plain-text report (the Fig 11-12 narrative)."""
        totals = self.category_totals()
        grand = sum(totals.values())
        lines = [
            f"requests decomposed: {len(self.breakdowns)}   "
            f"incomplete: {self.n_incomplete}",
            f"{'category':<22} {'total':>14} {'share':>8}",
            "-" * 46,
        ]
        for name in CATEGORIES:
            v = totals[name]
            share = (100.0 * v / grand) if grand else 0.0
            lines.append(f"{name:<22} {v / 1e9:>12.6f}ms {share:>7.2f}%")
        slowest = sorted(
            self.breakdowns, key=lambda b: (-b.total_ps, b.request_id)
        )[:top]
        if slowest:
            lines.append("")
            lines.append(f"{'slowest requests':<24} {'latency':>12}  dominant")
            for bd in slowest:
                dom = max(
                    CATEGORIES, key=lambda c: (bd.categories[c], c)
                )
                lines.append(
                    f"{bd.request_id:<24} {bd.total_ps / 1e9:>10.6f}ms  "
                    f"{dom}"
                )
        return "\n".join(lines)


def _retry_by_op(retries: Iterable) -> dict:
    out: dict[str, dict] = {}
    for rec in retries:
        row = out.get(rec.rpc_name)
        if row is None:
            row = out[rec.rpc_name] = {
                "retries": 0,
                "timeouts": 0,
                "delay_ps": 0,
            }
        if rec.kind == "retry":
            row["retries"] += 1
        else:
            row["timeouts"] += 1
        row["delay_ps"] += max(_ps(rec.delay), 0)
    return {rpc: out[rpc] for rpc in sorted(out)}


def analyze(
    events: Sequence[TraceEvent],
    *,
    sched_slices: Iterable = (),
    retries: Iterable = (),
    annotations_by_process: Optional[dict] = None,
) -> CriticalReport:
    """Decompose every complete root span in ``events``.

    ``sched_slices`` (from the monitor's :class:`SchedRecorder`) enable
    the backlog-vs-starvation split and ES-occupancy blame; without them
    CQ waits degrade to all-backlog and blame covers only the handler
    pool.  ``retries`` feed the aggregate retry-backoff category.
    """
    summary: TraceSummary = stitch_traces(
        list(events), annotations_by_process=annotations_by_process
    )
    proc_index = _index_slices(sched_slices)

    roots: list[Span] = []
    n_incomplete = 0
    handler_windows: dict[str, list[tuple[float, float, str, int]]] = {}
    for req in summary.requests.values():
        for root in req.roots:
            for span in root.walk():
                quad = _span_events(span)
                tus = quad.get(EventKind.TARGET_ULT_START)
                tr = quad.get(EventKind.TARGET_RESPOND)
                if tus is not None and tr is not None:
                    handler_windows.setdefault(tus.process, []).append(
                        (tus.true_ts, tr.true_ts, span.rpc_name, span.span_id)
                    )
            if root.parent_span_id is None:
                if root.complete:
                    roots.append(root)
                else:
                    n_incomplete += 1
    for windows in handler_windows.values():
        windows.sort()

    breakdowns = []
    for span in roots:
        bd = _decompose(
            span, summary.clock_offsets, proc_index, handler_windows
        )
        if bd is not None:
            breakdowns.append(bd)
        else:  # pragma: no cover - complete spans always decompose
            n_incomplete += 1
    breakdowns.sort(key=lambda b: (b.start_ps, b.request_id, b.span_id))

    return CriticalReport(
        breakdowns=breakdowns,
        retry_by_op=_retry_by_op(retries),
        clock_offsets=dict(sorted(summary.clock_offsets.items())),
        n_requests=len(summary.requests),
        n_incomplete=n_incomplete,
    )


def analyze_collector(collector, monitor=None) -> CriticalReport:
    """Decompose a live run: a collector plus (optionally) its monitor."""
    anns = getattr(collector, "annotations_by_process", None)
    all_retries = getattr(collector, "all_retries", None)
    sched = monitor.sched.slices if monitor is not None else ()
    return analyze(
        collector.all_events(),
        sched_slices=sched,
        retries=all_retries() if all_retries is not None else (),
        annotations_by_process=anns() if anns is not None else None,
    )


def analyze_run(run) -> CriticalReport:
    """Decompose an :class:`~repro.store.archive.ArchivedRun` (or any
    object exposing the collector duck type plus ``sched_slices``)."""
    sched = getattr(run, "sched_slices", None)
    all_retries = getattr(run, "all_retries", None)
    anns = getattr(run, "annotations_by_process", None)
    return analyze(
        run.all_events(),
        sched_slices=sched() if sched is not None else (),
        retries=all_retries() if all_retries is not None else (),
        annotations_by_process=anns() if anns is not None else None,
    )


# -- finding annotation ----------------------------------------------------


def dominant_wait_state(finding, breakdowns: Iterable) -> str:
    """The wait category that dominated the requests surrounding a
    finding (same process, window covering the finding time); falls
    back to the detector's natural category when nothing overlaps."""
    totals = dict.fromkeys(WAIT_CATEGORIES, 0)
    hit = False
    for bd in breakdowns:
        if finding.process not in (bd.origin, bd.target):
            continue
        if not (bd.start_true <= finding.time <= bd.end_true):
            continue
        hit = True
        for name in WAIT_CATEGORIES:
            totals[name] += bd.categories.get(name, 0)
    if hit and any(totals.values()):
        return max(WAIT_CATEGORIES, key=lambda c: (totals[c], c))
    return _FALLBACK_WAIT.get(finding.detector, "")


def annotate_findings(findings: Sequence, report: CriticalReport) -> list:
    """Return findings with :attr:`Finding.wait_state` filled in."""
    return [
        replace(f, wait_state=dominant_wait_state(f, report.breakdowns))
        for f in findings
    ]
