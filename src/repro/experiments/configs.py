"""Table IV: the HEPnOS service configurations C1..C7.

"Databases" is the *total* database count across the deployment (the
origin hashes keys over the total, §V-C-3); each server provider hosts
``databases / n_servers`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["HEPnOSConfig", "TABLE_IV", "table_iv_rows"]


@dataclass(frozen=True)
class HEPnOSConfig:
    """One row of Table IV."""

    name: str
    total_clients: int
    clients_per_node: int
    total_servers: int
    servers_per_node: int
    batch_size: int
    threads: int  # handler execution streams per server
    databases: int  # total across the deployment
    client_progress_thread: bool
    ofi_max_events: int

    def __post_init__(self) -> None:
        if self.total_clients < 1 or self.total_servers < 1:
            raise ValueError("need at least one client and one server")
        if self.clients_per_node < 1 or self.servers_per_node < 1:
            raise ValueError("per-node counts must be positive")
        if self.batch_size < 1 or self.threads < 1 or self.ofi_max_events < 1:
            raise ValueError("batch size, threads, and OFI_max_events must be positive")
        if self.databases % self.total_servers != 0:
            raise ValueError(
                "total databases must divide evenly across servers"
            )

    @property
    def databases_per_server(self) -> int:
        return self.databases // self.total_servers

    @property
    def client_nodes(self) -> int:
        return -(-self.total_clients // self.clients_per_node)

    @property
    def server_nodes(self) -> int:
        return -(-self.total_servers // self.servers_per_node)

    def scaled(self, **overrides) -> "HEPnOSConfig":
        """A copy with some fields replaced (used to scale workloads to
        simulation size while keeping Table IV ratios)."""
        return replace(self, **overrides)


_BASE_LARGE = dict(
    total_clients=32,
    clients_per_node=16,
    total_servers=4,
    servers_per_node=2,
)
_BASE_SMALL = dict(
    total_clients=2,
    clients_per_node=1,
    total_servers=4,
    servers_per_node=2,
)

TABLE_IV: dict[str, HEPnOSConfig] = {
    "C1": HEPnOSConfig(
        name="C1", **_BASE_LARGE, batch_size=1024, threads=5, databases=32,
        client_progress_thread=False, ofi_max_events=16,
    ),
    "C2": HEPnOSConfig(
        name="C2", **_BASE_LARGE, batch_size=1024, threads=20, databases=32,
        client_progress_thread=False, ofi_max_events=16,
    ),
    "C3": HEPnOSConfig(
        name="C3", **_BASE_LARGE, batch_size=1024, threads=20, databases=8,
        client_progress_thread=False, ofi_max_events=16,
    ),
    "C4": HEPnOSConfig(
        name="C4", **_BASE_SMALL, batch_size=1024, threads=16, databases=8,
        client_progress_thread=False, ofi_max_events=16,
    ),
    "C5": HEPnOSConfig(
        name="C5", **_BASE_SMALL, batch_size=1, threads=16, databases=8,
        client_progress_thread=False, ofi_max_events=16,
    ),
    "C6": HEPnOSConfig(
        name="C6", **_BASE_SMALL, batch_size=1, threads=16, databases=8,
        client_progress_thread=False, ofi_max_events=64,
    ),
    "C7": HEPnOSConfig(
        name="C7", **_BASE_SMALL, batch_size=1, threads=16, databases=8,
        client_progress_thread=True, ofi_max_events=64,
    ),
}


def table_iv_rows() -> list[dict]:
    """Table IV rendered as dict rows (the bench prints these)."""
    rows = []
    for cfg in TABLE_IV.values():
        rows.append(
            {
                "Configuration": cfg.name,
                "Total Clients; Clients Per Node": f"{cfg.total_clients}; {cfg.clients_per_node}",
                "Total Servers; Servers Per Node": f"{cfg.total_servers}; {cfg.servers_per_node}",
                "Batch Size": cfg.batch_size,
                "Threads (ESs)": cfg.threads,
                "Databases": cfg.databases,
                "Client Progress Thread?": "yes" if cfg.client_progress_thread else "no",
                "OFI_max_events": cfg.ofi_max_events,
            }
        )
    return rows
