"""Table III: combining instrumentation strategies.

Runs one fully instrumented RPC through the whole stack and regenerates
the table: every interval of Table III measured, each through the
strategy the paper assigns to it (ULT-local key vs Mercury PVAR).
"""

import repro.argobots as abt
from repro.margo import MargoConfig, MargoInstance
from repro.mercury import HGConfig
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.symbiosys import ProfileKey, Stage, SymbiosysCollector, push
from repro.experiments import ascii_table
from .conftest import run_once

#: interval -> (t-range label, strategy), straight from Table III.
PAPER_TABLE_III = {
    "origin_execution_time": ("t1 -> t14", "ULT-local key"),
    "input_serialization_time": ("t2 -> t3", "Mercury PVAR"),
    "internal_rdma_transfer_time": ("t3 -> t4", "Mercury PVAR"),
    "target_handler_time": ("t4 -> t5", "ULT-local key"),
    "input_deserialization_time": ("t6 -> t7", "Mercury PVAR"),
    "target_execution_time_exclusive": ("t5 -> t8", "ULT-local key"),
    "output_serialization_time": ("t9 -> t10", "Mercury PVAR"),
    "target_completion_callback_time": ("t8 -> t13", "ULT-local key"),
    "origin_completion_callback_time": ("t12 -> t14", "Mercury PVAR"),
}

_ORIGIN_SIDE = {
    "origin_execution_time",
    "input_serialization_time",
    "origin_completion_callback_time",
}


def _run_one_rpc():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(Stage.FULL)
    server = MargoInstance(
        sim, fabric, "svr", "n0",
        config=MargoConfig(n_handler_es=1),
        # A small eager buffer so the internal-RDMA interval is exercised.
        hg_config=HGConfig(eager_size=128),
        instrumentation=collector.create_instrumentation(),
    )
    client = MargoInstance(
        sim, fabric, "cli", "n1",
        hg_config=HGConfig(eager_size=128),
        instrumentation=collector.create_instrumentation(),
    )

    def handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(20e-6)
        yield from mi.respond(handle, {"ok": True, "echo": "y" * 200})

    server.register("probe_rpc", handler)
    client.register("probe_rpc")
    done = []

    def body():
        out = yield from client.forward("svr", "probe_rpc", {"blob": "x" * 1000})
        done.append(out)

    client.client_ult(body())
    assert sim.run_until(lambda: done, limit=1.0)
    return collector


def test_table3_intervals(benchmark, report):
    collector = run_once(benchmark, _run_one_rpc)
    code = push(0, "probe_rpc")
    origin = collector.merged_origin_profile()
    target = collector.merged_target_profile()
    okey = ProfileKey(code, "cli", "svr")

    rows = []
    values = {}
    for interval, (t_range, strategy) in PAPER_TABLE_III.items():
        store = origin if interval in _ORIGIN_SIDE else target
        stats = store.get(okey, interval)
        assert stats is not None, f"interval {interval} not measured"
        assert stats.count == 1
        values[interval] = stats.total
        rows.append(
            {
                "Interval Name": interval,
                "Interval": t_range,
                "Instrumentation Strategy": strategy,
                "measured": f"{stats.total * 1e6:.2f}us",
            }
        )
    report.append("Table III: Combining Instrumentation Strategies")
    report.append(ascii_table(rows))

    # Shape: component intervals nest inside the origin execution time,
    # the handler really computed for its 20us, and the overflow really
    # went through internal RDMA.
    total = values["origin_execution_time"]
    assert values["target_execution_time_exclusive"] >= 20e-6
    assert values["internal_rdma_transfer_time"] > 0
    for k, v in values.items():
        if k != "origin_execution_time":
            assert 0 <= v < total, f"{k} should nest inside origin execution"
    benchmark.extra_info["origin_execution_us"] = total * 1e6
