"""Bulk-data references.

Mochi services move large data (object contents, packed key-value blobs)
through Mercury's bulk interface: the RPC metadata carries only a small
*bulk handle descriptor*, and the target pulls the actual bytes over RDMA
(``HGCore.bulk_pull``).  :class:`BulkRef` models that split: the real
payload object travels with the request for simulation convenience, but
only the descriptor size counts as RPC metadata -- the bytes are charged
when the handler performs the bulk transfer.
"""

from __future__ import annotations

from typing import Any

from .serialization import estimate_size

__all__ = ["BulkRef"]

#: Encoded size of a bulk handle descriptor (address + offset + length).
_DESCRIPTOR_SIZE = 24


class BulkRef:
    """A registered memory region exposed for RDMA access."""

    __slots__ = ("data", "nbytes")

    #: Hook honoured by :func:`repro.mercury.serialization.estimate_size`.
    __encoded_size__ = _DESCRIPTOR_SIZE

    def __init__(self, data: Any, nbytes: int = -1):
        """``data`` is the actual payload; ``nbytes`` its registered size
        (estimated from the payload when negative)."""
        self.data = data
        self.nbytes = nbytes if nbytes >= 0 else estimate_size(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BulkRef(nbytes={self.nbytes})"
