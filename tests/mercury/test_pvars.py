"""Tests for the PVAR subsystem and the external tool interface."""

import pytest

from repro.mercury import (
    HGConfig,
    PvarBinding,
    PvarClass,
    PvarDef,
    PvarError,
    PvarRegistry,
)
from .conftest import call_rpc, make_world, serve_echo


# ------------------------------------------------------ registry unit tests


def test_registry_define_and_info():
    reg = PvarRegistry()
    reg.define(
        PvarDef("c", PvarClass.COUNTER, PvarBinding.NO_OBJECT, "a counter")
    )
    assert reg.num_pvars == 1
    info = reg.info(0)
    assert info.name == "c"
    assert info.pvar_class is PvarClass.COUNTER


def test_registry_duplicate_name_rejected():
    reg = PvarRegistry()
    d = PvarDef("c", PvarClass.COUNTER, PvarBinding.NO_OBJECT, "x")
    reg.define(d)
    with pytest.raises(PvarError):
        reg.define(d)


def test_registry_counter_monotonic():
    reg = PvarRegistry()
    reg.define(PvarDef("c", PvarClass.COUNTER, PvarBinding.NO_OBJECT, "x"))
    reg.add("c", 5)
    reg.add("c", 2)
    assert reg.raw_value("c") == 7
    with pytest.raises(PvarError):
        reg.add("c", -1)


def test_registry_level_can_fall():
    reg = PvarRegistry()
    reg.define(PvarDef("l", PvarClass.LEVEL, PvarBinding.NO_OBJECT, "x"))
    reg.add("l", 3)
    reg.add("l", -2)
    assert reg.raw_value("l") == 1


def test_registry_watermarks():
    reg = PvarRegistry()
    reg.define(PvarDef("hi", PvarClass.HIGHWATERMARK, PvarBinding.NO_OBJECT, "x"))
    reg.define(PvarDef("lo", PvarClass.LOWWATERMARK, PvarBinding.NO_OBJECT, "x"))
    for v in (5, 3, 9, 1):
        reg.watermark("hi", v)
        reg.watermark("lo", v)
    assert reg.raw_value("hi") == 9
    assert reg.raw_value("lo") == 1


def test_registry_watermark_on_counter_rejected():
    reg = PvarRegistry()
    reg.define(PvarDef("c", PvarClass.COUNTER, PvarBinding.NO_OBJECT, "x"))
    with pytest.raises(PvarError):
        reg.watermark("c", 1)


def test_registry_getter_pvar_cannot_be_set():
    reg = PvarRegistry()
    reg.define(
        PvarDef("g", PvarClass.STATE, PvarBinding.NO_OBJECT, "x", getter=lambda: 42)
    )
    assert reg.raw_value("g") == 42
    with pytest.raises(PvarError):
        reg.set("g", 1)


def test_registry_handle_bound_cannot_be_set_globally():
    reg = PvarRegistry()
    reg.define(PvarDef("t", PvarClass.TIMER, PvarBinding.HANDLE, "x"))
    with pytest.raises(PvarError):
        reg.set("t", 1.0)
    with pytest.raises(PvarError):
        reg.raw_value("t")


def test_registry_unknown_name():
    reg = PvarRegistry()
    with pytest.raises(PvarError):
        reg.index_of("nope")
    with pytest.raises(PvarError):
        reg.info(0)


# ------------------------------------------------------ Table I / II coverage


def test_all_seven_pvar_classes_exported(world):
    """Table I: every PVAR class is represented by at least one exported
    PVAR."""
    sess = world.svr.hg.pvar_session_init()
    classes = {
        sess.get_info(i).pvar_class for i in range(sess.get_num_pvars())
    }
    assert classes == set(PvarClass)


TABLE_II = {
    "num_posted_handles": (PvarClass.LEVEL, PvarBinding.NO_OBJECT),
    "completion_queue_size": (PvarClass.STATE, PvarBinding.NO_OBJECT),
    "num_ofi_events_read": (PvarClass.LEVEL, PvarBinding.NO_OBJECT),
    "num_rpcs_invoked": (PvarClass.COUNTER, PvarBinding.NO_OBJECT),
    "internal_rdma_transfer_time": (PvarClass.TIMER, PvarBinding.HANDLE),
    "input_serialization_time": (PvarClass.TIMER, PvarBinding.HANDLE),
    "input_deserialization_time": (PvarClass.TIMER, PvarBinding.HANDLE),
    "origin_completion_callback_time": (PvarClass.TIMER, PvarBinding.HANDLE),
}


def test_table_ii_pvars_present_with_correct_class_and_binding(world):
    sess = world.cli.hg.pvar_session_init()
    infos = {
        sess.get_info(i).name: sess.get_info(i)
        for i in range(sess.get_num_pvars())
    }
    for name, (cls, binding) in TABLE_II.items():
        assert name in infos, f"missing Table II PVAR {name}"
        assert infos[name].pvar_class is cls
        assert infos[name].binding is binding


# ------------------------------------------------------ session protocol


def test_session_protocol_full_cycle(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {"k": 1}, results)
    world.sim.run(until=0.05)

    sess = world.cli.hg.pvar_session_init()
    n = sess.get_num_pvars()
    assert n >= len(TABLE_II)
    ph = sess.handle_alloc_by_name("num_rpcs_invoked")
    assert sess.read(ph) == 1
    sess.handle_free(ph)
    sess.finalize()
    assert sess.finalized


def test_session_read_handle_bound_requires_hg_handle(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {}, results)
    world.sim.run(until=0.05)
    sess = world.cli.hg.pvar_session_init()
    ph = sess.handle_alloc_by_name("input_serialization_time")
    with pytest.raises(PvarError):
        sess.read(ph)
    origin_handle = results[0][1]
    assert sess.read(ph, origin_handle) > 0


def test_session_finalized_rejects_use(world):
    sess = world.cli.hg.pvar_session_init()
    sess.finalize()
    with pytest.raises(PvarError):
        sess.get_num_pvars()
    with pytest.raises(PvarError):
        sess.finalize()


def test_session_freed_handle_rejects_read(world):
    sess = world.cli.hg.pvar_session_init()
    ph = sess.handle_alloc_by_name("num_rpcs_invoked")
    sess.handle_free(ph)
    with pytest.raises(PvarError):
        sess.read(ph)
    with pytest.raises(PvarError):
        sess.handle_free(ph)


def test_session_cross_session_handle_rejected(world):
    s1 = world.cli.hg.pvar_session_init()
    s2 = world.cli.hg.pvar_session_init()
    ph = s1.handle_alloc_by_name("num_rpcs_invoked")
    with pytest.raises(PvarError):
        s2.read(ph)


def test_sessions_have_unique_ids(world):
    s1 = world.cli.hg.pvar_session_init()
    s2 = world.cli.hg.pvar_session_init()
    assert s1.session_id != s2.session_id


# ------------------------------------------------------ PVAR values from real RPCs


def test_origin_handle_timers_recorded(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {"payload": "x" * 100}, results)
    world.sim.run(until=0.05)
    handle = results[0][1]
    assert handle.pvar_get("input_serialization_time") > 0
    assert handle.pvar_get("origin_completion_callback_time") >= 0


def test_target_handle_timers_recorded(world):
    seen = serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", {"payload": "y" * 100}, results)
    world.sim.run(until=0.05)
    th = seen[0]
    assert th.pvar_get("input_deserialization_time") > 0
    assert th.pvar_get("output_serialization_time") > 0
    assert th.pvar_get("internal_rdma_transfer_time") == 0.0


def test_eager_overflow_triggers_internal_rdma():
    sim, sides = make_world(hg_config=HGConfig(eager_size=256))
    seen = serve_echo(sides["svr"])
    results = []
    call_rpc(sides["cli"], "svr", "echo", "z" * 5000, results)
    sim.run(until=0.5)
    assert len(results) == 1
    th = seen[0]
    assert th.pvar_get("internal_rdma_transfer_time") > 0
    sess = sides["cli"].hg.pvar_session_init()
    assert sess.read_by_name("eager_overflow_count") == 1


def test_small_payload_does_not_overflow(world):
    serve_echo(world.svr)
    results = []
    call_rpc(world.cli, "svr", "echo", "tiny", results)
    world.sim.run(until=0.05)
    sess = world.cli.hg.pvar_session_init()
    assert sess.read_by_name("eager_overflow_count") == 0


def test_num_rpcs_invoked_counts(world):
    serve_echo(world.svr)
    results = []
    for i in range(5):
        call_rpc(world.cli, "svr", "echo", {"i": i}, results)
    world.sim.run(until=0.5)
    sess = world.cli.hg.pvar_session_init()
    assert sess.read_by_name("num_rpcs_invoked") == 5
    # The server side never invoked an RPC.
    ssess = world.svr.hg.pvar_session_init()
    assert ssess.read_by_name("num_rpcs_invoked") == 0


def test_num_ofi_events_read_tracks_batch(world):
    serve_echo(world.svr)
    results = []
    for i in range(20):
        call_rpc(world.cli, "svr", "echo", {"i": i}, results)
    world.sim.run(until=0.5)
    sess = world.svr.hg.pvar_session_init()
    last = sess.read_by_name("num_ofi_events_read")
    hi = sess.read_by_name("max_ofi_events_read")
    lo = sess.read_by_name("min_ofi_events_read")
    assert 1 <= last <= world.svr.hg.config.ofi_max_events
    assert 1 <= lo <= hi <= world.svr.hg.config.ofi_max_events


def test_pvars_disabled_records_nothing():
    sim, sides = make_world(pvars=False)
    seen = serve_echo(sides["svr"])
    results = []
    call_rpc(sides["cli"], "svr", "echo", {}, results)
    sim.run(until=0.5)
    assert len(results) == 1
    handle = results[0][1]
    with pytest.raises(PvarError):
        handle.pvar_get("input_serialization_time")
    sess = sides["cli"].hg.pvar_session_init()
    assert sess.read_by_name("num_rpcs_invoked") == 0


def test_eager_buffer_size_pvar(world):
    sess = world.cli.hg.pvar_session_init()
    assert sess.read_by_name("eager_buffer_size") == world.cli.hg.config.eager_size


def test_hg_config_validation():
    with pytest.raises(ValueError):
        HGConfig(ofi_max_events=0)
    with pytest.raises(ValueError):
        HGConfig(eager_size=-1)
    with pytest.raises(ValueError):
        HGConfig(post_cost=-1.0)
