"""Chrome trace-event (Perfetto) export: schema validation and
determinism.  The checks here encode the parts of the Trace Event
Format that ``ui.perfetto.dev`` / ``chrome://tracing`` actually require
to load a file: a ``traceEvents`` list, a valid ``ph`` per event,
``ts``/``dur`` in microseconds, and balanced async begin/end pairs."""

import json
from collections import Counter

from repro.symbiosys import Stage
from repro.symbiosys.monitor import Monitor, MonitorConfig
from repro.symbiosys.perfetto import chrome_trace_json, to_chrome_trace
from .conftest import drive_requests, make_instrumented_world

_VALID_PH = {"X", "b", "e", "i", "M", "s", "f"}

FAULTS = [
    (0.5e-3, "drop", "cli", "front", "rpc_request"),
    (0.9e-3, "crash", "back"),
]


def run_monitored_world(n=3):
    world = make_instrumented_world(Stage.FULL)
    monitor = Monitor(world.sim, MonitorConfig(interval=50e-6), fabric=world.fabric)
    for mi in (world.front, world.back, world.client):
        monitor.attach(mi)
    monitor.start()
    results = drive_requests(world, n)
    world.sim.run(until=1.0)
    monitor.stop()
    assert len(results) == n
    world.monitor = monitor
    return world


def validate_schema(doc):
    """Assert ``doc`` is structurally valid Trace Event Format JSON."""
    assert isinstance(doc, dict)
    assert isinstance(doc["traceEvents"], list)
    async_tracks = {}
    for ev in doc["traceEvents"]:
        assert ev["ph"] in _VALID_PH, ev
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        assert isinstance(ev["name"], str) and ev["name"]
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert ev["args"]["name"]
            continue
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] in ("g", "p", "t")
        if ev["ph"] in ("s", "f"):
            # Flow events: start/finish share a cat+id pair; the finish
            # binds to the enclosing slice ("bp": "e").
            assert "cat" in ev and "id" in ev
            if ev["ph"] == "f":
                assert ev["bp"] == "e"
        if ev["ph"] in ("b", "e"):
            assert "cat" in ev and "id" in ev
            async_tracks.setdefault((ev["cat"], ev["id"]), []).append(ev)
    # Every async id opens exactly once and closes exactly once, in order.
    for key, evs in async_tracks.items():
        phs = [e["ph"] for e in evs]
        assert phs == ["b", "e"], (key, phs)
        assert evs[0]["ts"] <= evs[1]["ts"], key


def test_trace_is_valid_json_and_schema():
    world = run_monitored_world()
    text = chrome_trace_json(
        monitor=world.monitor, collector=world.collector, fault_events=FAULTS
    )
    validate_schema(json.loads(text))


def test_trace_contains_all_three_event_families():
    world = run_monitored_world()
    doc = to_chrome_trace(
        monitor=world.monitor, collector=world.collector, fault_events=FAULTS
    )
    cats = Counter(ev.get("cat") for ev in doc["traceEvents"] if "cat" in ev)
    assert cats["ult"] > 0          # scheduler run slices
    assert cats["ult_block"] > 0    # blocked intervals
    assert cats["rpc"] > 0          # t1..t14 / t5..t8 stage spans
    assert cats["fault"] == len(FAULTS)
    # Run slices land on real ES tracks; ULT names are the stable ones.
    ult_names = {e["name"] for e in doc["traceEvents"] if e.get("cat") == "ult"}
    assert "front.__margo_progress" in ult_names
    assert any(n.startswith("front.h:front_op") for n in ult_names)


def test_rpc_spans_cover_origin_and_target():
    world = run_monitored_world(n=1)
    doc = to_chrome_trace(monitor=world.monitor, collector=world.collector)
    rpc_names = {e["name"] for e in doc["traceEvents"] if e.get("cat") == "rpc"}
    # front_op: client-origin span plus the [target] half on front; the
    # nested leaf_op spans stitch the same way one level down.
    assert {"front_op", "front_op [target]", "leaf_op", "leaf_op [target]"} <= rpc_names
    origin = next(
        e for e in doc["traceEvents"]
        if e.get("cat") == "rpc" and e["name"] == "front_op" and e["ph"] == "b"
    )
    assert origin["args"]["span_id"] >= 1
    assert origin["args"]["request_id"].startswith("cli-")


def test_pid_tid_metadata_is_deterministic():
    def dump():
        world = run_monitored_world()
        return chrome_trace_json(
            monitor=world.monitor, collector=world.collector, fault_events=FAULTS
        )

    assert dump() == dump()


def test_fault_instants_on_dedicated_process():
    world = run_monitored_world()
    doc = to_chrome_trace(monitor=world.monitor, fault_events=FAULTS)
    meta = {
        e["pid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == len(FAULTS)
    for ev in instants:
        assert meta[ev["pid"]] == "fault injector"
        assert ev["name"].startswith("fault:")
    crash = next(e for e in instants if e["name"] == "fault:crash")
    assert crash["args"]["detail"] == "back"
    assert crash["ts"] == 900.0  # 0.9 ms in microseconds


def test_flow_events_link_forward_to_handler():
    world = run_monitored_world(n=2)
    doc = to_chrome_trace(monitor=world.monitor, collector=world.collector)
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "rpc_flow"]
    assert flows, "flow arrows must link client forwards to handlers"
    by_id = {}
    for ev in flows:
        by_id.setdefault(ev["id"], []).append(ev)
    for fid, evs in by_id.items():
        assert sorted(e["ph"] for e in evs) == ["f", "s"], fid
        start = next(e for e in evs if e["ph"] == "s")
        finish = next(e for e in evs if e["ph"] == "f")
        assert finish["bp"] == "e"
        # The arrow points forward in time and across processes.
        assert start["ts"] <= finish["ts"]
        assert start["pid"] != finish["pid"]


def test_critical_lane_renders_breakdown_segments():
    from repro.symbiosys.critical import analyze_collector

    world = run_monitored_world(n=2)
    report = analyze_collector(world.collector, world.monitor)
    assert report.breakdowns
    doc = to_chrome_trace(
        monitor=world.monitor, collector=world.collector, critical=report
    )
    validate_schema(doc)
    crit = [e for e in doc["traceEvents"] if e.get("cat") == "critical"]
    assert crit
    meta = {
        e["pid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    lane_pids = {e["pid"] for e in crit}
    assert len(lane_pids) == 1
    assert meta[lane_pids.pop()] == "critical path"
    # One async b/e pair per breakdown segment, named by category.
    n_segments = sum(len(bd.segments) for bd in report.breakdowns)
    assert len(crit) == 2 * n_segments
    from repro.symbiosys.critical import CATEGORIES

    assert {e["name"] for e in crit} <= set(CATEGORIES)


def test_empty_sources_yield_empty_but_valid_trace():
    doc = to_chrome_trace()
    validate_schema(doc)
    assert doc["traceEvents"] == []
