"""Unit and property tests for RNG streams and local clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import LocalClock, RngRegistry


# ---------------------------------------------------------------- RNG


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("net").random(8)
    b = RngRegistry(42).stream("net").random(8)
    assert (a == b).all()


def test_different_names_are_independent():
    reg = RngRegistry(42)
    a = reg.stream("net").random(8)
    b = reg.stream("cpu").random(8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("net").random(8)
    b = RngRegistry(2).stream("net").random(8)
    assert not (a == b).all()


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_stream_creation_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("a")
    a_then = r1.stream("b").random(4)
    r2 = RngRegistry(7)
    b_first = r2.stream("b").random(4)
    assert (a_then == b_first).all()


def test_fork_produces_distinct_streams():
    reg = RngRegistry(5)
    child = reg.fork("worker0")
    a = reg.stream("net").random(4)
    b = child.stream("net").random(4)
    assert not (a == b).all()


def test_fork_is_deterministic():
    a = RngRegistry(5).fork("w").stream("s").random(4)
    b = RngRegistry(5).fork("w").stream("s").random(4)
    assert (a == b).all()


# ---------------------------------------------------------------- Clock


def test_perfect_clock_is_identity():
    c = LocalClock()
    assert c.read(123.456) == 123.456


def test_offset_and_drift_applied():
    c = LocalClock(offset=10.0, drift=0.5)
    assert c.read(2.0) == pytest.approx(10.0 + 1.5 * 2.0)


def test_drift_must_keep_clock_monotone():
    with pytest.raises(ValueError):
        LocalClock(drift=-1.0)


@given(
    offset=st.floats(-1e3, 1e3, allow_nan=False),
    drift=st.floats(-0.5, 0.5, allow_nan=False),
    t=st.floats(0, 1e6, allow_nan=False),
)
def test_invert_is_inverse_of_read(offset, drift, t):
    c = LocalClock(offset=offset, drift=drift)
    assert c.invert(c.read(t)) == pytest.approx(t, abs=1e-6)


@given(
    offset=st.floats(-1e3, 1e3, allow_nan=False),
    drift=st.floats(-0.5, 0.5, allow_nan=False),
    t1=st.floats(0, 1e6, allow_nan=False),
    dt=st.floats(1e-6, 1e3, allow_nan=False),
)
def test_clock_is_strictly_monotone(offset, drift, t1, dt):
    c = LocalClock(offset=offset, drift=drift)
    assert c.read(t1 + dt) > c.read(t1)
