"""HEPnOS data hierarchy: datasets > runs > subruns > events.

Events are serialized physics objects addressed by a canonical string
key.  Key encoding uses zero-padded fixed-width numbers so that
lexicographic ordering equals numeric ordering -- the property HEPnOS
relies on for range listings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EventKey", "event_key", "parse_event_key"]

_WIDTH = 9
_SEP = "%"


@dataclass(frozen=True, order=True)
class EventKey:
    dataset: str
    run: int
    subrun: int
    event: int

    def __post_init__(self) -> None:
        if _SEP in self.dataset:
            raise ValueError(f"dataset name may not contain {_SEP!r}")
        for field_name in ("run", "subrun", "event"):
            value = getattr(self, field_name)
            if not 0 <= value < 10**_WIDTH:
                raise ValueError(f"{field_name} out of range: {value}")

    def encode(self) -> str:
        return _SEP.join(
            (
                self.dataset,
                f"{self.run:0{_WIDTH}d}",
                f"{self.subrun:0{_WIDTH}d}",
                f"{self.event:0{_WIDTH}d}",
            )
        )


def event_key(dataset: str, run: int, subrun: int, event: int) -> str:
    """Canonical storage key for one event."""
    return EventKey(dataset, run, subrun, event).encode()


def parse_event_key(key: str) -> EventKey:
    parts = key.split(_SEP)
    if len(parts) != 4:
        raise ValueError(f"malformed event key {key!r}")
    dataset, run, subrun, event = parts
    return EventKey(dataset, int(run), int(subrun), int(event))
