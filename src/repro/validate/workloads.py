"""Canonical validated workloads for the fuzz runner and golden corpus.

``run_workload`` builds a monitored, invariant-checked
:class:`~repro.cluster.Cluster`, drives one of a small set of named
workloads at a given ``scale``, and returns a :class:`RunArtifacts` with
the rendered exports (Perfetto timeline, Prometheus snapshot, CSV
time-series, profile summary) plus the sha256 digests the determinism
cross-check compares.  Everything is a pure function of
``(workload, seed, preset, scale, plan)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster
from ..faults import FaultPlan
from ..margo import MargoError, RetryPolicy
from ..symbiosys import Stage
from ..symbiosys.analysis import profile_summary
from ..symbiosys.export import series_to_csv, to_prometheus
from ..symbiosys.monitor import MonitorConfig
from ..symbiosys.perfetto import chrome_trace_json
from .invariants import InvariantViolation, ValidationConfig

__all__ = [
    "RunArtifacts",
    "WORKLOAD_SERVERS",
    "WORKLOADS",
    "WorkloadHang",
    "legacy_settle_until",
    "run_workload",
]


def legacy_settle_until(sim, predicate, limit: float, step: float = 5e-3) -> bool:
    """The pre-event-driven observation window, reproduced exactly.

    The golden corpus was recorded when ``run_until`` advanced in fixed
    5 ms windows: after the workload finished, the simulation kept
    running to the next window boundary, and the monitor's 50 us sampler
    kept recording through that tail -- those tail samples are baked
    into the committed digests.  The corpus-feeding paths therefore keep
    this loop (including its float boundary accumulation) verbatim;
    everything else uses the event-driven waits.
    """
    while not predicate() and sim.now < limit:
        sim.run(until=min(limit, sim.now + step))
    return predicate()

#: Server addresses each workload deploys -- the fuzzer aims process
#: faults at these.
WORKLOAD_SERVERS = {
    "echo": ("echo-svr",),
    "sonata": ("sonata-svr",),
    "sharded": tuple(f"kv{i:03d}" for i in range(8)),
}

#: Presets by short name (resolved lazily; experiments imports services).
_PRESETS = ("fast", "theta")


class WorkloadHang(RuntimeError):
    """The workload did not reach its completion predicate in time."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class RunArtifacts:
    """One validated run plus its rendered, digestible exports."""

    workload: str
    seed: int
    preset: str
    scale: int
    makespan: float
    rpcs_ok: int
    rpcs_failed: int
    leaked_events: int
    violations: list[InvariantViolation] = field(default_factory=list)
    prometheus_text: str = ""
    series_csv: str = ""
    perfetto_json: str = ""
    profile_text: str = ""

    def digests(self) -> dict[str, str]:
        """sha256 prefixes of every export -- the determinism probe."""
        return {
            "prometheus": _digest(self.prometheus_text),
            "series_csv": _digest(self.series_csv),
            "perfetto": _digest(self.perfetto_json),
            "profile": _digest(self.profile_text),
        }

    def summary(self) -> str:
        """Deterministic plain-text run card (golden-corpus diff base)."""
        lines = [
            f"workload {self.workload} seed={self.seed} "
            f"preset={self.preset} scale={self.scale}",
            f"  makespan: {self.makespan * 1e3:.6f} ms",
            f"  rpcs: {self.rpcs_ok} ok, {self.rpcs_failed} failed",
            f"  leaked events: {self.leaked_events}",
            f"  violations: {len(self.violations)}",
        ]
        for name, digest in sorted(self.digests().items()):
            lines.append(f"  {name:<12} {digest}")
        return "\n".join(lines)


def _resolve_preset(name: str):
    from ..experiments.presets import FAST_TEST, THETA_KNL

    if name == "fast":
        return FAST_TEST
    if name == "theta":
        return THETA_KNL
    raise ValueError(f"unknown preset {name!r} (expected one of {_PRESETS})")


def _default_retry() -> RetryPolicy:
    # Sized for the fuzzer's fault windows: short per-attempt deadlines
    # so crashed servers turn into errors, not hangs.
    return RetryPolicy(
        max_attempts=4,
        timeout=0.5e-3,
        backoff=0.1e-3,
        backoff_factor=2.0,
        max_backoff=1e-3,
    )


def _echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": len(inp["data"])})


def _run_echo(cluster: Cluster, scale: int, outcome: dict, done: dict) -> None:
    """``scale`` clients, four RPCs each; one payload overflows the eager
    buffer to exercise the internal-RDMA path."""
    (server_addr,) = WORKLOAD_SERVERS["echo"]
    server = cluster.process(server_addr, "nodeS", n_handler_es=2)
    server.register("echo", _echo_handler)
    eager = server.hg.config.eager_size
    payload_sizes = (64, 512, eager + 256, 2048)
    pending = {"n": scale}

    for i in range(scale):
        client = cluster.process(f"echo-cli{i}", f"nodeC{i}")
        client.register("echo")

        def body(mi=None, idx=i):
            for size in payload_sizes:
                try:
                    yield from cluster[f"echo-cli{idx}"].forward(
                        server_addr, "echo", {"data": b"x" * size}
                    )
                    outcome["ok"] += 1
                except MargoError:
                    outcome["failed"] += 1
            pending["n"] -= 1
            if pending["n"] == 0:
                done["at"] = cluster.sim.now

        client.client_ult(body(), name=f"echo-load{i}")


def _run_sonata(cluster: Cluster, scale: int, outcome: dict, done: dict) -> None:
    """One Sonata provider; a client stores ``scale`` batches and fetches
    the first record of each back."""
    from ..services.sonata import SonataClient, SonataProvider

    (server_addr,) = WORKLOAD_SERVERS["sonata"]
    provider_id = 1
    server = cluster.process(server_addr, "nodeS", n_handler_es=2)
    SonataProvider(server, provider_id)
    client_mi = cluster.process("sonata-cli", "nodeC")
    client = SonataClient(client_mi)

    def body():
        try:
            yield from client.create_database(server_addr, provider_id, "col")
            outcome["ok"] += 1
        except MargoError:
            outcome["failed"] += 1
        for batch in range(scale):
            records = [
                {"batch": batch, "i": i, "value": f"r{batch}-{i}"}
                for i in range(10)
            ]
            try:
                yield from client.store_multi(
                    server_addr, provider_id, "col", records, batch_size=10
                )
                outcome["ok"] += 1
            except MargoError:
                outcome["failed"] += 1
        done["at"] = cluster.sim.now

    client_mi.client_ult(body(), name="sonata-load")


def _run_sharded(cluster: Cluster, scale: int, outcome: dict, done: dict) -> None:
    """An eight-server sharded KV fleet; ``scale`` clients spray keys
    through consistent-hash routers and read them back.  Process faults
    aimed at any ``kv*`` server exercise membership churn, view
    propagation, and failover migration under the fuzzer's invariant
    and determinism cross-checks."""
    from ..shard import ShardedKVService

    service = ShardedKVService.deploy(
        cluster, len(WORKLOAD_SERVERS["sharded"])
    )
    pending = {"n": scale}

    for c in range(scale):
        mi = cluster.process(f"shard-cli{c}", f"nodeC{c}")
        router = service.make_router(mi)

        def body(router=router, idx=c):
            for i in range(12):
                try:
                    yield from router.put(f"c{idx}k{i}", f"v{idx}.{i}")
                    outcome["ok"] += 1
                except (MargoError, LookupError):
                    outcome["failed"] += 1
            for i in range(12):
                try:
                    yield from router.get(f"c{idx}k{i}")
                    outcome["ok"] += 1
                except (MargoError, LookupError):
                    outcome["failed"] += 1
            pending["n"] -= 1
            if pending["n"] == 0:
                done["at"] = cluster.sim.now

        mi.client_ult(body(), name=f"shard-load{c}")


WORKLOADS = {
    "echo": _run_echo,
    "sonata": _run_sonata,
    "sharded": _run_sharded,
}


def run_workload(
    workload: str,
    *,
    seed: int,
    preset: str = "fast",
    scale: int = 2,
    plan: Optional[FaultPlan] = None,
    time_limit: float = 5.0,
    strict: bool = False,
    _corrupt_sched: bool = False,
) -> RunArtifacts:
    """Run one named workload under monitoring + invariant checking.

    Raises :class:`WorkloadHang` if the completion predicate is not
    reached within ``time_limit`` simulated seconds (a failure condition
    the fuzzer shrinks like any other).  ``_corrupt_sched`` is a test
    hook: after the workload completes it re-queues a terminated ULT,
    deliberately breaking the scheduler state machine.
    """
    try:
        runner = WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r} (expected one of "
            f"{sorted(WORKLOADS)})"
        ) from None
    if scale < 1:
        raise ValueError("scale must be at least 1")

    outcome = {"ok": 0, "failed": 0}
    done: dict = {}
    with Cluster(
        seed=seed,
        stage=Stage.FULL,
        preset=_resolve_preset(preset),
        fault_plan=plan,
        retry=_default_retry() if plan is not None else None,
        monitoring=MonitorConfig(interval=50e-6),
        validate=ValidationConfig(strict=strict),
    ) as cluster:
        runner(cluster, scale, outcome, done)
        finished = legacy_settle_until(
            cluster.sim, lambda: "at" in done, limit=time_limit
        )
        if not finished:
            cluster.shutdown()
            raise WorkloadHang(
                f"workload {workload!r} (seed={seed}, scale={scale}) did "
                f"not finish within {time_limit}s of simulated time"
            )
        if _corrupt_sched:
            # Re-queue a terminated ULT: the execution stream will
            # dispatch it again, which the state-machine checker must flag.
            dead = [
                u
                for checker in cluster.validator._sched_checkers.values()
                for (u, state) in checker._known.values()
                if state == "terminated"
            ]
            if dead:
                dead[0].pool.push(dead[0])
                cluster.sim.run(until=cluster.sim.now + 1e-3)

    monitor = cluster.monitor
    validator = cluster.validator
    return RunArtifacts(
        workload=workload,
        seed=seed,
        preset=preset,
        scale=scale,
        makespan=done["at"],
        rpcs_ok=outcome["ok"],
        rpcs_failed=outcome["failed"],
        leaked_events=cluster.leaked_events,
        violations=list(validator.violations),
        prometheus_text=to_prometheus(monitor.registry),
        series_csv=series_to_csv(monitor.store),
        perfetto_json=chrome_trace_json(
            monitor=monitor,
            collector=cluster.collector,
            fault_events=cluster.fault_events(),
        ),
        profile_text=profile_summary(cluster.collector).render(),
    )
