"""Unified command-line front door: ``python -m repro``.

One dispatcher over the per-subsystem entry points, which all keep
working on their own::

    python -m repro experiments monitor --seed 0 --store perf.db
    python -m repro bench --smoke --store perf.db
    python -m repro validate fuzz --smoke
    python -m repro analysis query regression --store perf.db \\
        --base run-a --head run-b
    python -m repro store info --store perf.db

The subcommands share flag conventions: ``--seed`` selects the
deterministic seed, ``--out`` the artifact directory, ``--jobs`` the
process fan-out, and ``--store`` the persistent performance store that
ties them together (experiments and bench write it, analysis queries
it).  Everything after the subcommand is passed through verbatim, so
each subsystem's ``--help`` remains authoritative.
"""

from __future__ import annotations

import os
import sys
from importlib import import_module

#: subcommand -> module whose ``main(argv)`` receives the rest.
_COMMANDS = {
    "experiments": "repro.experiments.__main__",
    "bench": "repro.bench.__main__",
    "validate": "repro.validate.__main__",
    "analysis": "repro.analysis.__main__",
    "store": "repro.store.__main__",
}

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  experiments  regenerate the paper's tables and figures
  bench        wall-clock benchmarks and regression gates
  validate     fuzz sweeps and golden-trace checks
  analysis     query a persistent performance store
  store        inspect or import into a performance store

`python -m repro <command> --help` shows each command's flags; the
shared ones are --seed, --out, --jobs, and --store.
"""


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command not in _COMMANDS:
        print(_USAGE, end="", file=sys.stderr)
        print(f"error: unknown command {command!r}", file=sys.stderr)
        return 2
    module = import_module(_COMMANDS[command])
    try:
        return module.main(rest)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; suppress the shutdown
        # complaint about the unflushable stdout and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
