"""The conservative parallel kernel: determinism, safety, validation.

The load-bearing claims under test:

* the deterministic surfaces (report, digests, merged CSVs) are
  byte-identical across worker counts -- the ``--verify`` contract,
* no boundary event is ever delivered earlier than ``send_ts +
  lookahead`` (conservative safety), and the LP runtime refuses one
  that would be,
* the topology validator rejects every partition the execution model
  cannot honor,
* the cross-LP byte ledger balances and the kernel's self-
  observability series line up with the schedule.
"""

import pytest

from repro.sim.parallel import (
    BoundaryEvent,
    KernelError,
    LPSpec,
    ParallelVerifyError,
    PartitionPlan,
    inbound_order,
    run_partitioned,
)
from repro.sim.parallel import kernel as kernel_mod
from repro.sim.parallel.channel import as_events, pickle_roundtrip
from repro.net import FabricConfig

N_RPCS = 8


def _echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp["n"]})


def _server_builder(ctx):
    mi = ctx.process("svr", "nodeS", n_handler_es=1)
    mi.register("echo", _echo_handler)
    ctx.register_remote("cli", "nodeC")


def _client_builder(ctx):
    mi = ctx.process("cli", "nodeC")
    mi.register("echo")
    ctx.register_remote("svr", "nodeS")
    done = ctx.cluster.sim.event("test-done")

    def body():
        ok = 0
        for i in range(N_RPCS):
            out = yield from mi.forward("svr", "echo", {"n": i})
            assert out["echo"] == i
            ok += 1
        ctx.report["rpcs_ok"] = ok
        done.succeed(ctx.cluster.sim.now)

    mi.client_ult(body(), name="test-client")
    ctx.set_done(done)


def echo_plan(**plan_kw):
    plan_kw.setdefault("name", "test_echo")
    return PartitionPlan(
        lps=[LPSpec("server", _server_builder),
             LPSpec("client", _client_builder)],
        **plan_kw,
    )


# -- determinism across worker counts ------------------------------------


def test_digests_identical_across_worker_counts():
    serial = run_partitioned(echo_plan(), workers=1)
    parallel = run_partitioned(echo_plan(), workers=2)
    assert serial.workers_used == 1
    assert parallel.workers_used == 2
    assert parallel.fallback is None
    assert serial.verify_mismatches(parallel) == []
    assert serial.digests() == parallel.digests()
    assert serial.report() == parallel.report()
    assert serial.merged_timeline_csv() == parallel.merged_timeline_csv()


def test_verify_records_the_reference_digests():
    result = run_partitioned(echo_plan(), workers=2, verify=True)
    assert result.verified_against == result.digests()


def test_run_completes_and_reports():
    result = run_partitioned(echo_plan(), workers=1)
    assert result.done
    assert result.makespan > 0
    assert result.windows_executed > 0
    assert result.boundary_events >= 2 * N_RPCS  # request + response each
    client = next(r for r in result.lp_reports if r["name"] == "client")
    assert client["extra"]["rpcs_ok"] == N_RPCS
    assert all(r["leaked_events"] == 0 for r in result.lp_reports)
    assert all(r["stranded_boundary"] == 0 for r in result.lp_reports)


def test_byte_ledger_balances():
    result = run_partitioned(echo_plan(), workers=1)
    exported = sum(r["exported_bytes"] for r in result.lp_reports)
    imported = sum(r["imported_bytes"] for r in result.lp_reports)
    assert exported == imported > 0


def test_kernel_series_match_the_schedule():
    result = run_partitioned(echo_plan(), workers=1)
    series = {
        (ts.name, ts.labels): ts.samples()
        for ts in result.store.all_series()
    }
    boundary = series[("kernel_boundary_events", ())]
    assert len(boundary) == result.windows_executed
    assert sum(v for _, v in boundary) == result.boundary_events
    for lp_name in ("server", "client"):
        per_lp = series[("kernel_window_events", (("lp", lp_name),))]
        assert len(per_lp) == result.windows_executed


# -- conservative safety --------------------------------------------------


def test_boundary_events_never_undercut_lookahead(monkeypatch):
    """Property over a real run: every routed boundary event satisfies
    ``recv_ts >= send_ts + lookahead`` and is delivered into a window
    at or after its receive time."""
    plan = echo_plan()
    lookahead = plan.lookahead()
    captured = []
    orig = kernel_mod._SerialExecutor.round

    def recording_round(self, start, end, inbound):
        for batches in inbound.values():
            for ev in as_events(batches):
                assert ev.recv_ts >= start
        out = orig(self, start, end, inbound)
        for rep in out.values():
            captured.extend(as_events(rep["outbound"]))
        return out

    monkeypatch.setattr(kernel_mod._SerialExecutor, "round", recording_round)
    run_partitioned(plan, workers=1)
    assert captured
    for ev in captured:
        assert ev.recv_ts >= ev.send_ts + lookahead


def test_lp_runtime_rejects_lookahead_violation():
    from repro.sim.parallel.lp import KernelInvariantError, LPRuntime

    plan = echo_plan()
    rt = LPRuntime(plan, 0)  # the server LP
    rt.bind({"svr": 0, "cli": 1})
    bad = BoundaryEvent(
        src_lp=1, dst_lp=0, seq=0, send_ts=1e-6, recv_ts=1.5e-6,
        msg=None,
    )
    with pytest.raises(KernelInvariantError, match="lookahead"):
        rt.window(1.2e-6, 3e-6, [bad])
    rt2 = LPRuntime(plan, 0)
    rt2.bind({"svr": 0, "cli": 1})
    early = BoundaryEvent(
        src_lp=1, dst_lp=0, seq=0, send_ts=0.0, recv_ts=1e-6, msg=None,
    )
    with pytest.raises(KernelInvariantError, match="before window start"):
        rt2.window(2e-6, 3e-6, [early])


# -- channel ordering -----------------------------------------------------


def test_inbound_order_is_canonical():
    def ev(recv_ts, src_lp, seq):
        return BoundaryEvent(src_lp=src_lp, dst_lp=0, seq=seq,
                             send_ts=0.0, recv_ts=recv_ts, msg=None)

    events = [ev(2e-6, 1, 0), ev(1e-6, 2, 5), ev(1e-6, 1, 7), ev(1e-6, 1, 3)]
    ordered = inbound_order(events)
    assert [e.sort_key() for e in ordered] == sorted(
        e.sort_key() for e in events
    )
    assert ordered[0].src_lp == 1 and ordered[0].seq == 3


def test_pickle_roundtrip_copies():
    ev = BoundaryEvent(src_lp=0, dst_lp=1, seq=0, send_ts=0.0,
                       recv_ts=1e-6, msg={"payload": [1, 2]})
    (copy,) = pickle_roundtrip([ev])
    assert copy == ev
    assert copy.msg is not ev.msg
    assert pickle_roundtrip([]) == []


# -- plan and topology validation ----------------------------------------


def test_plan_rejects_bad_shapes():
    with pytest.raises(ValueError, match="at least one LP"):
        PartitionPlan(lps=[])
    with pytest.raises(ValueError, match="duplicate LP names"):
        PartitionPlan(lps=[LPSpec("a", _server_builder),
                           LPSpec("a", _client_builder)])
    with pytest.raises(ValueError, match="conflicts with the plan field"):
        PartitionPlan(lps=[LPSpec("a", _server_builder)],
                      cluster_kw={"seed": 7})
    with pytest.raises(ValueError, match="jitter"):
        PartitionPlan(lps=[LPSpec("a", _server_builder)],
                      fabric_config=FabricConfig(jitter_sigma=0.2))


def _plan_of(*builders):
    return PartitionPlan(
        lps=[LPSpec(f"lp{i}", b) for i, b in enumerate(builders)],
        name="topology",
    )


def test_topology_rejects_node_spanning_two_lps():
    def a(ctx):
        ctx.process("p0", "shared")

    def b(ctx):
        ctx.process("p1", "shared")
        done = ctx.cluster.sim.event("d")
        done.succeed(0.0)
        ctx.set_done(done)

    with pytest.raises(KernelError, match="spans LPs"):
        run_partitioned(_plan_of(a, b))


def test_topology_rejects_duplicate_address():
    def a(ctx):
        ctx.process("same", "nodeA")

    def b(ctx):
        ctx.process("same", "nodeB")
        ctx.set_done(ctx.cluster.sim.event("d"))

    with pytest.raises(KernelError, match="created in two LPs"):
        run_partitioned(_plan_of(a, b))


def test_topology_rejects_unresolved_remote():
    def a(ctx):
        ctx.process("p0", "nodeA")
        ctx.register_remote("ghost", "nodeG")
        ctx.set_done(ctx.cluster.sim.event("d"))

    def b(ctx):
        ctx.process("p1", "nodeB")

    with pytest.raises(KernelError, match="no LP created it"):
        run_partitioned(_plan_of(a, b))


def test_topology_rejects_self_remote():
    # The builder-level guard fires first: declaring a remote for a
    # node this LP already owns is caught by the fabric registry.
    def a(ctx):
        ctx.process("p0", "nodeA")
        with pytest.raises(ValueError, match="local endpoint"):
            ctx.register_remote("p0", "nodeA")
        done = ctx.cluster.sim.event("d")
        done.succeed(0.0)
        ctx.set_done(done)

    def b(ctx):
        ctx.process("p1", "nodeB")
        ctx.register_remote("p0", "nodeA")

    run_partitioned(_plan_of(a, b), workers=1)


def test_topology_rejects_wrong_node_remote():
    def a(ctx):
        ctx.process("p0", "nodeA")
        ctx.set_done(ctx.cluster.sim.event("d"))

    def b(ctx):
        ctx.process("p1", "nodeB")
        ctx.register_remote("p0", "nodeWRONG")

    with pytest.raises(KernelError, match="lives on"):
        run_partitioned(_plan_of(a, b))


def test_topology_requires_a_done_event():
    def a(ctx):
        ctx.process("p0", "nodeA")

    with pytest.raises(KernelError, match="done event"):
        run_partitioned(_plan_of(a))


def test_register_remote_is_idempotent_but_checks_node():
    def a(ctx):
        ctx.process("p0", "nodeA")
        ctx.register_remote("p1", "nodeB")
        ctx.register_remote("p1", "nodeB")  # same declaration: fine
        with pytest.raises(ValueError, match="re-declared"):
            ctx.register_remote("p1", "nodeC")
        done = ctx.cluster.sim.event("d")
        done.succeed(0.0)
        ctx.set_done(done)

    def b(ctx):
        ctx.process("p1", "nodeB")
        ctx.register_remote("p0", "nodeA")

    run_partitioned(_plan_of(a, b), workers=1)


# -- fallback and limits --------------------------------------------------


def test_single_lp_plan_falls_back_to_serial():
    def solo(ctx):
        ctx.process("p0", "nodeA")
        done = ctx.cluster.sim.event("d")
        ctx.cluster.sim.call_at(1e-6, done.succeed, 1e-6)
        ctx.set_done(done)

    result = run_partitioned(
        PartitionPlan(lps=[LPSpec("solo", solo)], name="solo"), workers=4
    )
    assert result.fallback == "single-LP plan"
    assert result.workers_used == 1
    assert "serial fallback" in result.report()


def test_limit_break_before_done_is_an_error():
    def never(ctx):
        ctx.process("p0", "nodeA")
        ctx.set_done(ctx.cluster.sim.event("never-fires"))

    def ticker(ctx):
        ctx.process("p1", "nodeB")

        def tick():
            ctx.cluster.sim.call_after(1e-3, tick)

        ctx.cluster.sim.call_after(1e-3, tick)

    plan = PartitionPlan(
        lps=[LPSpec("never", never), LPSpec("ticker", ticker)],
        limit=5e-3, name="limited",
    )
    with pytest.raises(KernelError, match="hit limit"):
        run_partitioned(plan)


def test_workers_must_be_positive():
    with pytest.raises(ValueError, match="workers"):
        run_partitioned(echo_plan(), workers=0)


def test_serial_fallback_is_noted_and_metered(capsys):
    def solo(ctx):
        ctx.process("p0", "nodeA")
        done = ctx.cluster.sim.event("d")
        ctx.cluster.sim.call_at(1e-6, done.succeed, 1e-6)
        ctx.set_done(done)

    plan = PartitionPlan(lps=[LPSpec("solo", solo)], name="solo")
    result = run_partitioned(plan, workers=4)
    err = capsys.readouterr().err
    assert "4 worker(s) requested but running serially" in err
    assert "single-LP plan" in err
    assert result.registry.gauge("kernel_serial_fallback").value == 1.0

    # A genuinely parallel run neither warns nor sets the gauge.
    result = run_partitioned(echo_plan(), workers=2)
    assert "running serially" not in capsys.readouterr().err
    assert result.fallback is None
    assert result.registry.gauge("kernel_serial_fallback").value == 0.0


# -- bounded-jitter fabrics ------------------------------------------------


def _jittered_config(sigma=0.5, bound=1e-6):
    return FabricConfig(jitter_sigma=sigma, jitter_bound=bound)


def test_jitter_bound_validation_and_lookahead():
    config = _jittered_config()
    assert config.min_cross_node_latency() == config.latency - 1e-6
    with pytest.raises(ValueError, match="jitter_bound"):
        FabricConfig(jitter_bound=-1e-9)
    with pytest.raises(ValueError, match="below the cross-node latency"):
        FabricConfig(jitter_sigma=0.2, jitter_bound=FabricConfig().latency)
    # Declaring a bound without jitter is allowed and changes nothing.
    plain = FabricConfig(jitter_bound=1e-6)
    assert plain.min_cross_node_latency() == plain.latency


def test_jittered_plan_digests_identical_across_worker_counts():
    serial = run_partitioned(
        echo_plan(fabric_config=_jittered_config()), workers=1
    )
    parallel = run_partitioned(
        echo_plan(fabric_config=_jittered_config()), workers=2
    )
    assert parallel.fallback is None
    assert serial.verify_mismatches(parallel) == []
    assert serial.digests() == parallel.digests()


class _DelaySpiker:
    """Fault hook that adds a latency spike to every cross-node
    message -- the jitter x fault interaction under test."""

    def __init__(self, extra_delay):
        self.extra_delay = extra_delay

    def on_message(self, msg, src_ep, dst_ep):
        from repro.net import WireFault

        return WireFault(extra_delay=self.extra_delay)

    def on_rdma(self, ini_ep, rem_ep):
        return False


def test_jitter_truncation_holds_under_wire_faults(monkeypatch):
    """Regression: with jitter_sigma > 0 the truncated floor (latency -
    jitter_bound) is the lookahead, and a WireFault latency spike can
    only push boundary events further above it -- no routed event may
    trigger the LP runtime's KernelInvariantError."""
    from repro.net import WireFault

    # A negative spike could undercut the truncated floor; the fabric
    # rejects it at construction.
    with pytest.raises(ValueError, match="non-negative"):
        WireFault(extra_delay=-1e-9)

    def faulty_server(ctx):
        _server_builder(ctx)
        ctx.cluster.fabric.fault_hook = _DelaySpiker(3e-7)

    def faulty_client(ctx):
        _client_builder(ctx)
        ctx.cluster.fabric.fault_hook = _DelaySpiker(3e-7)

    plan = PartitionPlan(
        lps=[LPSpec("server", faulty_server),
             LPSpec("client", faulty_client)],
        fabric_config=_jittered_config(),
        name="jitter_fault",
    )
    lookahead = plan.lookahead()
    assert lookahead == pytest.approx(
        _jittered_config().latency - 1e-6
    )
    captured = []
    orig = kernel_mod._SerialExecutor.round

    def recording_round(self, start, end, inbound):
        out = orig(self, start, end, inbound)
        for rep in out.values():
            captured.extend(as_events(rep["outbound"]))
        return out

    monkeypatch.setattr(kernel_mod._SerialExecutor, "round", recording_round)
    result = run_partitioned(plan, workers=1)
    assert result.done
    assert captured
    for ev in captured:
        assert ev.recv_ts >= ev.send_ts + lookahead


def test_jittered_lp_runtime_still_rejects_floor_undercut():
    from repro.sim.parallel.lp import KernelInvariantError, LPRuntime

    plan = echo_plan(fabric_config=_jittered_config())
    rt = LPRuntime(plan, 0)
    rt.bind({"svr": 0, "cli": 1})
    lookahead = plan.lookahead()
    bad = BoundaryEvent(
        src_lp=1, dst_lp=0, seq=0,
        send_ts=1e-6, recv_ts=1e-6 + 0.9 * lookahead, msg=None,
    )
    with pytest.raises(KernelInvariantError, match="lookahead"):
        rt.window(1e-6, 3e-6, [bad])
