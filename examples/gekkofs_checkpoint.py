#!/usr/bin/env python3
"""Service generality: profiling a GekkoFS checkpoint workload.

The paper expects SYMBIOSYS "to support this wide range of HPC service
and execution environments that are enabled by Mochi."  This example
runs an N-rank checkpoint burst against a GekkoFS deployment (one of the
cited services, implemented over the same stack) with full
instrumentation, then uses the standard analysis path -- the framework
needs zero service-specific code.

Run:  python examples/gekkofs_checkpoint.py
"""

import numpy as np

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.gekkofs import GekkoFSClient, GekkoFSCluster
from repro.sim import RngRegistry, Simulator
from repro.symbiosys import Stage, SymbiosysCollector
from repro.symbiosys.analysis import profile_summary, system_summary

N_DAEMONS = 4
N_RANKS = 8
CHECKPOINT_BYTES = 256 * 1024  # per rank


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(Stage.FULL)
    cluster = GekkoFSCluster.deploy(
        sim,
        fabric,
        n_daemons=N_DAEMONS,
        instrumentation_factory=collector.create_instrumentation,
    )

    done = []
    rng = RngRegistry(17)
    for rank in range(N_RANKS):
        mi = MargoInstance(
            sim, fabric, f"rank{rank}", f"cn{rank // 4}",
            instrumentation=collector.create_instrumentation(),
        )
        client = GekkoFSClient(mi, cluster)
        payload = rng.fork(f"r{rank}").stream("ckpt").integers(
            0, 256, size=CHECKPOINT_BYTES, dtype=np.uint8
        ).tobytes()

        def body(c=client, r=rank, data=payload):
            path = f"/ckpt/step42/rank{r}"
            yield from c.create(path)
            yield from c.write(path, 0, data)
            back = yield from c.read(path, 0, len(data))
            assert back == data, "checkpoint corrupted"
            done.append(r)

        mi.client_ult(body(), name=f"ckpt{rank}")

    assert sim.run_until(lambda: len(done) == N_RANKS, limit=10.0)
    print(f"{N_RANKS} ranks checkpointed {CHECKPOINT_BYTES // 1024} KiB each "
          f"across {N_DAEMONS} daemons, verified, at t={sim.now * 1e3:.2f} ms\n")

    print("=== dominant GekkoFS callpaths (no service-specific tooling) ===")
    print(profile_summary(collector).render(top_n=4))

    print("\n=== per-daemon system statistics ===")
    summary = system_summary(collector.all_events())
    print(summary.render())

    chunks_per_daemon = [len(d.chunks) for d in cluster.daemons]
    print(f"\nchunk striping across daemons: {chunks_per_daemon}")


if __name__ == "__main__":
    main()
