"""ASCII rendering helpers for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["ascii_table", "series_histogram", "format_seconds"]


def ascii_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Fixed-width table from dict rows (column order from the first row
    unless given)."""
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for c in cols:
            cell = row.get(c, "")
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = " | ".join(str(c).ljust(widths[c]) for c in cols)
    sep = "-+-".join("-" * widths[c] for c in cols)
    lines = [header, sep]
    for cells in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[c]) for cell, c in zip(cells, cols))
        )
    return "\n".join(lines)


def series_histogram(
    values: Iterable[int], *, bins: Sequence[int], label: str = "value"
) -> str:
    """Textual histogram of an integer sample series (used to render the
    Figure 12 num_ofi_events_read distributions)."""
    values = list(values)
    edges = list(bins)
    counts = [0] * (len(edges) + 1)
    for v in values:
        for i, edge in enumerate(edges):
            if v <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    total = max(1, len(values))
    lines = [f"{label}: {len(values)} samples"]
    lo = None
    for i, edge in enumerate(edges):
        tag = f"<= {edge}" if lo is None else f"{lo + 1}-{edge}"
        bar = "#" * int(40 * counts[i] / total)
        lines.append(f"  {tag:>9}: {counts[i]:>6} {bar}")
        lo = edge
    bar = "#" * int(40 * counts[-1] / total)
    lines.append(f"  > {edges[-1]:>7}: {counts[-1]:>6} {bar}")
    return "\n".join(lines)


def format_seconds(value: float) -> str:
    """Human scale: µs/ms/s."""
    if value < 1e-3:
        return f"{value * 1e6:.2f}us"
    if value < 1.0:
        return f"{value * 1e3:.3f}ms"
    return f"{value:.3f}s"
