"""Worker-count matrix over the partitioned golden workloads.

The ``--verify`` contract, exhaustively: for every partitioned corpus
service (sdskv, bake, hepnos, the 32-server sharded fleet), the full
digest surface -- merged timeline/series, per-LP prometheus / CSV /
perfetto / profile exports, the kernel schedule card -- is
byte-identical at 1, 2, and 4 workers.
"""

import pytest

from repro.validate.parallel import (
    PARALLEL_SERVICES,
    parallel_golden_run,
    parallel_result,
)

WORKER_MATRIX = (1, 2, 4)


@pytest.mark.parametrize("service", PARALLEL_SERVICES)
def test_digests_identical_across_worker_matrix(service):
    reference = parallel_result(service, workers=1)
    ref_digests = reference.digests()
    assert reference.done
    for workers in WORKER_MATRIX[1:]:
        result = parallel_result(service, workers=workers)
        assert result.workers_used == min(workers, result.n_lps)
        assert result.fallback is None
        mismatched = [
            key
            for key, digest in result.digests().items()
            if ref_digests.get(key) != digest
        ]
        assert mismatched == [], (
            f"{service} diverged at workers={workers}: {mismatched}"
        )
        assert result.report() == reference.report()


def test_matrix_runs_are_clean():
    for service in PARALLEL_SERVICES:
        result = parallel_result(service, workers=1)
        for rep in result.lp_reports:
            assert rep["violations"] == 0, (service, rep["name"])
            assert rep["leaked_events"] == 0, (service, rep["name"])
            assert rep["stranded_boundary"] == 0, (service, rep["name"])


def test_golden_run_artifacts_are_reproducible():
    # The corpus entry builder itself double-runs byte-identically
    # (the regen path and the check path must agree).
    a = parallel_golden_run("sdskv")
    b = parallel_golden_run("sdskv")
    assert a.prometheus_text == b.prometheus_text
    assert a.series_csv == b.series_csv
    assert a.perfetto_json == b.perfetto_json
    assert a.profile_text == b.profile_text
    assert a.digests() == b.digests()
