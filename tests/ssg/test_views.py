"""Tests for epoch-numbered SSG views and fabric-delayed propagation.

The regression scenario: a member dies while an *older* view (recorded
before the death) is still in flight to a replica.  Without the
stale-epoch guard the late arrival resurrects the dead member; with it
the replica ignores anything at or below its current epoch.
"""

import pytest

from repro.sim import Simulator
from repro.ssg import SSGError, SSGGroup, SSGView, ViewPropagator


def test_membership_changes_bump_epoch():
    g = SSGGroup("svc")
    assert g.epoch == 0
    g.join("a")
    g.join("b")
    assert g.epoch == 2
    g.leave("a")
    assert g.epoch == 3


def test_view_snapshot_is_frozen():
    g = SSGGroup("svc", ["a", "b"])
    v = g.view()
    assert isinstance(v, SSGView)
    assert v.name == "svc"
    assert v.epoch == g.epoch
    assert v.members == ("a", "b")
    g.leave("a")
    assert v.members == ("a", "b")  # snapshot unaffected


def test_apply_view_advances_replica():
    auth = SSGGroup("svc", ["a", "b", "c"])
    replica = SSGGroup("svc", ["a", "b", "c"])
    replica.epoch = auth.epoch
    auth.leave("b")
    assert replica.apply_view(auth.view()) is True
    assert replica.members == ["a", "c"]
    assert replica.epoch == auth.epoch


def test_apply_view_rejects_wrong_group():
    g = SSGGroup("svc", ["a"])
    with pytest.raises(SSGError):
        g.apply_view(SSGView(name="other", epoch=99, members=("a",)))


def test_stale_epoch_view_cannot_resurrect_dead_member():
    """The regression: a view recorded *before* a death arrives at a
    replica *after* the death view did.  The dead member must stay
    dead."""
    auth = SSGGroup("svc", ["a", "b", "c"])
    replica = SSGGroup("svc", ["a", "b", "c"])
    replica.epoch = auth.epoch

    in_flight = auth.view()  # epoch E, still includes "c"
    auth.leave("c")          # "c" dies -> epoch E+1
    death_view = auth.view()

    assert replica.apply_view(death_view) is True
    assert "c" not in replica
    # The delayed pre-death view arrives late: must be ignored.
    assert replica.apply_view(in_flight) is False
    assert "c" not in replica
    assert replica.epoch == death_view.epoch


def test_equal_epoch_view_is_stale():
    g = SSGGroup("svc", ["a", "b"])
    assert g.apply_view(g.view()) is False


def test_apply_view_notifies_observers_with_deltas():
    replica = SSGGroup("svc", ["a", "b", "c"])
    log = []
    replica.observe(lambda change, addr, rank: log.append((change, addr)))
    replica.apply_view(
        SSGView(name="svc", epoch=replica.epoch + 1, members=("a", "c", "d"))
    )
    assert ("leave", "b") in log
    assert ("join", "d") in log
    assert replica.members == ["a", "c", "d"]


def test_propagator_delivers_views_over_simulated_delay():
    sim = Simulator()
    auth = SSGGroup("svc", ["a", "b"])
    replica = SSGGroup("svc", ["a", "b"])
    replica.epoch = auth.epoch
    prop = ViewPropagator(sim, base_delay=2e-6)
    prop.register(replica)

    auth.leave("b")
    prop.propagate(auth.view())
    assert replica.members == ["a", "b"]  # not yet delivered
    sim.run()
    assert replica.members == ["a"]
    assert replica.epoch == auth.epoch


def test_propagator_out_of_order_delivery_hits_stale_guard():
    """Fabric reordering: the pre-death view is delayed past the death
    view.  Delivery order inverts, the stale guard must hold."""
    sim = Simulator()
    auth = SSGGroup("svc", ["a", "b", "c"])
    replica = SSGGroup("svc", ["a", "b", "c"])
    replica.epoch = auth.epoch
    prop = ViewPropagator(sim, base_delay=1e-6)
    prop.register(replica)

    slow_view = auth.view()          # epoch E (includes "c")
    auth.leave("c")
    fast_view = auth.view()          # epoch E+1 (death)
    prop.propagate(slow_view, delay=10e-6)
    prop.propagate(fast_view, delay=1e-6)
    sim.run()
    assert "c" not in replica
    assert replica.epoch == fast_view.epoch
    assert prop.stale_drops == 1


def test_propagator_staggers_replicas_deterministically():
    sim = Simulator()
    auth = SSGGroup("svc", ["a", "b"])
    replicas = [SSGGroup("svc", ["a", "b"]) for _ in range(3)]
    prop = ViewPropagator(sim, base_delay=1e-6, stagger=0.5e-6)
    for r in replicas:
        prop.register(r)
    auth.leave("b")
    prop.propagate(auth.view())
    arrival = {}
    for i, r in enumerate(replicas):
        r.observe(
            lambda change, addr, rank, i=i: arrival.setdefault(i, sim.now)
        )
    sim.run()
    assert arrival[0] < arrival[1] < arrival[2]
