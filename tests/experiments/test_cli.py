"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import TARGETS, main


def test_list_prints_targets(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(TARGETS)


def test_unknown_target_errors():
    with pytest.raises(SystemExit):
        main(["figNaN"])


def test_table4_runs(capsys):
    assert main(["table4"]) == 0
    captured = capsys.readouterr()
    assert "Table IV" in captured.out
    assert "C7" in captured.out
    # Timing goes to stderr so stdout stays identical across --jobs.
    assert "[table4 done" in captured.err


def test_fig7_runs(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "input_deserialization_time" in out


def test_fig9_with_reduced_events(capsys):
    assert main(["fig9", "--events", "1024"]) == 0
    out = capsys.readouterr().out
    assert "handler share" in out
    assert "C1" in out and "C2" in out


def test_multiple_targets(capsys):
    assert main(["table4", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out and "deserialization" in out
