"""FIFO work pools.

A pool holds READY ULTs.  One or more execution streams dequeue from a
pool; when a pool is empty an ES parks on it and is woken by the next
push.  The pool also keeps the high-watermark and cumulative statistics
the SYMBIOSYS system monitor samples.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from ..sim import SimEvent, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .ult import ULT

__all__ = ["Pool"]


class Pool:
    """An Argobots-style FIFO pool of ready ULTs."""

    def __init__(self, sim: Simulator, name: str = "pool"):
        self.sim = sim
        self.name = name
        self._queue: deque["ULT"] = deque()
        self._waiters: deque[SimEvent] = deque()
        #: Highest number of ULTs ever queued simultaneously.
        self.high_watermark = 0
        #: Total ULTs ever pushed (for throughput accounting).
        self.total_pushed = 0
        #: Total ULTs ever dequeued.  ``total_pushed - total_popped ==
        #: len(pool)`` is the conservation invariant the validation layer
        #: checks.
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, ult: "ULT") -> None:
        """Append a READY ULT and wake one parked execution stream."""
        self._queue.append(ult)
        self.total_pushed += 1
        if len(self._queue) > self.high_watermark:
            self.high_watermark = len(self._queue)
        if self._waiters:
            self._waiters.popleft().succeed()

    def pop(self) -> Optional["ULT"]:
        """Dequeue the next ready ULT, or None if the pool is empty."""
        if self._queue:
            self.total_popped += 1
            return self._queue.popleft()
        return None

    def work_event(self) -> SimEvent:
        """An event fired at the next :meth:`push` (one-shot, one waiter)."""
        ev = self.sim.event(f"{self.name}.work")
        self._waiters.append(ev)
        return ev

    def cancel_wait(self, ev: SimEvent) -> None:
        """Withdraw a parked waiter (used when an ES shuts down or a wait
        times out)."""
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pool({self.name!r}, len={len(self._queue)})"
