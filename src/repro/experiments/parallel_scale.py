"""Sharded fleet at scale through the conservative parallel kernel.

The serial ``scale`` experiment sweeps churn campaigns (crash, view
change, migration) -- all cross-LP non-goals of the parallel kernel.
This experiment is its static counterpart: the same 32+-server
consistent-hash fleet and client load, partitioned across server LPs
plus one client LP, every RPC crossing an LP boundary.  It is the
workload behind ``python -m repro.experiments scale --workers N``, the
CI ``parallel-smoke`` determinism gate, and the ``parallel_scale``
macro benchmarks.

The report is deterministic (no wall-clock facts); timing lives in
:meth:`ParallelScaleResult.timing` for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import FabricConfig
from ..sim.parallel import LPSpec, ParallelRunResult, PartitionPlan, run_partitioned
from ..symbiosys import Stage
from ..symbiosys.monitor import MonitorConfig
from ..validate.invariants import ValidationConfig

__all__ = [
    "ParallelScaleCell",
    "ParallelScaleResult",
    "build_parallel_scale_plan",
    "run_parallel_scale",
    "smoke_parallel_cell",
]


@dataclass(frozen=True)
class ParallelScaleCell:
    """One shape of the partitioned fleet."""

    n_servers: int
    server_lps: int
    n_clients: int
    keys_per_client: int

    @property
    def name(self) -> str:
        return (
            f"par-{self.n_servers}s-{self.server_lps}lp"
            f"-{self.n_clients}c-{self.keys_per_client}k"
        )


def smoke_parallel_cell() -> ParallelScaleCell:
    """The CI smoke shape: the 32-server fleet over 4 server LPs."""
    return ParallelScaleCell(
        n_servers=32, server_lps=4, n_clients=4, keys_per_client=25
    )


def _server_builder(cell: ParallelScaleCell, local_indices: list[int]):
    def build(ctx) -> None:
        from ..shard import ShardedKVService

        for c in range(cell.n_clients):
            ctx.register_remote(f"scli{c:02d}", f"cnode{c:02d}")
        ShardedKVService.deploy_partition(
            ctx, cell.n_servers, local_indices, n_handler_es=2
        )

    return build


def _client_builder(cell: ParallelScaleCell):
    def build(ctx) -> None:
        from ..shard import ShardedKVService

        sim = ctx.cluster.sim
        done = sim.event("parallel-scale-done")
        ctx.set_done(done)
        remaining = {"n": cell.n_clients}
        ok = {"n": 0}

        for c in range(cell.n_clients):
            mi = ctx.process(f"scli{c:02d}", f"cnode{c:02d}")
            router = ShardedKVService.make_partition_router(
                ctx, mi, cell.n_servers
            )

            def body(c=c, router=router):
                for i in range(cell.keys_per_client):
                    key = f"c{c:02d}k{i:03d}"
                    yield from router.put(key, f"v{c}:{i}")
                    ok["n"] += 1
                for i in range(cell.keys_per_client):
                    key = f"c{c:02d}k{i:03d}"
                    value = yield from router.get(key)
                    assert value == f"v{c}:{i}"
                    ok["n"] += 1
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    ctx.report["rpcs_ok"] = ok["n"]
                    done.succeed(sim.now)

            mi.client_ult(body(), name=f"par-scale-{c:02d}")

    return build


def build_parallel_scale_plan(
    cell: ParallelScaleCell, *, seed: int = 0, collect: bool = True
) -> PartitionPlan:
    from ..shard import ShardedKVService

    parts = ShardedKVService.partition_servers(cell.n_servers, cell.server_lps)
    lps = [
        LPSpec(f"servers{lp}", _server_builder(cell, list(indices)))
        for lp, indices in enumerate(parts)
    ]
    lps.append(LPSpec("clients", _client_builder(cell)))
    return PartitionPlan(
        lps=lps,
        seed=seed,
        fabric_config=FabricConfig(),
        cluster_kw=dict(
            stage=Stage.FULL,
            monitoring=MonitorConfig(interval=50e-6),
            validate=ValidationConfig(strict=True),
        ),
        collect=collect,
        name=f"parallel_scale:{cell.name}",
    )


@dataclass
class ParallelScaleResult:
    cell: ParallelScaleCell
    seed: int
    workers: int
    result: ParallelRunResult

    def report(self) -> str:
        """Deterministic cell card: kernel schedule + digests, no
        wall-clock facts (CI diffs this across runs and workers)."""
        lines = [
            f"cell {self.cell.name} seed={self.seed}",
            self.result.report(),
            "digests:",
        ]
        for key, digest in sorted(self.result.digests().items()):
            lines.append(f"  {key:<40} {digest}")
        return "\n".join(lines)

    def timing(self) -> dict[str, float]:
        return self.result.timing()

    def check_invariants(self) -> None:
        """Acceptance gate: the workload finished, every RPC landed,
        nothing leaked, and no boundary event was stranded."""
        expected = 2 * self.cell.n_clients * self.cell.keys_per_client
        problems = []
        if not self.result.done:
            problems.append("workload did not complete")
        rpcs = sum(
            r["extra"].get("rpcs_ok", 0) for r in self.result.lp_reports
        )
        if rpcs != expected:
            problems.append(f"rpcs_ok {rpcs} != expected {expected}")
        for r in self.result.lp_reports:
            if r["violations"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['violations']} invariant violation(s)"
                )
            if r["leaked_events"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['leaked_events']} leaked event(s)"
                )
            if r["stranded_boundary"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['stranded_boundary']} stranded boundary event(s)"
                )
        if problems:
            raise AssertionError(
                "parallel scale invariants failed:\n  " + "\n  ".join(problems)
            )


def run_parallel_scale(
    cell: Optional[ParallelScaleCell] = None,
    *,
    seed: int = 0,
    workers: int = 1,
    verify: bool = False,
    collect: bool = True,
    store=None,
) -> ParallelScaleResult:
    """Execute one partitioned scale cell.

    ``verify=True`` additionally runs the serial reference and fails
    on any digest mismatch.  ``store`` archives the run (kernel
    metrics + per-LP summaries) into a performance store.
    """
    cell = cell if cell is not None else smoke_parallel_cell()
    plan = build_parallel_scale_plan(cell, seed=seed, collect=collect)
    result = run_partitioned(plan, workers=workers, verify=verify)
    scale_result = ParallelScaleResult(
        cell=cell, seed=seed, workers=workers, result=result
    )
    if store is not None:
        from ..store import record_parallel_run

        record_parallel_run(
            store,
            result,
            name=f"parallel-scale-{cell.name}-seed{seed}",
            tags={"cell": cell.name, "workers": str(workers)},
        )
    return scale_result
