"""Figure 11: the unaccounted component of RPC execution time (C4-C7).

With batch size 1 (C5) the client progress ULT competes with the
request-issuing ULTs for the primary execution stream; responses back up
in the OFI event queue, and the resulting delay appears in no
instrumented interval -- the *unaccounted* (blue) component.  Raising
``OFI_max_events`` to 64 (C6) improves RPC performance (paper: >40%) and
cuts unaccounted time (paper: -47%); a dedicated client progress ES (C7)
improves a further ~75% and removes ~90% of what remains.  Batch 1024
(C4) is two to three orders of magnitude more performant per event
(paper: ~475x; the simulated client overhead is conservative, so the
reproduced ratio is smaller but strongly in the same direction).
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)
from .conftest import run_once

EVENTS_PER_CLIENT = 2048
PIPELINE = {"C4": 32, "C5": 64, "C6": 64, "C7": 64}


def _run_all():
    return {
        name: run_hepnos_experiment(
            TABLE_IV[name],
            events_per_client=EVENTS_PER_CLIENT,
            pipeline_width=PIPELINE[name],
        )
        for name in ("C4", "C5", "C6", "C7")
    }


def test_fig11_unaccounted(benchmark, report):
    results = run_once(benchmark, _run_all)
    rows = []
    for name in ("C4", "C5", "C6", "C7"):
        r = results[name]
        rows.append(
            {
                "config": name,
                "batch": r.config.batch_size,
                "OFI_max_events": r.config.ofi_max_events,
                "progress thread": "yes" if r.config.client_progress_thread else "no",
                "cumulative RPC time": format_seconds(r.cumulative_origin_time),
                "unaccounted": format_seconds(r.unaccounted_time),
                "unaccounted share": f"{100 * r.unaccounted_fraction:.1f}%",
            }
        )
    report.append("Figure 11: unaccounted component of RPC execution time")
    report.append(ascii_table(rows))

    c4, c5, c6, c7 = (results[k] for k in ("C4", "C5", "C6", "C7"))

    # Shape 1: batch 1024 is far more performant per event than batch 1
    # (paper: ~475x; assert at least one order of magnitude).
    per_event_ratio = (c5.makespan / c4.makespan)
    report.append(f"C4 vs C5 per-event performance ratio: {per_event_ratio:.1f}x "
                  f"(paper: ~475x)")
    assert per_event_ratio > 10

    # Shape 2: C5's instrumented intervals cannot explain most of the
    # time -- the unaccounted share dominates.
    assert c5.unaccounted_fraction > 0.5
    assert c4.unaccounted_fraction < 0.2

    # Shape 3: C6 (OFI_max_events 64) improves RPC performance by >40%
    # scale-equivalent (assert >= 25%) and reduces unaccounted time
    # (paper -47%; assert >= 25%).
    c6_impr = 1 - c6.cumulative_origin_time / c5.cumulative_origin_time
    c6_unacc_drop = 1 - c6.unaccounted_time / c5.unaccounted_time
    report.append(
        f"C6 vs C5: RPC time -{100 * c6_impr:.1f}% (paper 40%), "
        f"unaccounted -{100 * c6_unacc_drop:.1f}% (paper 47%)"
    )
    assert c6_impr > 0.25
    assert c6_unacc_drop > 0.25

    # Shape 4: the dedicated progress ES (C7) improves by a further large
    # margin (paper 75%) and removes most remaining unaccounted time
    # (paper 90%).
    c7_impr = 1 - c7.cumulative_origin_time / c6.cumulative_origin_time
    c7_unacc_drop = 1 - c7.unaccounted_time / c6.unaccounted_time
    report.append(
        f"C7 vs C6: RPC time -{100 * c7_impr:.1f}% (paper 75%), "
        f"unaccounted -{100 * c7_unacc_drop:.1f}% (paper 90%)"
    )
    assert c7_impr > 0.5
    assert c7_unacc_drop > 0.6

    benchmark.extra_info.update(
        per_event_ratio=round(per_event_ratio, 2),
        c6_improvement=round(c6_impr, 4),
        c6_unaccounted_drop=round(c6_unacc_drop, 4),
        c7_improvement=round(c7_impr, 4),
        c7_unaccounted_drop=round(c7_unacc_drop, 4),
    )
