"""Global profile summary: the paper's "profile summary script".

Ingests the per-process origin/target profiles, identifies origin-target
pairs per callpath, and ranks callpaths by cumulative end-to-end request
latency (Figure 6).  For each dominant callpath it reports the breakdown
of the individual steps (Table III intervals) and the call-count
distribution over the participating origin and target entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..callpath import CallpathRegistry
from ..collector import SymbiosysCollector
from ..profiling import INTERVALS, IntervalStats, ProfileStore

__all__ = ["CallpathRow", "ProfileSummary", "profile_summary"]

#: Component intervals whose sum is the "accounted" part of the origin
#: execution time.  These are pairwise-disjoint sub-intervals of
#: [t1, t14]: input serialization in [t1, t3], internal RDMA in [t3, t4],
#: handler delay [t4, t5], target execution [t5, t8] (which contains the
#: deserialization), and the origin completion callback [t12, t14].  The
#: target completion-callback interval [t8, t13] is excluded because it
#: overlaps the response's wire time and the origin-side intervals; the
#: remainder (request/response wire time plus OFI and completion-queue
#: backlogs) is the *unaccounted* component of Figure 11.
ACCOUNTED_INTERVALS = (
    "input_serialization_time",
    "internal_rdma_transfer_time",
    "target_handler_time",
    "target_execution_time",
    "origin_completion_callback_time",
)


@dataclass
class CallpathRow:
    """One callpath's aggregate view across all origin/target pairs."""

    callpath: int
    name: str
    call_count: int
    cumulative_latency: float  # summed origin execution time
    #: Total seconds per interval, summed over all pairs.
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Call counts per participating entity.
    origin_counts: dict[str, int] = field(default_factory=dict)
    target_counts: dict[str, int] = field(default_factory=dict)
    #: Merged end-to-end latency distribution (count/min/max exact,
    #: percentiles reservoir-estimated) -- the "distribution of the call
    #: times" of §I question 1.
    latency_stats: IntervalStats = field(default_factory=IntervalStats)

    @property
    def mean_latency(self) -> float:
        return self.cumulative_latency / self.call_count if self.call_count else 0.0

    def latency_percentile(self, q: float) -> float:
        return self.latency_stats.percentile(q)

    @property
    def accounted_time(self) -> float:
        return sum(self.breakdown.get(i, 0.0) for i in ACCOUNTED_INTERVALS)

    @property
    def unaccounted_time(self) -> float:
        """Origin execution time not explained by any instrumented
        component (the blue region of Figure 11)."""
        return self.cumulative_latency - self.accounted_time

    def fraction(self, interval: str) -> float:
        if self.cumulative_latency <= 0:
            return 0.0
        return self.breakdown.get(interval, 0.0) / self.cumulative_latency


@dataclass
class ProfileSummary:
    rows: list[CallpathRow]
    registry: Optional[CallpathRegistry] = None
    #: Run-wide degraded-mode gauges (timeouts, retries, failovers,
    #: dropped late responses), summed over processes.  All-zero in a
    #: fault-free run.
    resilience: dict[str, int] = field(default_factory=dict)

    def top(self, n: int = 5) -> list[CallpathRow]:
        return self.rows[:n]

    def row_for(self, name: str) -> CallpathRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no callpath named {name!r} in summary")

    def render(self, top_n: int = 5, unit: float = 1e-3, unit_name: str = "ms") -> str:
        """ASCII rendering in the spirit of Figure 6."""
        lines = [
            f"{'callpath':<58} {'count':>8} {'cumulative':>12} {'mean':>10}",
            "-" * 92,
        ]
        for row in self.top(top_n):
            lines.append(
                f"{row.name:<58} {row.call_count:>8} "
                f"{row.cumulative_latency / unit:>10.3f}{unit_name} "
                f"{row.mean_latency / unit:>8.4f}{unit_name}"
            )
            for interval in INTERVALS:
                total = row.breakdown.get(interval, 0.0)
                if total > 0 and interval != "origin_execution_time":
                    lines.append(
                        f"    {interval:<48} {total / unit:>10.3f}{unit_name} "
                        f"({100 * row.fraction(interval):5.1f}%)"
                    )
            unacc = row.unaccounted_time
            lines.append(
                f"    {'(unaccounted)':<48} {unacc / unit:>10.3f}{unit_name} "
                f"({100 * unacc / row.cumulative_latency if row.cumulative_latency else 0:5.1f}%)"
            )
        if any(self.resilience.values()):
            lines.append("-" * 92)
            lines.append("degraded-mode gauges:")
            for name, value in self.resilience.items():
                lines.append(f"    {name:<48} {value:>10}")
        return "\n".join(lines)


def profile_summary(
    collector: SymbiosysCollector,
    *,
    origin_store: Optional[ProfileStore] = None,
    target_store: Optional[ProfileStore] = None,
) -> ProfileSummary:
    """Merge all per-process profiles and rank callpaths by cumulative
    end-to-end latency."""
    origin = origin_store or collector.merged_origin_profile()
    target = target_store or collector.merged_target_profile()
    registry = collector.registry

    rows: dict[int, CallpathRow] = {}

    def row_of(code: int) -> CallpathRow:
        row = rows.get(code)
        if row is None:
            row = rows[code] = CallpathRow(
                callpath=code,
                name=registry.decode(code),
                call_count=0,
                cumulative_latency=0.0,
            )
        return row

    for key in origin.keys():
        row = row_of(key.callpath)
        for interval, stats in origin.intervals_for(key).items():
            if interval == "origin_execution_time":
                row.call_count += stats.count
                row.cumulative_latency += stats.total
                row.latency_stats.merge(stats)
                row.origin_counts[key.origin] = (
                    row.origin_counts.get(key.origin, 0) + stats.count
                )
                row.target_counts[key.target] = (
                    row.target_counts.get(key.target, 0) + stats.count
                )
            row.breakdown[interval] = row.breakdown.get(interval, 0.0) + stats.total

    for key in target.keys():
        row = row_of(key.callpath)
        for interval, stats in target.intervals_for(key).items():
            row.breakdown[interval] = row.breakdown.get(interval, 0.0) + stats.total

    ordered = sorted(
        rows.values(), key=lambda r: r.cumulative_latency, reverse=True
    )
    return ProfileSummary(
        rows=ordered,
        registry=registry,
        resilience=collector.merged_resilience(),
    )
