"""Tests for MargoInstance: forwarding, providers, progress-loop placement."""

import pytest

from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import LocalClock, Simulator
from .conftest import echo_handler, make_pair, run_client_calls


def test_forward_blocking_roundtrip():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    results = run_client_calls(world, [("echo", {"n": 1})])
    world.sim.run(until=0.05)
    assert results == [{"echo": {"n": 1}}]


def test_forward_many_concurrent():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    calls = [("echo", {"i": i}) for i in range(25)]
    results = run_client_calls(world, calls)
    world.sim.run(until=0.5)
    assert sorted(r["echo"]["i"] for r in results) == list(range(25))


def test_sequential_calls_in_one_ult():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    results = []

    def body():
        for i in range(3):
            out = yield from world.client.forward("svr", "echo", {"seq": i})
            results.append(out["echo"]["seq"])

    world.client.client_ult(body())
    world.sim.run(until=0.5)
    assert results == [0, 1, 2]


def test_provider_dispatch_by_id():
    world = make_pair()

    def handler_a(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.respond(handle, "provider-a")

    def handler_b(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.respond(handle, "provider-b")

    world.server.register("op", handler_a, provider_id=1)
    world.server.register("op", handler_b, provider_id=2)
    world.client.register("op")
    results = []

    def body():
        r1 = yield from world.client.forward("svr", "op", {}, provider_id=1)
        r2 = yield from world.client.forward("svr", "op", {}, provider_id=2)
        results.extend([r1, r2])

    world.client.client_ult(body())
    world.sim.run(until=0.5)
    assert results == ["provider-a", "provider-b"]


def test_missing_provider_id_fails_loudly():
    world = make_pair()
    world.server.register("op", echo_handler, provider_id=1)
    world.client.register("op")
    run_client_calls(world, [("op", {})])  # defaults to provider 0
    with pytest.raises(RuntimeError, match="no provider 0"):
        world.sim.run(until=0.05)


def test_duplicate_provider_registration_rejected():
    world = make_pair()
    world.server.register("op", echo_handler, provider_id=3)
    with pytest.raises(ValueError):
        world.server.register("op", echo_handler, provider_id=3)


def test_handler_must_respond():
    world = make_pair()

    def bad_handler(mi, handle):
        yield from mi.get_input(handle)
        # forgets to respond

    world.server.register("bad", bad_handler)
    world.client.register("bad")
    run_client_calls(world, [("bad", {})])
    with pytest.raises(RuntimeError, match="without responding"):
        world.sim.run(until=0.05)


def test_handler_marks_timeline_ordering():
    world = make_pair()
    seen = []

    def handler(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.respond(handle, "ok")
        seen.append(handle)

    world.server.register("t", handler)
    world.client.register("t")
    run_client_calls(world, [("t", {})])
    world.sim.run(until=0.05)
    m = seen[0].marks
    assert m["t3"] <= m["t4"] <= m["t5"] <= m["t8"] <= m["t13"]


def test_origin_marks_timeline_ordering():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    outs = []

    def body():
        yield from world.client.forward("svr", "echo", {})
        outs.append(True)

    world.client.client_ult(body())
    world.sim.run(until=0.05)
    assert outs == [True]


def test_handler_pool_queueing_delay():
    """More concurrent RPCs than handler ESs => t5-t4 gaps appear
    (the paper's target handler time)."""
    import repro.argobots as abt

    def slow_handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(1e-3)
        yield from mi.respond(handle, "done")

    world = make_pair(server_config=MargoConfig(n_handler_es=1))
    seen = []

    def spying_handler(mi, handle):
        seen.append(handle)
        yield from slow_handler(mi, handle)

    world.server.register("slow", spying_handler)
    world.client.register("slow")
    run_client_calls(world, [("slow", {}) for _ in range(4)])
    world.sim.run(until=1.0)
    handler_delays = sorted(h.marks["t5"] - h.marks["t4"] for h in seen)
    assert handler_delays[0] < 1e-4  # first request dispatched promptly
    assert handler_delays[-1] > 2e-3  # last one queued behind ~3ms of work


def test_more_handler_es_reduces_makespan():
    import repro.argobots as abt

    def slow_handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(1e-3)
        yield from mi.respond(handle, "done")

    makespans = {}
    for n_es in (1, 4):
        world = make_pair(server_config=MargoConfig(n_handler_es=n_es))
        world.server.register("slow", slow_handler)
        world.client.register("slow")
        results = run_client_calls(world, [("slow", {}) for _ in range(8)])
        world.sim.run(until=1.0)
        assert len(results) == 8
        makespans[n_es] = world.sim.now if results else None
        # measure last completion via a fresh run bound instead
    # With 4 ESs the 8x1ms of work overlaps; with 1 ES it serializes.
    # Compare total simulated completion indirectly via per-config rerun:
    times = {}
    for n_es in (1, 4):
        world = make_pair(server_config=MargoConfig(n_handler_es=n_es))
        world.server.register("slow", slow_handler)
        world.client.register("slow")
        done = []

        def body():
            yield from world.client.forward("svr", "slow", {})
            done.append(world.sim.now)

        for _ in range(8):
            world.client.client_ult(body())
        world.sim.run(until=1.0)
        times[n_es] = max(done)
    assert times[4] < times[1] * 0.5


def test_use_progress_thread_creates_dedicated_es():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(
        sim, fabric, "p", "n0", config=MargoConfig(use_progress_thread=True)
    )
    # primary ES + progress ES
    assert len(mi.rt.xstreams) == 2
    assert mi.progress_pool is not mi.primary_pool


def test_no_progress_thread_shares_primary():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(sim, fabric, "p", "n0")
    assert len(mi.rt.xstreams) == 1
    assert mi.progress_pool is mi.primary_pool


def test_handler_es_zero_uses_primary_pool():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(sim, fabric, "p", "n0")
    assert mi.handler_pool is mi.primary_pool


def test_lamport_clock_rules():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(sim, fabric, "p", "n0")
    assert mi.lamport_tick() == 1
    assert mi.lamport_tick() == 2
    assert mi.lamport_receive(10) == 11
    assert mi.lamport_receive(3) == 12


def test_local_clock_skew_applied():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(
        sim, fabric, "p", "n0", clock=LocalClock(offset=5.0, drift=0.1)
    )
    sim.run(until=2.0)
    assert mi.local_time() == pytest.approx(5.0 + 1.1 * 2.0)


def test_request_ids_are_unique():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    a = MargoInstance(sim, fabric, "a", "n0")
    b = MargoInstance(sim, fabric, "b", "n0")
    ids = {a.next_request_id() for _ in range(10)} | {
        b.next_request_id() for _ in range(10)
    }
    assert len(ids) == 20


def test_process_stats_memory_gauge():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(sim, fabric, "p", "n0")
    mi.stats.add_memory(1000)
    mi.stats.add_memory(500)
    assert mi.stats.memory_bytes == 1500
    with pytest.raises(ValueError):
        mi.stats.add_memory(-10_000)


def test_cpu_utilization_between_samples():
    import repro.argobots as abt

    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mi = MargoInstance(sim, fabric, "p", "n0")

    def burn():
        yield abt.Compute(1.0)

    mi.client_ult(burn())
    sim.run(until=1.1)
    util = mi.stats.cpu_utilization()
    assert util > 0.85


def test_nested_rpc_child_time_accumulates():
    """A handler that issues a downstream RPC accumulates child time in
    its ULT-local storage (basis for exclusive execution time)."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    front = MargoInstance(sim, fabric, "front", "n0", config=MargoConfig(n_handler_es=1))
    back = MargoInstance(sim, fabric, "back", "n1", config=MargoConfig(n_handler_es=1))
    client = MargoInstance(sim, fabric, "cli", "n2")

    import repro.argobots as abt

    def back_handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(1e-3)
        yield from mi.respond(handle, "leaf")

    child_times = []

    def front_handler(mi, handle):
        yield from mi.get_input(handle)
        yield from mi.forward("back", "leaf_op", {})
        ult = mi.rt.self_ult()
        child_times.append(ult.local.get("child_rpc_time", 0.0))
        yield from mi.respond(handle, "root")

    back.register("leaf_op", back_handler)
    front.register("front_op", front_handler)
    front.register("leaf_op")
    client.register("front_op")
    done = []

    def body():
        out = yield from client.forward("front", "front_op", {})
        done.append(out)

    client.client_ult(body())
    sim.run(until=0.5)
    assert done == ["root"]
    assert child_times[0] > 1e-3


def test_margo_config_validation():
    with pytest.raises(ValueError):
        MargoConfig(n_handler_es=-1)
    with pytest.raises(ValueError):
        MargoConfig(progress_idle_timeout=0)


def test_finalize_stops_progress_loop():
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    results = run_client_calls(world, [("echo", {})])
    world.sim.run(until=0.05)
    assert len(results) == 1
    world.client.finalize()
    world.server.finalize()
    world.client.rt.shutdown()
    world.server.rt.shutdown()
    world.sim.run(until=1.0)
    # Both progress loops exited: simulation goes quiet.
    assert world.sim.pending_events == 0
