"""Seeded, virtual-node-weighted consistent-hash ring.

Tokens come from sha256 (first 8 bytes, little-endian) so placement is
identical across processes and interpreter runs — Python's builtin
``hash()`` is salted per process and must never leak into placement.
Each node contributes ``vnodes`` points on the ring; a key is owned by
the first node token at or clockwise of the key's token.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
from typing import Iterable

__all__ = ["HashRing", "h64"]


def h64(text: str) -> int:
    """Stable 64-bit hash of ``text`` (sha256 prefix, little-endian)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "little")


class HashRing:
    """Consistent-hash ring over node addresses.

    ``seed`` perturbs every token, so two rings with different seeds
    give independent placements while a fixed seed is fully
    deterministic.  ``weights`` scales a node's virtual-node count
    (weight 2.0 -> twice the vnodes -> roughly twice the keyspace).
    """

    def __init__(self, seed: int = 0, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.seed = seed
        self.vnodes = vnodes
        self._nodes: dict[str, int] = {}  # addr -> vnode count
        self._tokens: list[int] = []
        self._owners: list[str] = []

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, addr: str) -> bool:
        return addr in self._nodes

    def _token(self, addr: str, vnode: int) -> int:
        return h64(f"{addr}#{vnode}#{self.seed}")

    def _vnode_pairs(self, addr: str, count: int) -> list[tuple[int, str]]:
        return sorted((self._token(addr, v), addr) for v in range(count))

    def _set_pairs(self, pairs: list[tuple[int, str]]) -> None:
        # The ring invariant: sorted by (token, owner address) -- the
        # address tie-break keeps sha256 token collisions (out of
        # scope, but cheap to order) independent of insertion order.
        self._tokens = [t for t, _ in pairs]
        self._owners = [o for _, o in pairs]

    def add_node(self, addr: str, weight: float = 1.0) -> None:
        if addr in self._nodes:
            raise ValueError(f"{addr!r} already on ring")
        count = max(1, round(self.vnodes * weight))
        self._nodes[addr] = count
        # One sorted merge instead of per-token list.insert: O(N + V)
        # for the incremental churn path.
        self._set_pairs(
            list(
                heapq.merge(
                    zip(self._tokens, self._owners),
                    self._vnode_pairs(addr, count),
                )
            )
        )

    def remove_node(self, addr: str) -> None:
        if addr not in self._nodes:
            raise ValueError(f"{addr!r} not on ring")
        del self._nodes[addr]
        keep = [(t, o) for t, o in zip(self._tokens, self._owners) if o != addr]
        self._tokens = [t for t, _ in keep]
        self._owners = [o for _, o in keep]

    def replace(self, members: Iterable[str]) -> None:
        """Reset the ring to exactly ``members`` (weight 1 each).

        Bulk path: every (token, address) pair is generated once and
        sorted globally -- identical placement to repeated
        :meth:`add_node` (same sort key, same tie-break) but O(NV log
        NV) instead of the O((NV)^2) element moves of per-token list
        inserts, which dominated ring construction at thousand-node
        fleets (every router and LP builds its own ring).
        """
        self._nodes = {}
        pairs: list[tuple[int, str]] = []
        for addr in members:
            if addr in self._nodes:
                raise ValueError(f"{addr!r} already on ring")
            self._nodes[addr] = self.vnodes
            pairs.extend(
                (self._token(addr, v), addr) for v in range(self.vnodes)
            )
        pairs.sort()
        self._set_pairs(pairs)

    # -- lookup ------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """Owner of ``key``: first node token clockwise of the key."""
        if not self._tokens:
            raise LookupError("ring is empty")
        i = bisect.bisect_right(self._tokens, h64(key))
        if i == len(self._tokens):
            i = 0
        return self._owners[i]

    def token_counts(self) -> dict[str, int]:
        """Virtual-node count actually placed per node (sorted keys)."""
        counts: dict[str, int] = {}
        for o in self._owners:
            counts[o] = counts.get(o, 0) + 1
        return dict(sorted(counts.items()))
