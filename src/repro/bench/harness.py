"""Timing harness: median-of-N runs, machine metadata, JSON trajectory.

Wall-clock numbers are only comparable when the machine that produced
them is recorded alongside; every suite therefore embeds
:func:`machine_meta`, including a *calibration constant* -- the time to
run a fixed pure-Python spin loop.  Dividing a benchmark's median by the
calibration gives a dimensionless, machine-normalized cost that the
``--check`` regression gate compares across machines (CI runners
included) without chasing absolute seconds.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "BenchResult",
    "SuiteResult",
    "calibrate",
    "check_ratios",
    "check_regressions",
    "compare_suites",
    "dedupe_history",
    "history_entry",
    "machine_meta",
    "time_bench",
    "write_suite",
]

#: Iterations of the calibration spin loop (fixed forever -- changing it
#: breaks cross-trajectory normalization).
_CALIBRATION_N = 2_000_000


#: Memoized spin-loop results: a machine constant, so one measurement
#: per process suffices -- and processes forked after the first call
#: (``map_cells`` workers, parallel-kernel LPs) inherit it
#: copy-on-write instead of re-calibrating.
_calibration_cache: dict = {}


def calibrate(n: int = _CALIBRATION_N) -> float:
    """Seconds to run a fixed pure-Python accumulation loop.

    A proxy for single-core interpreter speed on this machine; benchmark
    medians are divided by it to get machine-normalized costs.
    """
    cached = _calibration_cache.get(n)
    if cached is not None:
        return cached
    best = float("inf")
    for _ in range(3):
        acc = 0
        t0 = time.perf_counter()
        for i in range(n):
            acc += i
        best = min(best, time.perf_counter() - t0)
    _calibration_cache[n] = best
    return best


def machine_meta() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibrate(), 6),
    }


@dataclass
class BenchResult:
    """One benchmark's timings (every repeat, not just the median)."""

    name: str
    runs_s: list[float]
    units: int
    unit_name: str
    extra: dict = field(default_factory=dict)

    @property
    def median_s(self) -> float:
        return statistics.median(self.runs_s)

    @property
    def rate(self) -> float:
        """Work units per wall-clock second at the median."""
        m = self.median_s
        return self.units / m if m > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "median_s": round(self.median_s, 6),
            "runs_s": [round(r, 6) for r in self.runs_s],
            "units": self.units,
            "unit_name": self.unit_name,
            "rate_per_s": round(self.rate, 1),
            **({"extra": self.extra} if self.extra else {}),
        }


@dataclass
class SuiteResult:
    """All benchmarks of one suite plus the machine that ran them."""

    suite: str
    results: list[BenchResult]
    meta: dict = field(default_factory=machine_meta)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "meta": self.meta,
            "results": {r.name: r.to_dict() for r in self.results},
        }

    def rows(self) -> list[dict]:
        return [
            {
                "benchmark": r.name,
                "median": f"{r.median_s * 1e3:.1f}ms",
                "rate": f"{r.rate:,.0f} {r.unit_name}/s",
            }
            for r in self.results
        ]


def time_bench(
    name: str,
    fn: Callable[[], tuple[int, str]],
    repeats: int = 5,
    log: Callable[[str], None] = lambda s: None,
) -> BenchResult:
    """Run ``fn`` ``repeats`` times; it returns ``(units, unit_name)``.

    Each repeat builds its own world (simulator, cluster, ...) so no
    state leaks between runs; the reported number is the median.
    """
    runs: list[float] = []
    units, unit_name = 0, "ops"
    for i in range(repeats):
        t0 = time.perf_counter()
        units, unit_name = fn()
        runs.append(time.perf_counter() - t0)
        log(f"  {name} [{i + 1}/{repeats}] {runs[-1] * 1e3:.1f} ms")
    return BenchResult(name=name, runs_s=runs, units=units, unit_name=unit_name)


def write_suite(
    suite: SuiteResult,
    path: str,
    baseline: Optional[dict] = None,
    history: Optional[list] = None,
) -> dict:
    """Write ``suite`` as JSON; with ``baseline`` (an older suite dict),
    embed it and the per-benchmark speedups for trajectory tracking.

    ``history`` is the dated run trajectory carried in the file: the
    caller passes the previous file's entries plus the new one (see
    :func:`history_entry`), so re-running ``--compare`` accumulates the
    perf trajectory across PRs instead of overwriting it.
    """
    payload = suite.to_dict()
    if baseline is not None:
        payload["baseline"] = {
            "meta": baseline.get("meta", {}),
            "results": baseline.get("results", {}),
        }
        payload["speedup_vs_baseline"] = compare_suites(baseline, payload)
    if history is not None:
        payload["history"] = history
    with open(path, "w", newline="\n") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


def history_entry(suite: SuiteResult, date: str) -> dict:
    """One dated trajectory entry: medians plus the calibration constant
    needed to normalize them later.

    ``machine`` and ``git_rev`` identify where the numbers came from;
    together with the suite they form the dedupe key that keeps
    re-running ``--compare`` on the same checkout from growing the
    trajectory (see :func:`dedupe_history`).
    """
    from ..store.writer import git_rev, normalized_machine

    return {
        "date": date,
        "machine": normalized_machine(),
        "git_rev": git_rev(),
        "calibration_s": suite.meta.get("calibration_s"),
        "results": {r.name: round(r.median_s, 6) for r in suite.results},
    }


def dedupe_history(history: list, entry: dict) -> list:
    """Append ``entry`` to ``history`` idempotently: any prior entry
    from the same machine at the same git revision is replaced instead
    of duplicated.  Entries predating the machine/git_rev fields are
    kept as-is (their key is unknown)."""
    key = (entry.get("machine"), entry.get("git_rev"))
    kept = [
        h for h in history
        if None in key or (h.get("machine"), h.get("git_rev")) != key
    ]
    kept.append(entry)
    return kept


def _normalized(entry: dict, meta: dict) -> Optional[float]:
    cal = meta.get("calibration_s")
    if not cal:
        return None
    return entry["median_s"] / cal


def compare_suites(old: dict, new: dict) -> dict:
    """Per-benchmark ``old/new`` wall-clock ratio (>1 means faster now).

    When both suites carry a calibration constant the ratio is computed
    on machine-normalized costs, so runs from different machines remain
    comparable; otherwise raw medians are used.
    """
    speedups: dict[str, float] = {}
    old_results = old.get("results", {})
    new_results = new.get("results", {})
    for name in sorted(set(old_results) & set(new_results)):
        o = _normalized(old_results[name], old.get("meta", {}))
        n = _normalized(new_results[name], new.get("meta", {}))
        if o is None or n is None:
            o = old_results[name]["median_s"]
            n = new_results[name]["median_s"]
        if n > 0:
            speedups[name] = round(o / n, 3)
    return speedups


def check_ratios(current: dict, ratios: list[tuple[str, str, float]]) -> list[str]:
    """Gate same-run median ratios, e.g. the monitored arm's overhead
    over the unmonitored one: each ``(numerator, denominator, limit)``
    fails when ``median(numerator) / median(denominator) > limit``.
    Both medians come from the same run on the same machine, so no
    calibration normalization is needed (or wanted)."""
    failures = []
    results = current.get("results", {})
    for num, den, limit in ratios:
        num_entry = results.get(num)
        den_entry = results.get(den)
        if num_entry is None or den_entry is None:
            missing = [n for n in (num, den) if n not in results]
            failures.append(f"{num}/{den}: missing {', '.join(missing)}")
            continue
        den_median = den_entry["median_s"]
        if den_median <= 0:
            failures.append(f"{num}/{den}: zero denominator median")
            continue
        ratio = num_entry["median_s"] / den_median
        if ratio > limit:
            failures.append(
                f"{num}/{den}: ratio {ratio:.3f} exceeds limit {limit:.3f}"
            )
    return failures


def check_regressions(
    baseline: dict, current: dict, threshold: float = 0.25
) -> list[str]:
    """Benchmarks whose normalized cost regressed by more than
    ``threshold`` versus ``baseline``; empty means the gate passes."""
    failures = []
    for name, speedup in compare_suites(baseline, current).items():
        # speedup = old/new; a 25% regression is new = 1.25 * old.
        if speedup < 1.0 / (1.0 + threshold):
            failures.append(
                f"{name}: {1.0 / speedup:.2f}x slower than baseline "
                f"(threshold {1.0 + threshold:.2f}x)"
            )
    return failures
