"""SSG: Scalable Service Groups.

The Mochi core component that gives a set of service processes a stable
group identity: each member has a *rank*, clients resolve ranks to
addresses, and key-based member selection gives services a consistent
way to shard work.  The production library layers SWIM-style failure
detection on top; Mochi services predominantly use static groups
with explicit join/leave, which is what this implements (observers are
notified on membership changes so services can rebalance).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["SSGGroup", "SSGError", "SSGView"]

_group_ids = itertools.count(1)


class SSGError(RuntimeError):
    """Membership lookup or mutation failure."""


def _key_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "little")


@dataclass(frozen=True)
class SSGView:
    """An immutable, epoch-numbered snapshot of a group's membership.

    Views are what travels over the (simulated) fabric: the
    authoritative group stamps each membership change with a
    monotonically increasing epoch, and replicas only ever move
    *forward* — ``SSGGroup.apply_view`` rejects views at or below the
    replica's current epoch, so a view recorded before a death can
    never resurrect the dead member when it arrives late.
    """

    name: str
    epoch: int
    members: tuple[str, ...]

    def to_dict(self) -> dict:
        return {"name": self.name, "epoch": self.epoch, "members": list(self.members)}

    @classmethod
    def from_dict(cls, d: dict) -> "SSGView":
        return cls(name=d["name"], epoch=int(d["epoch"]), members=tuple(d["members"]))


class SSGGroup:
    """A named group of service member addresses with stable ranks.

    Ranks are assigned in join order (matching ``ssg_group_create`` with
    an ordered address list); leaving compacts ranks, and observers are
    told about every membership change.
    """

    def __init__(self, name: str, members: Iterable[str] = ()):
        self.name = name
        self.group_id = next(_group_ids)
        self.epoch = 0
        self._members: list[str] = []
        self._observers: list[Callable[[str, str, int], None]] = []
        for addr in members:
            self.join(addr)

    # -- membership --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def members(self) -> list[str]:
        return list(self._members)

    def __contains__(self, addr: str) -> bool:
        return addr in self._members

    def join(self, addr: str) -> int:
        """Add a member; returns its rank."""
        if addr in self._members:
            raise SSGError(f"{addr!r} is already a member of {self.name!r}")
        self._members.append(addr)
        rank = len(self._members) - 1
        self.epoch += 1
        self._notify("join", addr, rank)
        return rank

    def leave(self, addr: str) -> None:
        """Remove a member; later ranks shift down (rank compaction)."""
        try:
            rank = self._members.index(addr)
        except ValueError:
            raise SSGError(f"{addr!r} is not a member of {self.name!r}") from None
        self._members.pop(rank)
        self.epoch += 1
        self._notify("leave", addr, rank)

    # -- views -------------------------------------------------------------

    def view(self) -> SSGView:
        """Immutable snapshot of the current membership at this epoch."""
        return SSGView(name=self.name, epoch=self.epoch, members=tuple(self._members))

    def apply_view(self, view: SSGView) -> bool:
        """Fast-forward this replica to ``view``.

        Returns ``True`` if the view was applied, ``False`` if it was
        stale (``view.epoch <= self.epoch``) and dropped.  The stale
        guard is what keeps a member that died during an in-flight
        propagation from being resurrected by the late arrival.
        Observers see synthetic leave/join deltas for the difference.
        """
        if view.name != self.name:
            raise SSGError(
                f"view for group {view.name!r} applied to group {self.name!r}"
            )
        if view.epoch <= self.epoch:
            return False
        old = self._members
        new = list(view.members)
        new_set = set(new)
        self._members = new
        self.epoch = view.epoch
        for rank, addr in enumerate(old):
            if addr not in new_set:
                self._notify("leave", addr, rank)
        old_set = set(old)
        for rank, addr in enumerate(new):
            if addr not in old_set:
                self._notify("join", addr, rank)
        return True

    # -- lookups ---------------------------------------------------------------

    def rank_of(self, addr: str) -> int:
        try:
            return self._members.index(addr)
        except ValueError:
            raise SSGError(f"{addr!r} is not a member of {self.name!r}") from None

    def address_of(self, rank: int) -> str:
        if not 0 <= rank < len(self._members):
            raise SSGError(
                f"rank {rank} out of range for group {self.name!r} "
                f"(size {len(self._members)})"
            )
        return self._members[rank]

    def member_for_key(self, key: str) -> str:
        """Consistent key-based member selection (hash mod size)."""
        if not self._members:
            raise SSGError(f"group {self.name!r} is empty")
        return self._members[_key_hash(key) % len(self._members)]

    # -- observers ---------------------------------------------------------------

    def observe(self, callback: Callable[[str, str, int], None]) -> None:
        """``callback(change, addr, rank)`` on join/leave."""
        self._observers.append(callback)

    def _notify(self, change: str, addr: str, rank: int) -> None:
        for cb in self._observers:
            cb(change, addr, rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SSGGroup({self.name!r}, size={self.size})"
