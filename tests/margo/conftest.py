"""Margo test harness helpers (shared implementations in tests/conftest.py)."""

from tests.conftest import echo_handler, make_pair, run_client_calls

__all__ = ["echo_handler", "make_pair", "run_client_calls"]
