"""Fixtures for the performance-store suite: one small monitored,
instrumented echo campaign recorded into a store on disk."""

import pytest

from repro.store import PerfStore
from repro.symbiosys import Stage

from ..conftest import make_echo_cluster, run_client_calls


def record_echo_run(db_path, *, seed=0, n_calls=8, name=None):
    """Run a monitored + instrumented echo campaign and archive it into
    ``db_path`` via the Cluster store sink.  Returns the live world (the
    cluster keeps its monitor/collector after shutdown) so tests can
    compare archived rows against the live objects."""
    world = make_echo_cluster(
        seed=seed,
        stage=Stage.FULL,
        monitoring=True,
        store=str(db_path),
        run_name=name or f"echo-seed{seed}",
        run_tags={"workload": "echo", "n_calls": str(n_calls)},
    )
    results = run_client_calls(
        world, [("echo", {"i": i}) for i in range(n_calls)]
    )
    assert world.sim.run_until(lambda: len(results) == n_calls, limit=5.0)
    world.cluster.shutdown()
    assert world.cluster.run_id is not None
    return world


@pytest.fixture
def echo_store(tmp_path):
    """(PerfStore, live world) for one recorded echo run."""
    db = tmp_path / "perf.db"
    world = record_echo_run(db)
    store = PerfStore(str(db))
    yield store, world
    store.close()
