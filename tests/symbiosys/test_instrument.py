"""Integration tests: instrumentation hooks over a live Mochi chain."""

import pytest

from repro.symbiosys import (
    EventKind,
    ProfileKey,
    Stage,
    hash16,
    push,
)
from .conftest import drive_requests, make_instrumented_world


def run_world(stage=Stage.FULL, n_requests=3, **kw):
    world = make_instrumented_world(stage, **kw)
    results = drive_requests(world, n_requests)
    world.sim.run(until=1.0)
    assert len(results) == n_requests, "workload did not complete"
    return world


# ------------------------------------------------------------ callpaths


def test_callpath_chain_propagates_across_processes():
    world = run_world(n_requests=1)
    target_prof = world.collector.merged_target_profile()
    codes = {key.callpath for key in target_prof.keys()}
    root = push(0, "front_op")
    nested = push(root, "leaf_op")
    assert root in codes
    assert nested in codes


def test_callpath_profile_keys_identify_origin_and_target():
    world = run_world(n_requests=1)
    origin_prof = world.collector.merged_origin_profile()
    keys = set(origin_prof.keys())
    root = push(0, "front_op")
    nested = push(root, "leaf_op")
    assert ProfileKey(root, "cli", "front") in keys
    assert ProfileKey(nested, "front", "back") in keys


def test_registry_decodes_observed_callpaths():
    world = run_world(n_requests=1)
    reg = world.collector.registry
    nested = push(push(0, "front_op"), "leaf_op")
    assert reg.decode(nested) == "front_op -> leaf_op"


def test_call_counts_match_workload():
    n = 5
    world = run_world(n_requests=n)
    origin_prof = world.collector.merged_origin_profile()
    root_key = ProfileKey(push(0, "front_op"), "cli", "front")
    nested_key = ProfileKey(push(push(0, "front_op"), "leaf_op"), "front", "back")
    assert origin_prof.get(root_key, "origin_execution_time").count == n
    # Each front_op fans out into two leaf_ops.
    assert origin_prof.get(nested_key, "origin_execution_time").count == 2 * n


# ------------------------------------------------------------ intervals


def test_origin_execution_time_positive_and_sensible():
    world = run_world(n_requests=2)
    origin_prof = world.collector.merged_origin_profile()
    root_key = ProfileKey(push(0, "front_op"), "cli", "front")
    stats = origin_prof.get(root_key, "origin_execution_time")
    # Each front_op does two ~200us leaf calls plus overhead.
    assert stats.minimum > 400e-6
    assert stats.maximum < 10e-3


def test_target_intervals_recorded():
    world = run_world(n_requests=2)
    target_prof = world.collector.merged_target_profile()
    nested_key = ProfileKey(push(push(0, "front_op"), "leaf_op"), "front", "back")
    exec_stats = target_prof.get(nested_key, "target_execution_time")
    assert exec_stats is not None and exec_stats.count == 4
    assert exec_stats.mean > 200e-6  # includes the Compute(200us)
    handler = target_prof.get(nested_key, "target_handler_time")
    assert handler is not None and handler.minimum >= 0
    cb = target_prof.get(nested_key, "target_completion_callback_time")
    assert cb is not None and cb.minimum > 0


def test_exclusive_time_subtracts_children():
    world = run_world(n_requests=2)
    target_prof = world.collector.merged_target_profile()
    root_key = ProfileKey(push(0, "front_op"), "cli", "front")
    incl = target_prof.get(root_key, "target_execution_time")
    excl = target_prof.get(root_key, "target_execution_time_exclusive")
    # front_op's inclusive time contains two ~200us children; exclusive
    # strips them.
    assert incl.mean > 400e-6
    assert excl.mean < incl.mean / 2
    assert excl.minimum >= 0


def test_pvar_intervals_fused_at_full_stage():
    world = run_world(Stage.FULL, n_requests=2)
    target_prof = world.collector.merged_target_profile()
    nested_key = ProfileKey(push(push(0, "front_op"), "leaf_op"), "front", "back")
    deser = target_prof.get(nested_key, "input_deserialization_time")
    oser = target_prof.get(nested_key, "output_serialization_time")
    assert deser is not None and deser.mean > 0
    assert oser is not None and oser.mean > 0
    origin_prof = world.collector.merged_origin_profile()
    root_key = ProfileKey(push(0, "front_op"), "cli", "front")
    iser = origin_prof.get(root_key, "input_serialization_time")
    assert iser is not None and iser.mean > 0


# ------------------------------------------------------------ stages


def test_stage_off_collects_nothing():
    world = run_world(Stage.OFF, n_requests=2)
    assert world.collector.total_trace_events == 0
    assert len(world.collector.merged_origin_profile()) == 0
    assert len(world.collector.merged_target_profile()) == 0


def test_stage1_propagates_but_does_not_measure():
    world = run_world(Stage.STAGE1, n_requests=2)
    assert world.collector.total_trace_events == 0
    assert len(world.collector.merged_origin_profile()) == 0


def test_stage2_profiles_without_pvars():
    world = run_world(Stage.STAGE2, n_requests=2)
    assert world.collector.total_trace_events > 0
    origin_prof = world.collector.merged_origin_profile()
    root_key = ProfileKey(push(0, "front_op"), "cli", "front")
    assert origin_prof.get(root_key, "origin_execution_time") is not None
    # PVAR-derived intervals absent at stage 2.
    assert origin_prof.get(root_key, "input_serialization_time") is None
    # And Mercury PVAR collection is off.
    assert not world.client.hg.pvars_enabled


def test_full_stage_enables_mercury_pvars():
    world = run_world(Stage.FULL, n_requests=1)
    assert world.client.hg.pvars_enabled
    assert world.front.hg.pvars_enabled


# ------------------------------------------------------------ trace events


def test_trace_event_kinds_per_rpc():
    world = run_world(n_requests=1)
    events = world.collector.all_events()
    # 3 RPCs per request (1 front_op + 2 leaf_op), 4 events each.
    assert len(events) == 12
    kinds = [e.kind for e in events]
    assert kinds.count(EventKind.ORIGIN_FORWARD) == 3
    assert kinds.count(EventKind.ORIGIN_COMPLETE) == 3
    assert kinds.count(EventKind.TARGET_ULT_START) == 3
    assert kinds.count(EventKind.TARGET_RESPOND) == 3


def test_all_events_share_request_id():
    world = run_world(n_requests=1)
    events = world.collector.all_events()
    rids = {e.request_id for e in events}
    assert len(rids) == 1


def test_separate_requests_have_separate_ids():
    world = run_world(n_requests=4)
    events = world.collector.all_events()
    rids = {e.request_id for e in events}
    assert len(rids) == 4


def test_lamport_respects_happened_before():
    world = run_world(n_requests=2)
    events = world.collector.all_events()
    by_span = {}
    for ev in events:
        by_span.setdefault(ev.span_id, {})[ev.kind] = ev
    for quad in by_span.values():
        of = quad[EventKind.ORIGIN_FORWARD]
        tus = quad[EventKind.TARGET_ULT_START]
        tr = quad[EventKind.TARGET_RESPOND]
        oc = quad[EventKind.ORIGIN_COMPLETE]
        assert of.lamport < tus.lamport < tr.lamport < oc.lamport


def test_span_parentage_links_nested_rpcs():
    world = run_world(n_requests=1)
    events = world.collector.all_events()
    root_spans = {
        e.span_id for e in events if e.rpc_name == "front_op"
    }
    leaf_parents = {
        e.parent_span_id for e in events if e.rpc_name == "leaf_op"
    }
    assert len(root_spans) == 1
    assert leaf_parents == root_spans


def test_sysstats_attached_to_events():
    world = run_world(n_requests=1)
    for ev in world.collector.all_events():
        assert "num_blocked" in ev.sysstats
        assert "memory_bytes" in ev.sysstats
        assert 0.0 <= ev.sysstats["cpu_util"] <= 1.0


def test_pvars_attached_to_completion_events_at_full():
    world = run_world(Stage.FULL, n_requests=1)
    completes = [
        e
        for e in world.collector.all_events()
        if e.kind is EventKind.ORIGIN_COMPLETE
    ]
    for ev in completes:
        assert "num_ofi_events_read" in ev.pvars
        assert ev.pvars["input_serialization_time"] > 0


def test_handler_start_event_carries_t4_and_handler_time():
    world = run_world(n_requests=1)
    starts = [
        e
        for e in world.collector.all_events()
        if e.kind is EventKind.TARGET_ULT_START
    ]
    for ev in starts:
        assert "t4" in ev.data
        assert ev.data["target_handler_time"] >= 0


def test_local_timestamps_use_skewed_clock():
    from repro.sim import LocalClock

    world = make_instrumented_world(
        Stage.FULL, clocks={"back": LocalClock(offset=100.0)}
    )
    results = drive_requests(world, 1)
    world.sim.run(until=1.0)
    assert results
    back_events = [
        e for e in world.collector.all_events() if e.process == "back"
    ]
    other = [e for e in world.collector.all_events() if e.process != "back"]
    assert all(e.local_ts > 99.0 for e in back_events)
    assert all(e.local_ts < 1.0 for e in other)


def test_events_count_scales_with_requests():
    w1 = run_world(n_requests=1)
    w5 = run_world(n_requests=5)
    assert w5.collector.total_trace_events == 5 * w1.collector.total_trace_events
