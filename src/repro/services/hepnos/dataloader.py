"""The HEPnOS "data-loader" workflow step.

Reads particle-event files (synthetic stand-ins for the Fermilab HDF5
inputs -- see :mod:`repro.workloads.synthetic_hdf5`) and writes the
events into HEPnOS.  The loader batches key-value pairs to improve RPC
throughput: events are consumed in windows of ``batch_size``; each
window is split by destination database (the hashing scheme), producing
one concurrent ``sdskv_put_packed`` per touched database.  With more
total databases, a window therefore fans out into more, smaller RPCs --
the §V-C-3 effect -- and with ``batch_size=1`` every event is its own
RPC -- the §V-C-4 effect.

``pipeline_width`` worker ULTs keep multiple windows in flight, as the
production loader's ULT pool does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ...argobots import Compute, ULT
from ...margo import MargoInstance
from .service import HEPnOSClient, HEPnOSService

__all__ = ["DataLoaderConfig", "DataLoader"]


@dataclass(frozen=True)
class DataLoaderConfig:
    """Loader knobs (Table IV's "Batch Size" column maps here)."""

    batch_size: int = 1024
    pipeline_width: int = 8
    #: Client CPU per window before issuing (reading the input file,
    #: building keys, hashing across databases).
    prep_fixed: float = 0.0
    prep_per_event: float = 0.0
    #: Client CPU per completed RPC (bookkeeping, progress accounting).
    response_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.pipeline_width < 1:
            raise ValueError("pipeline_width must be at least 1")
        if min(self.prep_fixed, self.prep_per_event, self.response_cost) < 0:
            raise ValueError("loader costs must be non-negative")


class DataLoader:
    """One data-loader client process feeding a HEPnOS deployment."""

    def __init__(
        self,
        mi: MargoInstance,
        service: HEPnOSService,
        config: DataLoaderConfig = DataLoaderConfig(),
    ):
        self.mi = mi
        self.client = HEPnOSClient(mi, service)
        self.config = config
        self.events_stored = 0
        self.finished_at = 0.0
        self._workers_live = 0
        #: Fires (with the completion time) when the last pipeline worker
        #: of a :meth:`load` drains the queue.
        self.all_done = mi.sim.event(f"{mi.addr}.loader-done")

    def load(self, pairs: list[tuple[str, object]]) -> list[ULT]:
        """Start loading ``pairs`` (event key -> payload); returns the
        worker ULTs (join them, or run the simulation to completion)."""
        windows = [
            pairs[i : i + self.config.batch_size]
            for i in range(0, len(pairs), self.config.batch_size)
        ]
        # Shared work queue consumed by the pipeline workers.
        queue = list(reversed(windows))

        cfg = self.config

        def worker() -> Generator:
            while queue:
                window = queue.pop()
                prep = cfg.prep_fixed + cfg.prep_per_event * len(window)
                if prep > 0:
                    yield Compute(prep)
                groups = self.client.group_by_database(window)
                # One concurrent RPC per destination database.
                subults = [
                    self.mi.rt.spawn(
                        self._store_group(db_index, group),
                        self.mi.primary_pool,
                        name=f"{self.mi.addr}.put_packed",
                    )
                    for db_index, group in sorted(groups.items())
                ]
                yield from self.mi.rt.join_all(subults)
            self._workers_live -= 1
            self.finished_at = max(self.finished_at, self.mi.sim.now)
            if self._workers_live == 0:
                self.all_done.succeed(self.finished_at)

        width = min(self.config.pipeline_width, max(1, len(windows)))
        self._workers_live = width
        return [
            self.mi.client_ult(worker(), name=f"loader-w{i}")
            for i in range(width)
        ]

    def _store_group(self, db_index: int, group: list) -> Generator:
        n = yield from self.client.put_packed_to(db_index, group)
        if self.config.response_cost > 0:
            yield Compute(self.config.response_cost)
        self.events_stored += n

    @property
    def done(self) -> bool:
        return self._workers_live == 0
