"""Execution engine for :class:`~repro.faults.plan.FaultPlan`.

The injector is the single authority on *when* faults fire.  It plugs
into the stack at three seams:

* ``injector.install(fabric)`` -- the fabric consults
  :meth:`FaultInjector.on_message` / :meth:`FaultInjector.on_rdma` for
  every transfer (drop / duplicate / delay / partition),
* ``injector.attach(mi)`` -- schedules the plan's crash/hang/restart
  faults for that process on the simulator and registers the injector as
  the process's handler-fault hook,
* :meth:`FaultInjector.on_handler` -- called by Margo's handler wrapper
  at t5 to decide injected stalls/exceptions.

Every probabilistic decision draws from a named stream of a seeded
:class:`~repro.sim.rng.RngRegistry`, and every fired fault is appended
to :attr:`FaultInjector.events`; two injectors built from the same
``(plan, seed)`` over the same workload produce identical event traces
(:meth:`event_trace` compares equal), which the determinism tests and
the fault-campaign reports rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..net.fabric import WireFault
from ..sim import RngRegistry, Simulator
from .plan import (
    CrashFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    HangFault,
    RestartFault,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..margo import MargoInstance
    from ..mercury import HGHandle
    from ..net import Endpoint, Message

__all__ = ["FaultEvent", "FaultInjector", "HandlerAction", "InjectedHandlerError"]


class InjectedHandlerError(RuntimeError):
    """The exception a :class:`~repro.faults.plan.HandlerFaultRule`
    raises inside a target handler; origins observe it as a
    ``RemoteRpcError``."""


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, recorded for reports and determinism checks."""

    time: float
    kind: str
    #: Deterministic identifying details (addresses, rpc names, nodes) --
    #: never per-run artifacts like handle cookies.
    detail: tuple

    def as_row(self) -> dict:
        return {"time": f"{self.time * 1e3:.6f}ms", "fault": self.kind,
                "detail": " ".join(str(d) for d in self.detail)}


@dataclass
class HandlerAction:
    """What :meth:`FaultInjector.on_handler` asks the wrapper to do."""

    stall: float = 0.0
    error: Optional[BaseException] = None


class FaultInjector:
    """Executes one fault plan against a fabric and its processes."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        seed: int = 0,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.plan = plan
        self.rng = rng if rng is not None else RngRegistry(seed)
        self._wire_rng = self.rng.stream("faults.wire")
        self._handler_rng = self.rng.stream("faults.handler")
        self.events: list[FaultEvent] = []
        #: Fired-fault totals by kind (e.g. {"drop": 3, "crash": 1}).
        self.counters: dict[str, int] = {}
        self._processes: dict[str, "MargoInstance"] = {}
        #: addr -> trace sink (duck-typed: ``annotate(time, kind,
        #: detail)``; see :class:`repro.symbiosys.tracing.TraceBuffer`).
        self._trace_sinks: dict[str, object] = {}
        self._disarmed = False

    # -- wiring ---------------------------------------------------------------

    def install(self, fabric) -> "FaultInjector":
        """Register as the fabric's fault hook (chainable)."""
        fabric.fault_hook = self
        return self

    def attach(self, mi: "MargoInstance") -> None:
        """Adopt one Margo process: schedule its planned crash/hang/
        restart faults and intercept its handlers."""
        if mi.addr in self._processes:
            raise ValueError(f"process {mi.addr!r} already attached")
        self._processes[mi.addr] = mi
        mi.fault_hook = self
        for fault in self.plan.faults_for(mi.addr):
            if isinstance(fault, CrashFault):
                self.sim.call_at(fault.at, self._do_crash, mi)
            elif isinstance(fault, HangFault):
                self.sim.call_at(fault.at, self._do_hang, mi, fault.duration)
            elif isinstance(fault, RestartFault):
                self.sim.call_at(fault.at, self._do_crash, mi)
                self.sim.call_at(
                    fault.at + fault.downtime, self._do_restart, mi, fault.warmup
                )

    def bind_trace(self, addr: str, sink) -> None:
        """Mirror fired faults touching ``addr`` into ``sink`` (anything
        with ``annotate(time, kind, detail)``, typically that process's
        SYMBIOSYS trace buffer) so trace analysis can attribute latency
        spikes to injected faults."""
        self._trace_sinks[addr] = sink

    def disarm(self) -> None:
        """Suppress all not-yet-fired process faults.

        Called at teardown (``Cluster.shutdown``): scheduled crash/hang/
        restart callbacks may still sit in the event queue, and letting a
        restart revive a finalized process would leak a progress loop
        that never exits.
        """
        self._disarmed = True

    # -- recording ------------------------------------------------------------

    def _record(self, kind: str, *detail, procs: tuple = ()) -> None:
        self.events.append(FaultEvent(self.sim.now, kind, tuple(detail)))
        self.counters[kind] = self.counters.get(kind, 0) + 1
        for addr in procs:
            sink = self._trace_sinks.get(addr)
            if sink is not None:
                sink.annotate(self.sim.now, kind, tuple(detail))

    def event_trace(self) -> list[tuple]:
        """The full fault timeline as comparable tuples -- identical for
        identical (plan, seed, workload)."""
        return [(e.time, e.kind) + e.detail for e in self.events]

    # -- process faults -------------------------------------------------------

    def _do_crash(self, mi: "MargoInstance") -> None:
        if self._disarmed or mi.crashed:
            return
        self._record("crash", mi.addr, procs=(mi.addr,))
        mi.crash()

    def _do_hang(self, mi: "MargoInstance", duration: float) -> None:
        if self._disarmed:
            return
        self._record("hang", mi.addr, duration, procs=(mi.addr,))
        mi.hang(duration)

    def _do_restart(self, mi: "MargoInstance", warmup: float) -> None:
        if self._disarmed or not mi.crashed:
            return
        self._record("restart", mi.addr, warmup, procs=(mi.addr,))
        mi.restart(warmup=warmup)

    # -- fabric hook ----------------------------------------------------------

    def on_message(
        self, msg: "Message", src_ep: "Endpoint", dst_ep: "Endpoint"
    ) -> Optional[WireFault]:
        """Per-message verdict; ``None`` means unaffected."""
        now = self.sim.now
        for window in self.plan.partitions:
            if window.severs(src_ep.node, dst_ep.node, now):
                self._record(
                    "partition_drop", msg.src, msg.dst, msg.kind,
                    procs=(msg.src, msg.dst),
                )
                return WireFault(drop=True)

        drop = False
        copies = 0
        extra_delay = 0.0
        for rule in self.plan.wire_rules:
            if not rule.matches(src=msg.src, dst=msg.dst, kind=msg.kind, now=now):
                continue
            if isinstance(rule, DropRule):
                if self._wire_rng.random() < rule.probability:
                    drop = True
            elif isinstance(rule, DuplicateRule):
                if self._wire_rng.random() < rule.probability:
                    copies += rule.copies
            elif isinstance(rule, DelayRule):
                if self._wire_rng.random() < rule.probability:
                    extra_delay += rule.extra + rule.spread * float(
                        self._wire_rng.random()
                    )
        if drop:
            self._record(
                "drop", msg.src, msg.dst, msg.kind, procs=(msg.src, msg.dst)
            )
            return WireFault(drop=True)
        if copies == 0 and extra_delay == 0.0:
            return None
        if copies:
            self._record(
                "duplicate", msg.src, msg.dst, msg.kind, copies,
                procs=(msg.src, msg.dst),
            )
        if extra_delay:
            self._record(
                "delay", msg.src, msg.dst, msg.kind, procs=(msg.src, msg.dst)
            )
        return WireFault(copies=copies, extra_delay=extra_delay)

    def on_rdma(self, ini_ep: "Endpoint", rem_ep: "Endpoint") -> bool:
        """True if the RDMA operation is severed by an active partition
        (it will never complete -- reliable transport cannot cross a
        down link)."""
        now = self.sim.now
        for window in self.plan.partitions:
            if window.severs(ini_ep.node, rem_ep.node, now):
                self._record(
                    "rdma_severed", ini_ep.addr, rem_ep.addr,
                    procs=(ini_ep.addr, rem_ep.addr),
                )
                return True
        return False

    # -- handler hook ---------------------------------------------------------

    def on_handler(
        self, mi: "MargoInstance", handle: "HGHandle"
    ) -> Optional[HandlerAction]:
        """Called by the handler wrapper at t5; returns the injected
        stall/exception to apply, or ``None``."""
        now = self.sim.now
        action: Optional[HandlerAction] = None
        for rule in self.plan.handler_rules:
            if not rule.matches(rpc=handle.rpc_name, addr=mi.addr, now=now):
                continue
            if (
                rule.stall_probability > 0
                and self._handler_rng.random() < rule.stall_probability
            ):
                action = action or HandlerAction()
                action.stall += rule.stall
                self._record(
                    "handler_stall", mi.addr, handle.rpc_name, procs=(mi.addr,)
                )
            if (
                rule.error_probability > 0
                and self._handler_rng.random() < rule.error_probability
            ):
                action = action or HandlerAction()
                if action.error is None:
                    action.error = InjectedHandlerError(
                        f"injected fault in {handle.rpc_name!r} on {mi.addr!r}"
                    )
                self._record(
                    "handler_error", mi.addr, handle.rpc_name, procs=(mi.addr,)
                )
        return action

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(plan={self.plan.name!r}, "
            f"fired={sum(self.counters.values())})"
        )
