"""Command-line analysis front end: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis query runs --store perf.db
    python -m repro.analysis query regression --store perf.db \\
        --base monitor-seed0 --head monitor-seed1
    python -m repro.analysis query trend --store perf.db \\
        --metric abt_handler_pool_depth --stat p95 --by seed
    python -m repro.analysis query detectors --store perf.db
    python -m repro.analysis query breakdown --store perf.db --run 1
    python -m repro.analysis query critical_path --store perf.db \\
        --run 1 --top 5
    python -m repro.analysis query blame --store perf.db --run 1
    python -m repro.analysis query bench_history --store perf.db \\
        --suite kernel
    python -m repro.analysis serve --store perf.db --port 9991

``query`` prints one canonical-JSON reply line (byte-deterministic for
a given store and query) -- pipe through ``python -m json.tool`` for a
readable view.  ``--remote host:port`` sends the query to a running
``serve`` instance instead of opening the store in-process.
"""

from __future__ import annotations

import argparse
import sys

from .protocol import Query, encode_reply
from .queries import QUERY_OPS
from .service import AnalysisService, remote_query, serve

#: CLI flag -> (param name, coercion).  Only flags the user passed are
#: forwarded, so each op sees exactly its own parameters.
_PARAM_FLAGS = {
    "base": ("base", str),
    "head": ("head", str),
    "run": ("run", str),
    "request": ("request", str),
    "metric": ("metric", str),
    "stat": ("stat", str),
    "by": ("by", str),
    "prefix": ("prefix", str),
    "kind": ("kind", str),
    "suite": ("suite", str),
    "side": ("side", str),
    "interval": ("interval", str),
    "top": ("top", int),
    "limit": ("limit", int),
    "boot": ("boot", int),
    "seed": ("seed", int),
    "alpha": ("alpha", float),
}


def _build_query(args: argparse.Namespace) -> Query:
    params = {}
    for flag, (name, conv) in _PARAM_FLAGS.items():
        value = getattr(args, flag, None)
        if value is not None:
            params[name] = conv(value)
    return Query(op=args.op, params=params)


def _cmd_query(args: argparse.Namespace) -> int:
    query = _build_query(args)
    if args.remote:
        host, _, port = args.remote.rpartition(":")
        reply = remote_query(host or "127.0.0.1", int(port), query)
        print(encode_reply(reply))
        return 0 if reply.ok else 1
    service = AnalysisService(args.store)
    try:
        reply = service.execute(query)
        print(encode_reply(reply))
    finally:
        service.store.close()
    if not reply.ok:
        print(f"query failed: {reply.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    def ready(host: str, port: int) -> None:
        print(f"analysis service on {host}:{port} over {args.store}",
              file=sys.stderr)

    try:
        serve(args.store, host=args.host, port=args.port, ready=ready)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Queryable analysis over a persistent performance "
                    "store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_q = sub.add_parser("query", help="run one analysis query")
    p_q.add_argument("op", choices=sorted(QUERY_OPS),
                     help="operation to run")
    p_q.add_argument("--store", required=True, help="store .db path")
    p_q.add_argument("--remote", default=None, metavar="HOST:PORT",
                     help="send to a running server instead of opening "
                          "the store locally")
    for flag in _PARAM_FLAGS:
        p_q.add_argument(f"--{flag.replace('_', '-')}", dest=flag,
                         default=None)
    p_q.set_defaults(fn=_cmd_query)

    p_s = sub.add_parser("serve", help="serve queries over TCP")
    p_s.add_argument("--store", required=True, help="store .db path")
    p_s.add_argument("--host", default="127.0.0.1")
    p_s.add_argument("--port", type=int, default=9991)
    p_s.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
