"""SDSKV: RPC-based access to multiple key-value databases.

One provider hosts ``n_databases`` backend databases (Table IV's
"Databases" column counts these per provider).  RPCs address a database
by index.  ``sdskv_put_packed`` pulls the packed key/value blob through
Mercury's bulk interface before inserting, exactly like the production
microservice the HEPnOS data-loader drives.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...argobots import Compute
from ...margo import MargoInstance
from ...mercury import BulkRef, HGHandle
from .backends import BackendCosts, KVDatabase, make_database

__all__ = ["SdskvProvider", "SdskvClient"]

RPC_PUT = "sdskv_put_rpc"
RPC_GET = "sdskv_get_rpc"
RPC_EXISTS = "sdskv_exists_rpc"
RPC_PUT_PACKED = "sdskv_put_packed"
RPC_LIST_KEYVALS = "sdskv_list_keyvals_rpc"
RPC_ERASE = "sdskv_erase_rpc"
_ALL_RPCS = (RPC_PUT, RPC_GET, RPC_EXISTS, RPC_PUT_PACKED, RPC_LIST_KEYVALS, RPC_ERASE)


class SdskvProvider:
    """Server-side SDSKV provider."""

    #: CPU cost of unpacking the bulk-pulled key/value buffer before
    #: inserting -- proportional to the packed bytes, and crucially spent
    #: *outside* any backend lock (this is what saturates handler ESs and
    #: produces the Figure 9 handler-pool delays).
    unpack_fixed = 1.0e-6
    unpack_per_byte = 0.8e-9

    def __init__(
        self,
        mi: MargoInstance,
        provider_id: int = 0,
        *,
        backend: str = "map",
        n_databases: int = 1,
        costs: Optional[BackendCosts] = None,
    ):
        if n_databases < 1:
            raise ValueError("n_databases must be at least 1")
        self.mi = mi
        self.provider_id = provider_id
        self.backend = backend
        self.databases: list[KVDatabase] = [
            make_database(backend, mi.rt, db_id=i, costs=costs)
            for i in range(n_databases)
        ]
        mi.register(RPC_PUT, self._h_put, provider_id)
        mi.register(RPC_GET, self._h_get, provider_id)
        mi.register(RPC_EXISTS, self._h_exists, provider_id)
        mi.register(RPC_PUT_PACKED, self._h_put_packed, provider_id)
        mi.register(RPC_LIST_KEYVALS, self._h_list_keyvals, provider_id)
        mi.register(RPC_ERASE, self._h_erase, provider_id)

    # -- helpers --------------------------------------------------------------

    def _db(self, db_id: int) -> KVDatabase:
        if not 0 <= db_id < len(self.databases):
            raise ValueError(
                f"db_id {db_id} out of range (provider has "
                f"{len(self.databases)} databases)"
            )
        return self.databases[db_id]

    @property
    def total_items(self) -> int:
        return sum(len(db) for db in self.databases)

    # -- handlers --------------------------------------------------------------

    def _h_put(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        db = self._db(inp["db_id"])
        before = db.bytes_stored
        yield from db.put(inp["key"], inp["value"])
        mi.stats.add_memory(db.bytes_stored - before)
        yield from mi.respond(handle, {"ret": 0})

    def _h_get(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        value = yield from self._db(inp["db_id"]).get(inp["key"])
        yield from mi.respond(
            handle, {"ret": 0 if value is not None else -1, "value": value}
        )

    def _h_exists(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        found = yield from self._db(inp["db_id"]).exists(inp["key"])
        yield from mi.respond(handle, {"ret": 0, "exists": found})

    def _h_put_packed(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        bulk: BulkRef = inp["bulk"]
        # Pull the packed key/value content from the origin (Figure 2's
        # bulk transfer step), unpack it, then insert.
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        yield Compute(self.unpack_fixed + self.unpack_per_byte * bulk.nbytes)
        pairs = bulk.data
        db = self._db(inp["db_id"])
        before = db.bytes_stored
        yield from db.put_many(pairs)
        mi.stats.add_memory(db.bytes_stored - before)
        yield from mi.respond(handle, {"ret": 0, "num_keys": len(pairs)})

    def _h_list_keyvals(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        items = yield from self._db(inp["db_id"]).list_keyvals(
            inp.get("prefix", ""), inp.get("max_items")
        )
        yield from mi.respond(
            handle, {"ret": 0, "items": BulkRef(items)}
        )

    def _h_erase(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield from self._db(inp["db_id"]).erase(inp["key"])
        yield from mi.respond(handle, {"ret": 0})


class SdskvClient:
    """Client-side convenience wrapper (registers the RPC names once)."""

    def __init__(self, mi: MargoInstance):
        self.mi = mi
        for rpc in _ALL_RPCS:
            mi.register(rpc)

    def put(self, target: str, provider_id: int, db_id: int, key, value) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_PUT, {"db_id": db_id, "key": key, "value": value}, provider_id
        )
        return out["ret"]

    def get(self, target: str, provider_id: int, db_id: int, key) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_GET, {"db_id": db_id, "key": key}, provider_id
        )
        return out["value"]

    def exists(self, target: str, provider_id: int, db_id: int, key) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_EXISTS, {"db_id": db_id, "key": key}, provider_id
        )
        return out["exists"]

    def put_packed(
        self, target: str, provider_id: int, db_id: int, pairs: list
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_PUT_PACKED,
            {"db_id": db_id, "num_keys": len(pairs), "bulk": BulkRef(pairs)},
            provider_id,
        )
        return out["num_keys"]

    def list_keyvals(
        self,
        target: str,
        provider_id: int,
        db_id: int,
        prefix: str = "",
        max_items: Optional[int] = None,
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_LIST_KEYVALS,
            {"db_id": db_id, "prefix": prefix, "max_items": max_items},
            provider_id,
        )
        return out["items"].data

    def erase(self, target: str, provider_id: int, db_id: int, key) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_ERASE, {"db_id": db_id, "key": key}, provider_id
        )
        return out["ret"]
