"""Conservation audits for churn campaigns.

After a run with membership churn and migrations quiesces, the audit
walks every key the clients believe was acknowledged and checks it is
still readable on exactly the process that owns its shard — except keys
whose shard was *lost* to a failover (dead node, data gone), which are
accounted explicitly rather than silently forgiven.  It also compares
stored bytes against the bytes implied by the surviving acknowledged
keys: migrations must move bytes, never mint or destroy them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mercury import estimate_size
from .placement import shard_of

__all__ = ["ChurnReport", "run_churn_audit"]


@dataclass
class ChurnReport:
    """Outcome of one churn audit."""

    issued: int = 0
    acked: int = 0
    failed: int = 0
    #: Acked keys living in shards lost to a failover (allowed losses).
    lost_allowed: int = 0
    #: Acked keys in surviving shards that are gone (NEVER allowed).
    missing: list[str] = field(default_factory=list)
    #: Acked keys whose stored value differs (NEVER allowed).
    corrupted: list[str] = field(default_factory=list)
    bytes_expected: int = 0
    bytes_found: int = 0
    migrations: int = 0
    migrated_bytes: int = 0

    @property
    def ok(self) -> bool:
        """No silent drops, and bytes conserved.

        Every issued request is accounted (acked, failed, or in a lost
        shard); every acked surviving key is present and intact; stored
        bytes equal the expected bytes when every request was acked
        (with failures, a server may legitimately hold a key whose ack
        was lost in flight, so stored bytes may only exceed expected).
        """
        if self.missing or self.corrupted:
            return False
        if self.issued != self.acked + self.failed:
            return False
        if self.bytes_found < self.bytes_expected:
            return False
        if self.failed == 0 and self.bytes_found != self.bytes_expected:
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "issued": self.issued,
            "acked": self.acked,
            "failed": self.failed,
            "lost_allowed": self.lost_allowed,
            "missing": len(self.missing),
            "corrupted": len(self.corrupted),
            "bytes_expected": self.bytes_expected,
            "bytes_found": self.bytes_found,
            "migrations": self.migrations,
            "migrated_bytes": self.migrated_bytes,
            "ok": self.ok,
        }


def run_churn_audit(service, expected: dict, acked: set) -> ChurnReport:
    """Audit a quiesced sharded service.

    ``expected`` maps every key the workload *issued* to the value it
    wrote; ``acked`` is the subset whose put was acknowledged.  Keys in
    shards recorded as lost by the manager are exempt from presence
    checks but still counted (``lost_allowed``).
    """
    manager = service.manager
    report = ChurnReport(
        issued=len(expected),
        acked=len(acked),
        failed=len(expected) - len(acked),
        migrations=sum(1 for r in manager.records if r.ok),
        migrated_bytes=sum(r.nbytes for r in manager.records if r.ok),
    )
    lost = manager.lost_shards
    for key in sorted(expected):
        if key not in acked:
            continue
        value = expected[key]
        shard = shard_of(key, service.n_shards)
        owner = service.shard_owner(shard)
        got = (
            service.providers[owner].shards[shard].peek(key)
            if owner is not None
            else None
        )
        if got is None:
            # A key may vanish only if its shard's data died in a
            # failover *and* the key was written before that loss; a key
            # acked into the replacement shard afterwards is durable and
            # judged like any other.
            if shard in lost:
                report.lost_allowed += 1
            else:
                report.missing.append(key)
        elif got != value:
            report.corrupted.append(key)
        else:
            report.bytes_expected += estimate_size(key) + estimate_size(value)
    report.bytes_found = sum(
        db.bytes_stored
        for addr in sorted(service.providers)
        for _, db in sorted(service.providers[addr].shards.items())
    )
    return report
