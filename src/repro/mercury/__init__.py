"""Simulated Mercury RPC library with the SYMBIOSYS PVAR interface.

See DESIGN.md §2 item 4 and the paper's Section IV-B.
"""

from .bulk import BulkRef
from .core import (
    HGConfig,
    HGCore,
    HGHandle,
    RESILIENCE_PVARS,
    RequestWire,
    ResponseWire,
)
from .pvar import (
    PvarBinding,
    PvarClass,
    PvarDef,
    PvarError,
    PvarHandle,
    PvarRegistry,
    PvarSession,
)
from .serialization import SerializationModel, estimate_size

__all__ = [
    "BulkRef",
    "HGConfig",
    "HGCore",
    "HGHandle",
    "PvarBinding",
    "PvarClass",
    "PvarDef",
    "PvarError",
    "PvarHandle",
    "PvarRegistry",
    "PvarSession",
    "RESILIENCE_PVARS",
    "RequestWire",
    "ResponseWire",
    "SerializationModel",
    "estimate_size",
]
