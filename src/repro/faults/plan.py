"""Declarative fault campaigns.

A :class:`FaultPlan` is a pure description of *what can go wrong* during
a simulated run -- it holds no state and touches no RNG.  The
:class:`~repro.faults.injector.FaultInjector` executes a plan against a
concrete fabric and set of Margo processes, drawing every probabilistic
decision from named seeded streams (:class:`repro.sim.RngRegistry`), so
one ``(plan, seed)`` pair always replays the identical fault timeline.

Three fault layers mirror where real deployments degrade:

* **wire rules** -- per-message drop, duplication, and latency spikes on
  the fabric (:class:`DropRule`, :class:`DuplicateRule`,
  :class:`DelayRule`), plus total link partitions between node pairs
  (:class:`PartitionWindow`),
* **process faults** -- a server crashing (:class:`CrashFault`), its
  progress engine hanging (:class:`HangFault`), or crashing and coming
  back after a downtime plus slow-restart warmup
  (:class:`RestartFault`),
* **handler rules** -- injected handler exceptions and artificial stalls
  inside RPC handlers (:class:`HandlerFaultRule`).

All windows are ``[start, end)`` in simulated seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from ..config import Replaceable

__all__ = [
    "WireRule",
    "DropRule",
    "DuplicateRule",
    "DelayRule",
    "PartitionWindow",
    "CrashFault",
    "HangFault",
    "RestartFault",
    "HandlerFaultRule",
    "FaultPlan",
]


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise ValueError("window start must be non-negative")
    if end <= start:
        raise ValueError("window end must be after its start")


def _check_probability(p: float, name: str = "probability") -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]")


@dataclass(frozen=True, kw_only=True)
class WireRule(Replaceable):
    """Base matcher for per-message fabric rules.

    ``src``/``dst`` match endpoint addresses, ``kind`` the message kind
    (``"rpc_request"`` / ``"rpc_response"``); ``None`` matches anything.
    """

    src: str | None = None
    dst: str | None = None
    kind: str | None = None
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.start, self.end)

    def matches(self, *, src: str, dst: str, kind: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if self.kind is not None and self.kind != kind:
            return False
        return True


@dataclass(frozen=True, kw_only=True)
class DropRule(WireRule):
    """Silently lose matching messages with ``probability``."""


@dataclass(frozen=True, kw_only=True)
class DuplicateRule(WireRule):
    """Deliver ``copies`` extra copies of matching messages (the
    at-least-once hazard retried RPCs must survive)."""

    copies: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.copies < 1:
            raise ValueError("copies must be at least 1")


@dataclass(frozen=True, kw_only=True)
class DelayRule(WireRule):
    """Add a latency spike to matching messages: ``extra`` seconds fixed
    plus a uniform draw in ``[0, spread)``."""

    extra: float = 0.0
    spread: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra < 0 or self.spread < 0:
            raise ValueError("extra and spread must be non-negative")
        if self.extra == 0 and self.spread == 0:
            raise ValueError("DelayRule needs a non-zero extra or spread")


@dataclass(frozen=True, kw_only=True)
class PartitionWindow(Replaceable):
    """Total two-way loss between two *nodes* during ``[start, end)``.

    Everything crossing the partitioned link is lost: two-sided messages
    and one-sided RDMA operations alike.
    """

    node_a: str
    node_b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if self.node_a == self.node_b:
            raise ValueError("a partition needs two distinct nodes")

    def severs(self, src_node: str, dst_node: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return {src_node, dst_node} == {self.node_a, self.node_b}


@dataclass(frozen=True, kw_only=True)
class CrashFault(Replaceable):
    """Process ``addr`` dies at ``at`` and never comes back: its endpoint
    stops sending/receiving and its progress engine halts."""

    addr: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True, kw_only=True)
class HangFault(Replaceable):
    """The progress engine of ``addr`` stalls for ``duration`` seconds
    starting at ``at``; requests pile up in its completion queue."""

    addr: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("hang time must be non-negative")
        if self.duration <= 0:
            raise ValueError("hang duration must be positive")


@dataclass(frozen=True, kw_only=True)
class RestartFault(Replaceable):
    """Process ``addr`` crashes at ``at`` and is revived after
    ``downtime`` seconds.  During the following ``warmup`` the endpoint
    accepts traffic but the progress engine has not started yet -- the
    slow-restart shadow where a server is reachable but unresponsive."""

    addr: str
    at: float
    downtime: float
    warmup: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("restart time must be non-negative")
        if self.downtime <= 0:
            raise ValueError("downtime must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")


@dataclass(frozen=True, kw_only=True)
class HandlerFaultRule(Replaceable):
    """Inject failures inside matching RPC handlers.

    With ``error_probability`` the handler raises
    :class:`~repro.faults.injector.InjectedHandlerError` (travelling back
    to the origin as a ``RemoteRpcError``); independently, with
    ``stall_probability`` it burns ``stall`` extra seconds of simulated
    CPU before running.
    """

    rpc: str | None = None
    addr: str | None = None
    error_probability: float = 0.0
    stall_probability: float = 0.0
    stall: float = 0.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_probability(self.error_probability, "error_probability")
        _check_probability(self.stall_probability, "stall_probability")
        _check_window(self.start, self.end)
        if self.stall < 0:
            raise ValueError("stall must be non-negative")
        if self.error_probability == 0 and self.stall_probability == 0:
            raise ValueError("HandlerFaultRule injects nothing")
        if self.stall_probability > 0 and self.stall <= 0:
            raise ValueError("stall_probability needs a positive stall")

    def matches(self, *, rpc: str, addr: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.rpc is not None and self.rpc != rpc:
            return False
        if self.addr is not None and self.addr != addr:
            return False
        return True


@dataclass(frozen=True, kw_only=True)
class FaultPlan(Replaceable):
    """One complete fault campaign: wire rules, partitions, process
    faults, and handler rules, under a human-readable name."""

    name: str = "campaign"
    wire_rules: tuple[WireRule, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    process_faults: tuple[CrashFault | HangFault | RestartFault, ...] = ()
    handler_rules: tuple[HandlerFaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Normalize lists passed by callers into tuples (plans stay
        # hashable/frozen).
        for attr in ("wire_rules", "partitions", "process_faults", "handler_rules"):
            value = getattr(self, attr)
            if not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))

    @property
    def is_empty(self) -> bool:
        return not (
            self.wire_rules
            or self.partitions
            or self.process_faults
            or self.handler_rules
        )

    def faults_for(self, addr: str) -> list[CrashFault | HangFault | RestartFault]:
        """The scheduled process faults targeting ``addr``."""
        return [f for f in self.process_faults if f.addr == addr]

    # -- JSON round-trip ---------------------------------------------------
    #
    # Plans travel through repro files (the fuzz runner's shrunk minimal
    # configs), so they need a lossless JSON form.  ``math.inf`` window
    # ends become the string "inf" -- JSON has no infinity.

    def to_dict(self) -> dict:
        def rule_dict(rule) -> dict:
            d = {"type": type(rule).__name__}
            for f in fields(rule):
                value = getattr(rule, f.name)
                if isinstance(value, float) and math.isinf(value):
                    value = "inf"
                d[f.name] = value
            return d

        return {
            "name": self.name,
            "wire_rules": [rule_dict(r) for r in self.wire_rules],
            "partitions": [rule_dict(p) for p in self.partitions],
            "process_faults": [rule_dict(f) for f in self.process_faults],
            "handler_rules": [rule_dict(h) for h in self.handler_rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        def build(entry: dict):
            entry = dict(entry)
            type_name = entry.pop("type")
            try:
                rule_cls = _RULE_TYPES[type_name]
            except KeyError:
                raise ValueError(f"unknown fault rule type {type_name!r}") from None
            kwargs = {
                k: (math.inf if v == "inf" else v) for k, v in entry.items()
            }
            return rule_cls(**kwargs)

        return cls(
            name=data.get("name", "campaign"),
            wire_rules=tuple(build(r) for r in data.get("wire_rules", ())),
            partitions=tuple(build(p) for p in data.get("partitions", ())),
            process_faults=tuple(build(f) for f in data.get("process_faults", ())),
            handler_rules=tuple(build(h) for h in data.get("handler_rules", ())),
        )


_RULE_TYPES = {
    cls.__name__: cls
    for cls in (
        DropRule,
        DuplicateRule,
        DelayRule,
        PartitionWindow,
        CrashFault,
        HangFault,
        RestartFault,
        HandlerFaultRule,
    )
}
