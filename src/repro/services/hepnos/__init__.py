"""HEPnOS: a Mochi storage service for high-energy physics events."""

from .api import DataSet, Run, SubRun
from .dataloader import DataLoader, DataLoaderConfig
from .hierarchy import EventKey, event_key, parse_event_key
from .service import HEPnOSClient, HEPnOSService, PID_BAKE, PID_SDSKV

__all__ = [
    "DataLoader",
    "DataLoaderConfig",
    "DataSet",
    "EventKey",
    "HEPnOSClient",
    "HEPnOSService",
    "PID_BAKE",
    "PID_SDSKV",
    "Run",
    "SubRun",
    "event_key",
    "parse_event_key",
]
