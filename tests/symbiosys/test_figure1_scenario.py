"""The paper's Figure 1 scenario, verified end to end.

Three microservices A, B, and C interact to generate two distinct
callpaths in the system: A -> B -> C (red) and A -> C (blue).  The
callpath machinery must keep them separate even though both end at C,
and must identify the origin/target entities of every edge.
"""

import repro.argobots as abt
from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.symbiosys import ProfileKey, Stage, SymbiosysCollector, push
from repro.symbiosys.analysis import profile_summary, trace_summary


def build_world():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(Stage.FULL)

    def mk(addr, node):
        return MargoInstance(
            sim, fabric, addr, node,
            config=MargoConfig(n_handler_es=1),
            instrumentation=collector.create_instrumentation(),
        )

    a, b, c = mk("A", "n0"), mk("B", "n1"), mk("C", "n2")

    def c_handler(mi, handle):
        yield from mi.get_input(handle)
        yield abt.Compute(10e-6)
        yield from mi.respond(handle, "C-done")

    c.register("op_c", c_handler)

    def b_handler(mi, handle):
        yield from mi.get_input(handle)
        out = yield from mi.forward("C", "op_c", {})  # the red chain's tail
        yield from mi.respond(handle, f"B({out})")

    b.register("op_b", b_handler)
    b.register("op_c")

    def a_red(mi, handle):
        yield from mi.get_input(handle)
        out = yield from mi.forward("B", "op_b", {})
        yield from mi.respond(handle, f"A-red({out})")

    def a_blue(mi, handle):
        yield from mi.get_input(handle)
        out = yield from mi.forward("C", "op_c", {})
        yield from mi.respond(handle, f"A-blue({out})")

    a.register("op_a_red", a_red)
    a.register("op_a_blue", a_blue)
    a.register("op_b")
    a.register("op_c")

    client = mk("app", "n3")
    client.register("op_a_red")
    client.register("op_a_blue")
    return sim, collector, client


def run_scenario():
    sim, collector, client = build_world()
    results = []

    def body():
        red = yield from client.forward("A", "op_a_red", {})
        blue = yield from client.forward("A", "op_a_blue", {})
        results.append((red, blue))

    client.client_ult(body())
    assert sim.run_until(lambda: results, limit=1.0)
    assert results[0] == ("A-red(B(C-done))", "A-blue(C-done)")
    return collector


def test_two_distinct_callpaths_to_c():
    collector = run_scenario()
    target = collector.merged_target_profile()
    red_tail = push(push(push(0, "op_a_red"), "op_b"), "op_c")
    blue_tail = push(push(0, "op_a_blue"), "op_c")
    assert red_tail != blue_tail
    # Both chains terminate at C, under different ancestries.
    assert ProfileKey(red_tail, "B", "C") in set(target.keys())
    assert ProfileKey(blue_tail, "A", "C") in set(target.keys())


def test_callpaths_decode_to_figure1_chains():
    collector = run_scenario()
    summary = profile_summary(collector)
    names = {row.name for row in summary.rows}
    assert "op_a_red -> op_b -> op_c" in names  # the red chain
    assert "op_a_blue -> op_c" in names  # the blue chain


def test_entity_identification_per_edge():
    collector = run_scenario()
    summary = profile_summary(collector)
    red_c = summary.row_for("op_a_red -> op_b -> op_c")
    blue_c = summary.row_for("op_a_blue -> op_c")
    assert red_c.origin_counts == {"B": 1}
    assert red_c.target_counts == {"C": 1}
    assert blue_c.origin_counts == {"A": 1}
    assert blue_c.target_counts == {"C": 1}


def test_traces_reconstruct_both_request_shapes():
    collector = run_scenario()
    summary = trace_summary(collector)
    shapes = {}
    for req in summary.requests.values():
        root = req.roots[0]
        shapes[root.rpc_name] = req.discrete_calls()
    assert shapes["op_a_red"] == ["op_b", "op_c"]
    assert shapes["op_a_blue"] == ["op_c"]
