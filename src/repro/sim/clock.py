"""Per-process wall clocks with drift and offset.

Real distributed tracing has to cope with unsynchronized clocks; the paper
applies Lamport's logical-clock algorithm to order trace events across
processes.  To make that machinery meaningful (and testable) in a
simulation, every process reads timestamps from a :class:`LocalClock`
that maps true simulated time onto a skewed local timeline.
"""

from __future__ import annotations

__all__ = ["LocalClock"]


class LocalClock:
    """An affine mapping ``local = offset + (1 + drift) * true_time``.

    ``drift`` is dimensionless (e.g. ``1e-5`` is 10 ppm); ``offset`` is in
    simulated seconds.  Both default to zero, giving a perfect clock.
    """

    __slots__ = ("offset", "drift")

    def __init__(self, offset: float = 0.0, drift: float = 0.0):
        if drift <= -1.0:
            raise ValueError("drift must be > -1 (clock must move forward)")
        self.offset = float(offset)
        self.drift = float(drift)

    def read(self, true_time: float) -> float:
        """Local timestamp corresponding to true simulated ``true_time``."""
        return self.offset + (1.0 + self.drift) * true_time

    def invert(self, local_time: float) -> float:
        """True simulated time corresponding to a local timestamp."""
        return (local_time - self.offset) / (1.0 + self.drift)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalClock(offset={self.offset}, drift={self.drift})"
