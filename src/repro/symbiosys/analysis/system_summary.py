"""System-statistics summary: the paper's third analysis script.

Aggregates the OS/tasking-layer samples attached to trace events into a
per-process view: peak blocked/ready ULTs, mean CPU utilization, peak
memory -- the signals used to detect resource saturation (§I question 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tracing import TraceEvent

__all__ = ["ProcessSystemStats", "SystemSummary", "system_summary"]


@dataclass
class ProcessSystemStats:
    process: str
    samples: int = 0
    max_blocked: int = 0
    max_ready: int = 0
    mean_cpu: float = 0.0
    peak_memory: int = 0

    def _fold(self, sysstats: dict) -> None:
        self.samples += 1
        self.max_blocked = max(self.max_blocked, sysstats.get("num_blocked", 0))
        self.max_ready = max(self.max_ready, sysstats.get("num_ready", 0))
        cpu = sysstats.get("cpu_util", 0.0)
        # Streaming mean.
        self.mean_cpu += (cpu - self.mean_cpu) / self.samples
        self.peak_memory = max(self.peak_memory, sysstats.get("memory_bytes", 0))


@dataclass
class SystemSummary:
    per_process: dict[str, ProcessSystemStats]

    def saturated_processes(self, blocked_threshold: int) -> list[str]:
        """Processes whose blocked-ULT high watermark crossed the
        threshold -- candidates for 'too few execution streams' or
        backend serialization diagnoses."""
        return sorted(
            name
            for name, stats in self.per_process.items()
            if stats.max_blocked >= blocked_threshold
        )

    def render(self) -> str:
        lines = [
            f"{'process':<16} {'samples':>8} {'max_blocked':>12} "
            f"{'max_ready':>10} {'mean_cpu':>9} {'peak_mem':>12}",
            "-" * 72,
        ]
        for name in sorted(self.per_process):
            s = self.per_process[name]
            lines.append(
                f"{name:<16} {s.samples:>8} {s.max_blocked:>12} "
                f"{s.max_ready:>10} {s.mean_cpu:>9.3f} {s.peak_memory:>12}"
            )
        return "\n".join(lines)


def system_summary(events: list[TraceEvent]) -> SystemSummary:
    per_process: dict[str, ProcessSystemStats] = {}
    for ev in events:
        if not ev.sysstats:
            continue
        stats = per_process.get(ev.process)
        if stats is None:
            stats = per_process[ev.process] = ProcessSystemStats(ev.process)
        stats._fold(ev.sysstats)
    return SystemSummary(per_process=per_process)
