"""Workload generators: ior-on-Mobject, synthetic HDF5 event files, and
JSON record arrays."""

from .ior import IorClient, IorConfig, run_ior_clients
from .json_records import generate_json_records
from .synthetic_hdf5 import (
    SyntheticEventFile,
    flatten_to_pairs,
    generate_event_files,
)

__all__ = [
    "IorClient",
    "IorConfig",
    "SyntheticEventFile",
    "flatten_to_pairs",
    "generate_event_files",
    "generate_json_records",
    "run_ior_clients",
]
