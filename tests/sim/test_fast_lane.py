"""Kernel fast-lane and event-driven-wait laws.

The same-instant FIFO lane bypasses the heap; these tests pin the
ordering law it must uphold (same-timestamp events fire in scheduling
order, heap entries at T before fast-lane entries created at T) and the
new event-driven wait APIs.
"""

import pytest

from repro.sim import (
    AnyOf,
    SimEvent,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
)


def test_same_instant_call_at_preserves_fifo():
    sim = Simulator()
    order = []

    def hop(tag, n):
        order.append(tag)
        if n > 0:
            sim.call_at(sim.now, hop, tag, n - 1)

    sim.call_at(1.0, hop, "a", 2)
    sim.call_at(1.0, hop, "b", 2)
    sim.run()
    # Heap entries at t=1 fire first (a, b); their same-instant
    # reschedules interleave in FIFO order behind them.
    assert order == ["a", "b", "a", "b", "a", "b"]
    assert sim.now == 1.0


def test_heap_entries_at_now_precede_fast_lane_entries():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        # Scheduled AT the current instant -> fast lane; must run after
        # the remaining heap entries at this same timestamp.
        sim.call_at(sim.now, order.append, "lane")

    sim.call_at(2.0, first)
    sim.call_at(2.0, order.append, "heap")
    sim.run()
    assert order == ["first", "heap", "lane"]


def test_event_succeed_callbacks_ride_the_queue_in_order():
    sim = Simulator()
    order = []
    ev = sim.event("e")
    ev.add_callback(lambda e: order.append("cb1"))
    ev.add_callback(lambda e: order.append("cb2"))

    def fire():
        ev.succeed(41)
        order.append("after-succeed")

    sim.call_at(1.0, fire)
    sim.run()
    # succeed() enqueues; the callbacks run after the firing frame ends.
    assert order == ["after-succeed", "cb1", "cb2"]
    assert ev.value == 41


def test_spawn_runs_in_spawn_order_at_current_instant():
    sim = Simulator()
    order = []

    def body(tag):
        order.append(tag)
        yield Timeout(0.0)
        order.append(tag + "'")

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    assert order == ["a", "b", "a'", "b'"]
    assert sim.now == 0.0


def test_anyof_losing_timeout_branch_is_a_noop():
    sim = Simulator()
    results = []

    def body():
        ev = sim.event()
        sim.call_after(1e-6, ev.succeed, "win")
        idx, value = yield AnyOf([ev, Timeout(5e-6, "lose")])
        results.append((idx, value))
        # Park past the loser timeout: its queued callback must fire
        # harmlessly without resuming this task a second time.
        yield Timeout(10e-6)
        results.append("done")

    sim.spawn(body())
    sim.run()
    assert results == [(0, "win"), "done"]
    assert sim.pending_events == 0


def test_anyof_losing_event_branch_stays_available():
    sim = Simulator()
    other = sim.event("other")
    seen = []

    def racer():
        idx, _ = yield AnyOf([Timeout(1e-6), other])
        seen.append(("racer", idx))

    def late_waiter():
        value = yield other
        seen.append(("late", value))

    sim.spawn(racer())
    sim.spawn(late_waiter())
    sim.call_at(5e-6, other.succeed, "finally")
    sim.run()
    assert ("racer", 0) in seen
    assert ("late", "finally") in seen


def test_run_until_event_stops_at_firing_instant():
    sim = Simulator()
    ev = sim.event()
    hits = []
    sim.call_at(1.0, ev.succeed)
    sim.call_at(2.0, hits.append, "late")
    assert sim.run_until_event(ev, limit=10.0)
    assert sim.now == 1.0
    assert hits == []  # nothing past the firing instant was simulated
    assert sim.pending_events == 1


def test_run_until_event_same_instant_callbacks_still_run():
    sim = Simulator()
    ev = sim.event()
    hits = []
    # Registered BEFORE the wait's waker: runs at the firing instant,
    # before the stop.
    ev.add_callback(lambda e: hits.append("cb"))
    sim.call_at(1.0, ev.succeed)
    assert sim.run_until_event(ev, limit=10.0)
    assert hits == ["cb"]


def test_run_until_event_respects_limit_and_disarms():
    sim = Simulator()
    ev = sim.event()
    sim.call_at(8.0, ev.succeed)
    assert not sim.run_until_event(ev, limit=2.0)
    assert sim.now == 2.0
    # The waker is disarmed: a later full drain must not be aborted by
    # the stale registration when the event finally fires.
    sim.run()
    assert ev.fired
    assert sim.now == 8.0
    assert sim.pending_events == 0


def test_run_until_event_already_fired_returns_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    assert sim.run_until_event(ev, limit=1.0)
    assert sim.now == 0.0


def test_run_until_event_rejects_foreign_event():
    sim = Simulator()
    other = Simulator()
    with pytest.raises(SimulationError):
        sim.run_until_event(SimEvent(other), limit=1.0)


def test_all_of_fires_after_last_branch():
    sim = Simulator()
    events = [sim.event(f"e{i}") for i in range(3)]
    latch = all_of(sim, events)
    for i, ev in enumerate(events):
        sim.call_at(float(i + 1), ev.succeed)
    assert sim.run_until_event(latch, limit=10.0)
    assert sim.now == 3.0
    assert latch.value == 3.0


def test_all_of_with_prefired_and_empty():
    sim = Simulator()
    fired = sim.event().succeed()
    pending = sim.event()
    latch = all_of(sim, [fired, pending])
    sim.call_at(2.0, pending.succeed)
    assert sim.run_until_event(latch, limit=10.0)
    assert latch.fired

    empty = all_of(sim, [])
    assert empty.fired


def test_task_done_is_lazy_but_complete():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        return "result"

    task = sim.spawn(body())
    sim.run()
    assert task.finished
    # done was never touched during the run; materializing it afterwards
    # still yields a fired event carrying the return value.
    assert task.done.fired
    assert task.done.value == "result"


def test_task_done_awaitable_before_finish():
    sim = Simulator()
    got = []

    def worker():
        yield Timeout(1.0)
        return 42

    def waiter(t):
        value = yield t.done
        got.append(value)

    task = sim.spawn(worker())
    sim.spawn(waiter(task))
    sim.run()
    assert got == [42]


def test_events_processed_counts_callbacks():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5
