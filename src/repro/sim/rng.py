"""Named, seeded random-number streams.

Every source of randomness in the repository draws from a stream obtained
here, keyed by a stable name.  Two simulations constructed with the same
root seed therefore produce bit-identical results regardless of the order
in which components are created -- a property the reproduction benches and
the failure-injection tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of independent, deterministically seeded numpy Generators."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed depends only on ``(root_seed, name)``, never on
        creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are all distinct from this one's."""
        return RngRegistry(_derive_seed(self.root_seed, f"fork:{suffix}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"
