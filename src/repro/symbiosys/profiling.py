"""Distributed callpath profiles.

A profile is a summary keyed by ``(callpath code, origin entity, target
entity)``: for every interval of Table III it keeps count / total / min /
max.  Origin-side and target-side measurements are maintained in separate
stores on each process (exactly as the paper describes) and merged
globally by the profile-summary analysis script.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["IntervalStats", "ProfileKey", "ProfileStore", "INTERVALS"]

#: Bounded per-interval sample reservoir (distribution estimates).
RESERVOIR_SIZE = 64

#: Canonical interval names (Table III) plus the derived exclusive time.
INTERVALS = (
    "origin_execution_time",
    "input_serialization_time",
    "internal_rdma_transfer_time",
    "target_handler_time",
    "input_deserialization_time",
    "target_execution_time",  # inclusive, t5 -> t8
    "target_execution_time_exclusive",  # minus nested RPC origin time
    "output_serialization_time",
    "target_completion_callback_time",
    "origin_completion_callback_time",
    "bulk_transfer_time",
)


_MASK64 = (1 << 64) - 1


def _slot_priority(seq: int) -> int:
    """Deterministic pseudo-random priority for reservoir sampling --
    depends only on the sample's sequence number, never on wall clocks.
    splitmix64 finalizer: cheap enough for the instrumentation hot path."""
    z = (seq + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


@dataclass
class IntervalStats:
    """Streaming summary of one measured interval.

    Besides count/total/min/max, keeps a bounded deterministic reservoir
    of samples so the analysis layer can report call-time *distributions*
    (percentiles), per the paper's §I question 1.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    #: (priority, value) reservoir; top-RESERVOIR_SIZE priorities kept.
    _reservoir: list[tuple[int, float]] = field(default_factory=list, repr=False)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._offer(_slot_priority(self.count), value)

    def _offer(self, priority: int, value: float) -> None:
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append((priority, value))
            if len(self._reservoir) == RESERVOIR_SIZE:
                self._reservoir.sort()
            return
        # Reservoir full (kept sorted): replace the lowest priority.
        if priority > self._reservoir[0][0]:
            self._reservoir.pop(0)
            bisect.insort(self._reservoir, (priority, value))

    def merge(self, other: "IntervalStats") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        combined = self._reservoir + other._reservoir
        if len(combined) >= RESERVOIR_SIZE:
            combined.sort()
            combined = combined[-RESERVOIR_SIZE:]
        self._reservoir = combined

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> list[float]:
        """The retained distribution samples (unordered subset)."""
        return [v for _, v in self._reservoir]

    @classmethod
    def from_summary(
        cls,
        *,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        samples: Iterable[float] = (),
    ) -> "IntervalStats":
        """Rebuild a stats object from persisted summary fields (the
        store's ``profiles`` rows).  Reservoir priorities are synthetic
        -- only the retained values matter for percentile estimates."""
        stats = cls(count=count, total=total, minimum=minimum, maximum=maximum)
        stats._reservoir = sorted(
            (i, float(v)) for i, v in enumerate(samples)
        )
        return stats

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0..100) from the reservoir."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._reservoir:
            return 0.0
        values = sorted(v for _, v in self._reservoir)
        # Exact bounds are known regardless of sampling.
        if q == 0:
            return self.minimum
        if q == 100:
            return self.maximum
        idx = min(len(values) - 1, int(q / 100.0 * len(values)))
        return values[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "IntervalStats(empty)"
        return (
            f"IntervalStats(n={self.count}, total={self.total:.6g}, "
            f"mean={self.mean:.6g})"
        )


@dataclass(frozen=True)
class ProfileKey:
    """Identity of one profiled edge: who called what along which chain."""

    callpath: int
    origin: str
    target: str


class ProfileStore:
    """Per-process (or merged) store of callpath interval statistics."""

    def __init__(self) -> None:
        self._data: dict[ProfileKey, dict[str, IntervalStats]] = {}

    def add(self, key: ProfileKey, interval: str, value: float) -> None:
        if interval not in INTERVALS:
            raise ValueError(f"unknown interval {interval!r}")
        by_interval = self._data.setdefault(key, {})
        stats = by_interval.get(interval)
        if stats is None:
            stats = by_interval[interval] = IntervalStats()
        stats.add(value)

    def get(self, key: ProfileKey, interval: str) -> Optional[IntervalStats]:
        return self._data.get(key, {}).get(interval)

    def keys(self) -> Iterable[ProfileKey]:
        return self._data.keys()

    def intervals_for(self, key: ProfileKey) -> dict[str, IntervalStats]:
        return dict(self._data.get(key, {}))

    def __len__(self) -> int:
        return len(self._data)

    def merge(self, other: "ProfileStore") -> None:
        """Fold another store into this one (global consolidation)."""
        for key, by_interval in other._data.items():
            mine = self._data.setdefault(key, {})
            for interval, stats in by_interval.items():
                if interval in mine:
                    mine[interval].merge(stats)
                else:
                    merged = IntervalStats()
                    merged.merge(stats)
                    mine[interval] = merged

    def total_over_interval(self, interval: str) -> float:
        return sum(
            stats.total
            for by_interval in self._data.values()
            for name, stats in by_interval.items()
            if name == interval
        )
