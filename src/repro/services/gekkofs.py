"""GekkoFS: a temporary distributed filesystem with relaxed semantics.

One of the Mochi-enabled services the paper lists.  The real system
(Vef et al., CLUSTER'18) distributes both metadata and fixed-size data
chunks across daemons by hashing paths -- there is no central metadata
server and no directory hierarchy walk.  This implementation follows
that design over the simulated stack:

* every daemon runs metadata and chunk handlers,
* the *metadata owner* of a path is ``hash(path) mod N``,
* the *chunk owner* of ``(path, chunk_index)`` is hashed independently,
  so large files stripe across all daemons,
* ``readdir`` broadcasts a prefix scan to every daemon (GekkoFS's
  relaxed, hierarchy-free directory semantics),
* chunk payloads move through the bulk interface.

Data paths are real: what ``write`` stores, ``read`` returns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoConfig, MargoInstance
from ..mercury import BulkRef, HGHandle
from ..net import Fabric
from ..sim import Simulator
from ..ssg import SSGGroup

__all__ = ["GekkoFSCluster", "GekkoFSClient", "GekkoFSError", "CHUNK_SIZE"]

#: Chunk size (the real default is 512 KiB; scaled for simulation).
CHUNK_SIZE = 64 * 1024

RPC_CREATE = "gkfs_create_rpc"
RPC_STAT = "gkfs_stat_rpc"
RPC_REMOVE = "gkfs_remove_rpc"
RPC_UPDATE_SIZE = "gkfs_update_size_rpc"
RPC_WRITE_CHUNK = "gkfs_write_chunk_rpc"
RPC_READ_CHUNK = "gkfs_read_chunk_rpc"
RPC_READDIR = "gkfs_readdir_rpc"
_ALL_RPCS = (
    RPC_CREATE,
    RPC_STAT,
    RPC_REMOVE,
    RPC_UPDATE_SIZE,
    RPC_WRITE_CHUNK,
    RPC_READ_CHUNK,
    RPC_READDIR,
)

PID_GKFS = 1

_MD_COST = 0.6e-6  # metadata map operation
_CHUNK_FIXED = 0.8e-6
_CHUNK_PER_BYTE = 0.05e-9  # memcpy into the chunk store


class GekkoFSError(RuntimeError):
    """Client-visible filesystem error (ENOENT/EEXIST analogues)."""


def _hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "little")


@dataclass
class _Metadata:
    path: str
    size: int
    mode: int
    ctime: float


class _Daemon:
    """One GekkoFS daemon process: metadata map + chunk store."""

    def __init__(self, mi: MargoInstance):
        self.mi = mi
        self.metadata: dict[str, _Metadata] = {}
        self.chunks: dict[tuple[str, int], bytes] = {}
        mi.register(RPC_CREATE, self._h_create, PID_GKFS)
        mi.register(RPC_STAT, self._h_stat, PID_GKFS)
        mi.register(RPC_REMOVE, self._h_remove, PID_GKFS)
        mi.register(RPC_UPDATE_SIZE, self._h_update_size, PID_GKFS)
        mi.register(RPC_WRITE_CHUNK, self._h_write_chunk, PID_GKFS)
        mi.register(RPC_READ_CHUNK, self._h_read_chunk, PID_GKFS)
        mi.register(RPC_READDIR, self._h_readdir, PID_GKFS)

    # -- metadata handlers ---------------------------------------------------

    def _h_create(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_MD_COST)
        path = inp["path"]
        if path in self.metadata:
            yield from mi.respond(handle, {"ret": -1, "err": "EEXIST"})
            return
        self.metadata[path] = _Metadata(
            path=path, size=0, mode=inp.get("mode", 0o644), ctime=mi.sim.now
        )
        yield from mi.respond(handle, {"ret": 0})

    def _h_stat(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_MD_COST)
        md = self.metadata.get(inp["path"])
        if md is None:
            yield from mi.respond(handle, {"ret": -1, "err": "ENOENT"})
            return
        yield from mi.respond(
            handle,
            {"ret": 0, "size": md.size, "mode": md.mode, "ctime": md.ctime},
        )

    def _h_remove(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_MD_COST)
        md = self.metadata.pop(inp["path"], None)
        if md is None:
            yield from mi.respond(handle, {"ret": -1, "err": "ENOENT"})
            return
        yield from mi.respond(handle, {"ret": 0, "size": md.size})

    def _h_update_size(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_MD_COST)
        md = self.metadata.get(inp["path"])
        if md is None:
            yield from mi.respond(handle, {"ret": -1, "err": "ENOENT"})
            return
        md.size = max(md.size, inp["size"])
        yield from mi.respond(handle, {"ret": 0, "size": md.size})

    # -- chunk handlers ---------------------------------------------------------

    def _h_write_chunk(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        bulk: BulkRef = inp["bulk"]
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        yield Compute(_CHUNK_FIXED + _CHUNK_PER_BYTE * bulk.nbytes)
        key = (inp["path"], inp["chunk"])
        offset = inp.get("offset", 0)
        data: bytes = bulk.data
        existing = self.chunks.get(key, b"")
        if offset > len(existing):
            existing = existing + b"\x00" * (offset - len(existing))
        merged = existing[:offset] + data + existing[offset + len(data):]
        before = len(self.chunks.get(key, b""))
        self.chunks[key] = merged
        mi.stats.add_memory(len(merged) - before)
        yield from mi.respond(handle, {"ret": 0, "stored": len(data)})

    def _h_read_chunk(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        yield Compute(_CHUNK_FIXED)
        key = (inp["path"], inp["chunk"])
        data = self.chunks.get(key)
        if data is None:
            yield from mi.respond(handle, {"ret": -1, "bulk": None})
            return
        offset = inp.get("offset", 0)
        size = inp.get("size")
        view = data[offset: offset + size if size is not None else None]
        yield from mi.bulk_transfer(handle, len(view))
        yield from mi.respond(handle, {"ret": 0, "bulk": BulkRef(view, 0)})

    def _h_readdir(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        prefix = inp["prefix"]
        yield Compute(_MD_COST * max(1, len(self.metadata)))
        names = sorted(p for p in self.metadata if p.startswith(prefix))
        yield from mi.respond(handle, {"ret": 0, "entries": BulkRef(names)})


class GekkoFSCluster:
    """N GekkoFS daemons joined into an SSG group."""

    def __init__(self) -> None:
        self.daemons: list[_Daemon] = []
        self.group = SSGGroup("gekkofs")

    @classmethod
    def deploy(
        cls,
        sim: Simulator,
        fabric: Fabric,
        *,
        n_daemons: int,
        n_handler_es: int = 4,
        instrumentation_factory=None,
        addr_prefix: str = "gkfs",
        node_prefix: str = "gnode",
    ) -> "GekkoFSCluster":
        if n_daemons < 1:
            raise ValueError("need at least one daemon")
        cluster = cls()
        mk_instr = instrumentation_factory or (lambda: None)
        for i in range(n_daemons):
            mi = MargoInstance(
                sim,
                fabric,
                f"{addr_prefix}{i}",
                f"{node_prefix}{i}",
                config=MargoConfig(n_handler_es=n_handler_es),
                instrumentation=mk_instr(),
            )
            cluster.daemons.append(_Daemon(mi))
            cluster.group.join(mi.addr)
        return cluster

    def metadata_owner(self, path: str) -> str:
        return self.group.member_for_key(f"md:{path}")

    def chunk_owner(self, path: str, chunk: int) -> str:
        return self.group.member_for_key(f"ck:{path}:{chunk}")

    @property
    def total_chunks(self) -> int:
        return sum(len(d.chunks) for d in self.daemons)


class GekkoFSClient:
    """POSIX-like client API (generators; run inside a client ULT)."""

    def __init__(self, mi: MargoInstance, cluster: GekkoFSCluster,
                 chunk_size: int = CHUNK_SIZE):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.mi = mi
        self.cluster = cluster
        self.chunk_size = chunk_size
        for rpc in _ALL_RPCS:
            mi.register(rpc)

    # -- helpers -----------------------------------------------------------------

    def _md(self, path: str) -> str:
        return self.cluster.metadata_owner(path)

    def _check(self, out: dict, path: str) -> dict:
        if out["ret"] != 0:
            raise GekkoFSError(f"{out.get('err', 'EIO')}: {path}")
        return out

    # -- POSIX-like surface ----------------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> Generator:
        out = yield from self.mi.forward(
            self._md(path), RPC_CREATE, {"path": path, "mode": mode}, PID_GKFS
        )
        self._check(out, path)

    def stat(self, path: str) -> Generator:
        out = yield from self.mi.forward(
            self._md(path), RPC_STAT, {"path": path}, PID_GKFS
        )
        self._check(out, path)
        return {"size": out["size"], "mode": out["mode"], "ctime": out["ctime"]}

    def unlink(self, path: str) -> Generator:
        out = yield from self.mi.forward(
            self._md(path), RPC_REMOVE, {"path": path}, PID_GKFS
        )
        self._check(out, path)
        # Relaxed semantics: chunk garbage is collected lazily; here we
        # drop the chunks eagerly, one RPC per owner touched.
        size = out["size"]
        n_chunks = -(-size // self.chunk_size) if size else 0
        for chunk in range(n_chunks):
            owner = self.cluster.chunk_owner(path, chunk)
            daemon = next(
                d for d in self.cluster.daemons if d.mi.addr == owner
            )
            daemon.chunks.pop((path, chunk), None)

    def write(self, path: str, offset: int, data: bytes) -> Generator:
        """Striped chunk writes, issued concurrently (one ULT per chunk)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        # Split into per-chunk pieces.
        pieces = []
        pos = offset
        cursor = 0
        while cursor < len(data):
            chunk = pos // self.chunk_size
            in_chunk = pos % self.chunk_size
            take = min(self.chunk_size - in_chunk, len(data) - cursor)
            pieces.append((chunk, in_chunk, data[cursor: cursor + take]))
            pos += take
            cursor += take

        ults = [
            self.mi.rt.spawn(
                self._write_piece(path, chunk, in_chunk, piece),
                self.mi.primary_pool,
                name=f"gkfs.write.{chunk}",
            )
            for chunk, in_chunk, piece in pieces
        ]
        yield from self.mi.rt.join_all(ults)
        out = yield from self.mi.forward(
            self._md(path),
            RPC_UPDATE_SIZE,
            {"path": path, "size": offset + len(data)},
            PID_GKFS,
        )
        self._check(out, path)
        return len(data)

    def _write_piece(self, path, chunk, in_chunk, piece) -> Generator:
        out = yield from self.mi.forward(
            self.cluster.chunk_owner(path, chunk),
            RPC_WRITE_CHUNK,
            {
                "path": path,
                "chunk": chunk,
                "offset": in_chunk,
                "bulk": BulkRef(piece, len(piece)),
            },
            PID_GKFS,
        )
        self._check(out, path)

    def read(self, path: str, offset: int, size: int) -> Generator:
        """Gather striped chunks; returns the bytes actually available."""
        md = yield from self.stat(path)
        end = min(offset + size, md["size"])
        if end <= offset:
            return b""
        parts: dict[int, bytes] = {}
        requests = []
        pos = offset
        while pos < end:
            chunk = pos // self.chunk_size
            in_chunk = pos % self.chunk_size
            take = min(self.chunk_size - in_chunk, end - pos)
            requests.append((pos, chunk, in_chunk, take))
            pos += take

        def read_piece(key, chunk, in_chunk, take) -> Generator:
            out = yield from self.mi.forward(
                self.cluster.chunk_owner(path, chunk),
                RPC_READ_CHUNK,
                {"path": path, "chunk": chunk, "offset": in_chunk, "size": take},
                PID_GKFS,
            )
            self._check(out, path)
            parts[key] = out["bulk"].data

        ults = [
            self.mi.rt.spawn(
                read_piece(pos_, chunk, in_chunk, take),
                self.mi.primary_pool,
                name=f"gkfs.read.{chunk}",
            )
            for pos_, chunk, in_chunk, take in requests
        ]
        yield from self.mi.rt.join_all(ults)
        return b"".join(parts[k] for k in sorted(parts))

    def readdir(self, prefix: str) -> Generator:
        """Broadcast prefix scan across every daemon (GekkoFS-style)."""
        entries: list[str] = []
        for member in self.cluster.group.members:
            out = yield from self.mi.forward(
                member, RPC_READDIR, {"prefix": prefix}, PID_GKFS
            )
            self._check(out, prefix)
            entries.extend(out["entries"].data)
        return sorted(entries)
