"""Fault-test harness (shared implementations in tests/conftest.py)."""

from tests.conftest import echo_handler, make_echo_cluster

__all__ = ["echo_handler", "make_echo_cluster"]
