"""Client-side shard routing over an eventually consistent view.

A :class:`ShardRouter` holds its own SSG view replica (fed by the
service's :class:`~repro.ssg.ViewPropagator` after fabric delays) and
lazily rebuilds its ring + placement map whenever the replica's epoch
moves.  Because the replica lags the authoritative group, the router's
map can be stale; the server-side ownership fence turns every stale
route into an explicit ``ret == -2`` redirect, which the router chases
— first to the tombstone hint, then by re-deriving the owner from its
(possibly refreshed) map — with a capped retry budget.  A request
therefore either lands on the true owner or fails loudly; it is never
silently dropped.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..margo import MargoInstance
from ..ssg import SSGGroup
from .placement import ShardMap
from .ring import HashRing
from .service import RET_WRONG_OWNER, RPC_GET, RPC_PUT

__all__ = ["ShardRouter"]


class ShardRouter:
    """Routes keys, BAKE regions, and HEPnOS-style dataset/event keys
    to their owning server."""

    #: Redirect-chase budget per request.  Each miss sleeps
    #: ``redirect_backoff`` before retrying, covering the fence window
    #: between a source dropping a shard and the destination install.
    max_redirects = 8
    redirect_backoff = 100e-6

    def __init__(
        self,
        mi: MargoInstance,
        *,
        replica: SSGGroup,
        n_shards: int,
        placement_seed: int = 0,
        vnodes: int = 32,
        provider_id: int = 1,
        bake_provider_id: int = 2,
        rpc_timeout: float = 2e-3,
    ):
        self.mi = mi
        self.replica = replica
        self.n_shards = n_shards
        self.provider_id = provider_id
        self.bake_provider_id = bake_provider_id
        self.rpc_timeout = rpc_timeout
        self._ring = HashRing(seed=placement_seed, vnodes=vnodes)
        self._map: Optional[ShardMap] = None
        mi.register(RPC_PUT)
        mi.register(RPC_GET)
        #: Requests that exhausted the redirect budget (never silent).
        self.routing_failures = 0
        self.redirects_followed = 0

    # -- placement ---------------------------------------------------------

    def map(self) -> ShardMap:
        """Current placement map, rebuilt when the replica epoch moved."""
        if self._map is None or self._map.version != self.replica.epoch:
            self._ring.replace(self.replica.members)
            self._map = ShardMap.build(
                self._ring, self.n_shards, version=self.replica.epoch
            )
        return self._map

    def shard_of(self, key: str) -> int:
        return self.map().shard_of(key)

    def owner_of(self, key: str) -> str:
        return self.map().owner_of_key(key)

    # BAKE regions and HEPnOS datasets ride the same placement: a region
    # or dataset/run/event identifier is just a key in shard space.

    def region_owner(self, region_key: str) -> str:
        """Server that should host a BAKE region named ``region_key``."""
        return self.owner_of(f"bake:{region_key}")

    def event_key(self, dataset: str, run: int, event: int) -> str:
        """HEPnOS-style fully qualified event key."""
        return f"{dataset}/{run}/{event}"

    def dataset_owner(self, dataset: str, run: int, event: int) -> str:
        return self.owner_of(self.event_key(dataset, run, event))

    # -- request routing ---------------------------------------------------

    def _route(self, rpc: str, key: str, payload: dict) -> Generator:
        """Forward ``rpc`` for ``key``, chasing wrong-owner redirects."""
        shard = self.shard_of(key)
        payload = dict(payload, shard=shard, key=key)
        target = self.map().owner_of_shard(shard)
        # With an instance retry policy, per-attempt deadlines come from
        # the policy; otherwise our own timeout keeps a dead owner from
        # hanging the request forever.
        timeout = self.rpc_timeout if self.mi.retry is None else None
        for attempt in range(self.max_redirects):
            out = yield from self.mi.forward(
                target,
                rpc,
                payload,
                self.provider_id,
                timeout=timeout,
            )
            if out["ret"] != RET_WRONG_OWNER:
                return out
            self.redirects_followed += 1
            hint = out.get("owner")
            if hint is not None:
                target = hint
            else:
                # No tombstone yet (install still in flight, or our map
                # is ahead/behind): wait out the window and re-derive.
                yield from self.mi.rt.sleep(self.redirect_backoff)
                target = self.map().owner_of_shard(shard)
        self.routing_failures += 1
        raise LookupError(
            f"no owner found for key {key!r} (shard {shard}) after "
            f"{self.max_redirects} redirects"
        )

    def put(self, key: str, value) -> Generator:
        out = yield from self._route(RPC_PUT, key, {"value": value})
        return out["ret"]

    def get(self, key: str) -> Generator:
        out = yield from self._route(RPC_GET, key, {})
        return out["value"]

    def put_event(self, dataset: str, run: int, event: int, blob) -> Generator:
        ret = yield from self.put(self.event_key(dataset, run, event), blob)
        return ret

    def get_event(self, dataset: str, run: int, event: int) -> Generator:
        value = yield from self.get(self.event_key(dataset, run, event))
        return value
