"""Experiment harnesses reproducing the paper's tables and figures."""

from .configs import HEPnOSConfig, TABLE_IV, table_iv_rows
from .faults import (
    FaultCampaignResult,
    default_fault_plan,
    default_retry_policy,
    run_fault_campaign,
)
from .hepnos import (
    HEPnOSExperimentResult,
    PUT_PACKED,
    run_hepnos_experiment,
)
from .mobject import MobjectExperimentResult, run_mobject_experiment
from .monitor import (
    MonitorExperimentResult,
    default_monitor_config,
    run_monitor_experiment,
)
from .overhead import (
    AnalysisTimings,
    OverheadStudyResult,
    run_overhead_study,
    time_analysis_scripts,
)
from .presets import FAST_TEST, THETA_KNL, Preset
from .reporting import ascii_table, format_seconds, series_histogram
from .scale import (
    ScaleCell,
    ScaleCellResult,
    ScaleExperimentResult,
    run_scale_cell,
    run_scale_experiment,
    smoke_cell,
)
from .sonata import SonataExperimentResult, run_sonata_experiment

__all__ = [
    "AnalysisTimings",
    "FAST_TEST",
    "FaultCampaignResult",
    "HEPnOSConfig",
    "HEPnOSExperimentResult",
    "MobjectExperimentResult",
    "MonitorExperimentResult",
    "OverheadStudyResult",
    "PUT_PACKED",
    "Preset",
    "ScaleCell",
    "ScaleCellResult",
    "ScaleExperimentResult",
    "SonataExperimentResult",
    "TABLE_IV",
    "THETA_KNL",
    "ascii_table",
    "default_fault_plan",
    "default_monitor_config",
    "default_retry_policy",
    "format_seconds",
    "run_fault_campaign",
    "run_monitor_experiment",
    "run_hepnos_experiment",
    "run_mobject_experiment",
    "run_overhead_study",
    "run_scale_cell",
    "run_scale_experiment",
    "run_sonata_experiment",
    "smoke_cell",
    "series_histogram",
    "table_iv_rows",
    "time_analysis_scripts",
]
