"""Tests for the Table IV configuration definitions."""

import pytest

from repro.experiments import TABLE_IV, table_iv_rows
from repro.experiments.configs import HEPnOSConfig


def test_table_iv_has_seven_configs():
    assert list(TABLE_IV) == ["C1", "C2", "C3", "C4", "C5", "C6", "C7"]


def test_table_iv_matches_paper_values():
    c1 = TABLE_IV["C1"]
    assert (c1.total_clients, c1.clients_per_node) == (32, 16)
    assert (c1.total_servers, c1.servers_per_node) == (4, 2)
    assert c1.batch_size == 1024
    assert c1.threads == 5
    assert c1.databases == 32
    assert not c1.client_progress_thread
    assert c1.ofi_max_events == 16

    c5 = TABLE_IV["C5"]
    assert c5.batch_size == 1
    assert (c5.total_clients, c5.clients_per_node) == (2, 1)

    c7 = TABLE_IV["C7"]
    assert c7.client_progress_thread
    assert c7.ofi_max_events == 64


def test_only_deltas_change_between_neighbours():
    """Each configuration differs from its study partner in exactly the
    parameters the paper varies."""
    c1, c2, c3 = TABLE_IV["C1"], TABLE_IV["C2"], TABLE_IV["C3"]
    assert c2.scaled(name="C1", threads=c1.threads) == c1
    assert c3.scaled(name="C2", databases=c2.databases) == c2
    c4, c5, c6, c7 = (TABLE_IV[k] for k in ("C4", "C5", "C6", "C7"))
    assert c5.scaled(name="C4", batch_size=1024) == c4
    assert c6.scaled(name="C5", ofi_max_events=16) == c5
    assert c7.scaled(name="C6", client_progress_thread=False) == c6


def test_databases_per_server():
    assert TABLE_IV["C1"].databases_per_server == 8
    assert TABLE_IV["C3"].databases_per_server == 2


def test_node_counts():
    c1 = TABLE_IV["C1"]
    assert c1.client_nodes == 2
    assert c1.server_nodes == 2
    c4 = TABLE_IV["C4"]
    assert c4.client_nodes == 2


def test_validation():
    with pytest.raises(ValueError):
        HEPnOSConfig(
            name="bad", total_clients=0, clients_per_node=1,
            total_servers=1, servers_per_node=1, batch_size=1, threads=1,
            databases=1, client_progress_thread=False, ofi_max_events=16,
        )
    with pytest.raises(ValueError):
        HEPnOSConfig(
            name="bad", total_clients=1, clients_per_node=1,
            total_servers=4, servers_per_node=2, batch_size=1, threads=1,
            databases=6,  # not divisible by 4
            client_progress_thread=False, ofi_max_events=16,
        )


def test_table_iv_rows_render():
    rows = table_iv_rows()
    assert len(rows) == 7
    assert rows[0]["Configuration"] == "C1"
    assert rows[6]["Client Progress Thread?"] == "yes"
