"""Tests for the online telemetry monitor: sampling, scheduler slices,
anomaly detectors, and the determinism guarantees the layer makes."""

from types import SimpleNamespace

import pytest

from repro.cluster import Cluster
from repro.symbiosys.export import series_to_csv, to_prometheus
from repro.symbiosys.monitor import (
    AnomalyDetector,
    Finding,
    ForwardTimeoutBurstDetector,
    Monitor,
    MonitorConfig,
    ProgressStarvationDetector,
    QueueDepthWatermarkDetector,
    SchedRecorder,
)


def echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp})


def run_monitored_echo(seed=0, n_requests=20, monitoring=None):
    """One server + one client under a monitored Cluster; returns the
    closed cluster (telemetry intact after shutdown)."""
    monitoring = monitoring or MonitorConfig(interval=25e-6)
    with Cluster(seed=seed, monitoring=monitoring) as cluster:
        server = cluster.process("svr", "nA", n_handler_es=1)
        client = cluster.process("cli", "nB")
        server.register("echo", echo_handler)
        client.register("echo")
        done = []

        def body(i):
            out = yield from client.forward("svr", "echo", {"req": i})
            done.append(out)

        for i in range(n_requests):
            client.client_ult(body(i), name=f"req{i}")
        assert cluster.run_until(lambda: len(done) == n_requests, limit=1.0)
    assert len(done) == n_requests
    return cluster


# ------------------------------------------------------------ config


def test_monitor_config_validates():
    with pytest.raises(ValueError):
        MonitorConfig(interval=0.0)
    with pytest.raises(ValueError):
        MonitorConfig(ring_capacity=0)
    with pytest.raises(ValueError):
        MonitorConfig(detectors=("starvation", "nonsense"))


def test_monitor_config_replaceable():
    cfg = MonitorConfig()
    tweaked = cfg.replace(interval=1e-3)
    assert tweaked.interval == 1e-3
    assert cfg.interval == 100e-6  # original untouched


# ------------------------------------------------------------ sampling


def test_monitor_samples_pvars_tasking_and_fabric():
    cluster = run_monitored_echo()
    monitor = cluster.monitor
    assert monitor.sampler.ticks > 0
    names = {s.name for s in monitor.store.all_series()}
    # PVARs, tasking gauges, and fabric gauges all present.
    assert "pvar_num_rpcs_invoked" in names
    assert "pvar_num_forward_timeouts" in names
    assert "abt_handler_pool_depth" in names
    assert "abt_num_blocked" in names
    assert "abt_busy_fraction" in names
    assert "fabric_inflight_bytes" in names
    assert "fabric_total_bytes" in names
    # Both processes labelled.
    procs = {
        dict(s.labels).get("process")
        for s in monitor.store.all_series()
        if s.labels
    }
    assert {"svr", "cli"} <= procs
    # The fabric actually moved bytes.
    total = monitor.store.series("fabric_total_bytes", None).latest()
    assert total is not None and total[1] > 0


def test_monitor_records_scheduler_slices():
    cluster = run_monitored_echo()
    sched = cluster.monitor.sched
    assert len(sched) > 0
    kinds = {s.kind for s in sched.slices}
    assert kinds == {"run", "block"}
    names = {s.ult for s in sched.slices}
    assert "svr.__margo_progress" in names
    assert any(n.startswith("svr.h:echo") for n in names)
    for s in sched.slices:
        assert s.end >= s.start
        if s.kind == "run":
            assert s.reason in ("end", "block", "yield", "preempt")


def test_monitor_clean_teardown_and_double_attach():
    cluster = run_monitored_echo()
    assert cluster.leaked_events == 0
    with pytest.raises(ValueError):
        cluster.monitor.attach(cluster.processes["svr"])


def test_monitoring_does_not_change_simulated_time():
    """The sampler is a pure observer: the monitored makespan equals the
    unmonitored one (the <=5% overhead criterion, met at 0%)."""

    def makespan(monitoring):
        with Cluster(seed=7, monitoring=monitoring) as cluster:
            server = cluster.process("svr", "nA", n_handler_es=1)
            client = cluster.process("cli", "nB")
            server.register("echo", echo_handler)
            client.register("echo")
            done = []

            def body(i):
                yield from client.forward("svr", "echo", {"req": i})
                done.append(cluster.sim.now)

            for i in range(10):
                client.client_ult(body(i), name=f"req{i}")
            assert cluster.run_until(lambda: len(done) == 10, limit=1.0)
            return max(done)

    assert makespan(None) == makespan(MonitorConfig(interval=25e-6))


def test_monitored_runs_are_byte_identical():
    """Same seed -> identical time-series and exporter text."""

    def snapshot():
        cluster = run_monitored_echo(seed=3)
        monitor = cluster.monitor
        series = [
            (s.name, s.labels, s.samples()) for s in monitor.store.all_series()
        ]
        return series, to_prometheus(monitor.registry), series_to_csv(monitor.store)

    assert snapshot() == snapshot()


def test_custom_detector_factory_runs():
    hits = []

    class CountingDetector(AnomalyDetector):
        name = "counting"

        def __init__(self, config):
            pass

        def on_sample(self, t, monitor):
            hits.append(t)
            return []

    cfg = MonitorConfig(
        interval=25e-6, detector_factories=(lambda c: CountingDetector(c),)
    )
    cluster = run_monitored_echo(monitoring=cfg)
    assert len(hits) == cluster.monitor.sampler.ticks + 1  # +1 final sample


# ------------------------------------------------------------ detectors
#
# Detector units run against stub processes so each trigger/clear edge
# is exercised exactly, without hunting for a workload that produces it.


def _stub_monitor(processes, last_progress=None):
    return SimpleNamespace(
        iter_processes=lambda: list(processes.items()),
        last_progress=last_progress or {},
    )


def _stub_process(*, cq_depth=0, crashed=False, pool_depth=0, timeouts=0):
    return SimpleNamespace(
        endpoint=SimpleNamespace(cq_depth=cq_depth),
        crashed=crashed,
        handler_pool=[None] * pool_depth,
        hg=SimpleNamespace(
            pvars=SimpleNamespace(raw_value=lambda name: timeouts)
        ),
    )


def test_starvation_detector_edges():
    det = ProgressStarvationDetector(MonitorConfig(starvation_threshold=1e-3))
    mi = _stub_process(cq_depth=2)
    mon = _stub_monitor({"p": mi}, last_progress={"p": 0.0})
    assert det.on_sample(0.5e-3, mon) == []  # below threshold
    [f] = det.on_sample(2e-3, mon)  # starved
    assert f.detector == "progress_starvation" and "queued completions" in f.message
    assert det.on_sample(3e-3, mon) == []  # edge-triggered: no repeat
    mon.last_progress["p"] = 3.1e-3  # progress resumed
    [f] = det.on_sample(3.2e-3, mon)
    assert f.message == "progress resumed"


def test_starvation_detector_fires_on_crash():
    det = ProgressStarvationDetector(MonitorConfig())
    mi = _stub_process(crashed=True)
    mon = _stub_monitor({"p": mi}, last_progress={"p": 0.0})
    [f] = det.on_sample(1e-6, mon)
    assert "process down" in f.message


def test_queue_depth_detector_hysteresis():
    det = QueueDepthWatermarkDetector(MonitorConfig(queue_watermark=4))
    mi = _stub_process(pool_depth=4)
    mon = _stub_monitor({"p": mi})
    [f] = det.on_sample(0.0, mon)
    assert f.detector == "handler_queue_depth" and f.value == 4
    mi.handler_pool = [None] * 3  # above half-watermark: still armed
    assert det.on_sample(1e-6, mon) == []
    mi.handler_pool = [None] * 2  # at half-watermark: clears
    [f] = det.on_sample(2e-6, mon)
    assert "drained" in f.message


def test_timeout_burst_detector_window():
    det = ForwardTimeoutBurstDetector(
        MonitorConfig(timeout_burst_count=3, timeout_burst_window=1e-3)
    )
    mi = _stub_process()
    mon = _stub_monitor({"p": mi})
    timeline = [(0.0, 1), (0.2e-3, 2), (0.4e-3, 3), (2e-3, 3)]
    fired = []
    for t, total in timeline:
        mi.hg.pvars = SimpleNamespace(raw_value=lambda name, v=total: v)
        fired.extend(det.on_sample(t, mon))
    # Burst of 3 inside 1ms fires once; the quiet window then clears.
    assert [f.message.split()[0] for f in fired] == ["3", "timeout"]
    assert fired[0].detector == "forward_timeout_burst"


def test_sched_recorder_bounded():
    rec = SchedRecorder(capacity=1)
    es = SimpleNamespace(runtime=SimpleNamespace(name="p"), name="es0")
    from repro.argobots.ult import UltState

    ult = SimpleNamespace(name="u", state=UltState.TERMINATED)
    rec.on_slice(es, ult, 0.0, 1e-6)
    rec.on_slice(es, ult, 2e-6, 3e-6)
    assert len(rec) == 1 and rec.dropped == 1


def test_finding_as_row():
    f = Finding(1.5e-3, "d", "p", "msg", value=2.0)
    row = f.as_row()
    assert row["time"] == "1.500000ms" and row["finding"] == "msg"
