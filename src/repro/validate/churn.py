"""Membership-churn fuzz campaigns over the sharded service.

The generic fuzzer (:mod:`repro.validate.fuzz`) checks export-level
determinism and runtime invariants; this extension aims randomized
**kill/revive sequences** at a :class:`~repro.shard.ShardedKVService`
fleet and checks the two properties the sharding layer promises:

* **No silent drops** — every request a client issued is accounted:
  acknowledged (and then readable on the shard's current owner),
  failed loudly, or located in a shard whose data was lost to a
  failover (an explicit, counted loss — never an unnoticed one).
* **Byte conservation** — migrations move bytes, never mint or destroy
  them: after quiescing, the bytes stored across the fleet equal the
  bytes implied by the surviving acknowledged keys.

Both are audited by :func:`~repro.shard.run_churn_audit` after the
cluster quiesces.  Every configuration runs **twice** and the audit
dicts plus membership-event logs are compared, so churn handling is
also covered by the determinism cross-check.  Failing configs serialize
to the same JSON repro shape the generic fuzzer uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..faults import FaultPlan
from ..faults.plan import CrashFault, RestartFault
from .fuzz import _quantize
from .workloads import WORKLOAD_SERVERS, WorkloadHang

__all__ = [
    "ChurnConfig",
    "ChurnOutcome",
    "ChurnSweepResult",
    "check_churn_config",
    "churn_sweep",
    "random_churn_plan",
    "run_churn_campaign",
]

_SERVERS = WORKLOAD_SERVERS["sharded"]


@dataclass(frozen=True)
class ChurnConfig:
    """One churn campaign: a kill/revive plan over the sharded fleet."""

    seed: int
    n_clients: int = 2
    keys_per_client: int = 15
    plan: Optional[FaultPlan] = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_clients": self.n_clients,
            "keys_per_client": self.keys_per_client,
            "plan": None if self.plan is None else self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnConfig":
        plan = data.get("plan")
        return cls(
            seed=data["seed"],
            n_clients=data.get("n_clients", 2),
            keys_per_client=data.get("keys_per_client", 15),
            plan=None if plan is None else FaultPlan.from_dict(plan),
        )

    def describe(self) -> str:
        n_faults = 0 if self.plan is None else len(self.plan.process_faults)
        return (
            f"churn seed={self.seed} clients={self.n_clients} "
            f"keys={self.keys_per_client} faults={n_faults}"
        )


def random_churn_plan(
    rng: np.random.Generator, max_faults: int = 3
) -> FaultPlan:
    """Draw a kill/revive sequence over distinct servers.

    Between one and ``max_faults`` process faults, each a permanent
    crash or a bounce (crash + revive), at quantized times inside the
    workload window.  At least one live server always remains."""
    n = int(rng.integers(1, max_faults + 1))
    victims = rng.choice(
        list(_SERVERS), size=min(n, len(_SERVERS) - 1), replace=False
    )
    faults = []
    for victim in sorted(str(v) for v in victims):
        at = _quantize(0.3e-3 + 1.0e-3 * rng.random())
        if rng.random() < 0.5:
            faults.append(CrashFault(addr=victim, at=at))
        else:
            faults.append(
                RestartFault(
                    addr=victim,
                    at=at,
                    downtime=_quantize(0.2e-3 + 0.5e-3 * rng.random()),
                    warmup=0.0,
                )
            )
    return FaultPlan(name="churn-fuzz", process_faults=faults)


@dataclass
class ChurnOutcome:
    """One campaign run: the audit plus the determinism fingerprint."""

    audit: dict
    membership_events: list[tuple] = field(default_factory=list)
    epoch: int = 0
    migrations: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Canonical serialization the double-run cross-check compares."""
        return json.dumps(
            {
                "audit": self.audit,
                "events": [list(e) for e in self.membership_events],
                "epoch": self.epoch,
                "migrations": self.migrations,
            },
            sort_keys=True,
        )


def run_churn_campaign(
    config: ChurnConfig, *, time_limit: float = 5.0
) -> ChurnOutcome:
    """Run one churn campaign end to end and audit it.

    Clients write a pre-churn wave, sleep across the fault window, then
    write a post-churn wave; after the workload and a quiesce tail the
    conservation audit runs over the fleet.
    """
    from ..cluster import Cluster
    from ..margo import MargoError
    from ..shard import ShardedKVService, run_churn_audit
    from ..symbiosys import Stage
    from .workloads import _default_retry

    with Cluster(
        seed=config.seed,
        stage=Stage.FULL,
        fault_plan=config.plan,
        retry=_default_retry(),
    ) as cluster:
        service = ShardedKVService.deploy(cluster, len(_SERVERS))
        expected: dict[str, str] = {}
        acked: set[str] = set()
        pending = {"n": config.n_clients}
        done = cluster.sim.event("churn-done")

        def body(c, router):
            def tracked_put(key, value):
                expected[key] = value
                try:
                    yield from router.put(key, value)
                    acked.add(key)
                except (MargoError, LookupError):
                    pass

            for i in range(config.keys_per_client):
                yield from tracked_put(f"c{c}k{i}", f"v{c}.{i}" * 3)
            yield from router.mi.rt.sleep(
                max(1e-9, 2.0e-3 - cluster.sim.now)
            )
            for i in range(config.keys_per_client):
                yield from tracked_put(f"c{c}p{i}", f"w{c}.{i}" * 3)
            pending["n"] -= 1
            if pending["n"] == 0:
                done.succeed(cluster.sim.now)

        for c in range(config.n_clients):
            mi = cluster.process(f"churn-cli{c}", f"nodeC{c}")
            mi.client_ult(body(c, service.make_router(mi)), name=f"load{c}")
        if not cluster.run_until_event(done, limit=time_limit):
            cluster.shutdown()
            raise WorkloadHang(
                f"churn campaign {config.describe()} did not finish "
                f"within {time_limit}s of simulated time"
            )
        cluster.run(until=cluster.sim.now + 2e-3)  # quiesce migrations

    report = run_churn_audit(service, expected, acked)
    manager = service.manager
    return ChurnOutcome(
        audit=report.as_dict(),
        membership_events=list(service.membership.events),
        epoch=service.group.epoch,
        migrations=manager.summary(),
    )


def check_churn_config(
    config: ChurnConfig, time_limit: float = 5.0
) -> Optional[str]:
    """Run ``config`` twice; return a failure description or None."""
    outcomes = []
    for _ in range(2):
        try:
            outcomes.append(run_churn_campaign(config, time_limit=time_limit))
        except WorkloadHang as exc:
            return f"hang: {exc}"
    for outcome in outcomes:
        if not outcome.audit["ok"]:
            return f"conservation: audit failed: {outcome.audit}"
    if outcomes[0].fingerprint() != outcomes[1].fingerprint():
        return (
            "nondeterminism: same-seed churn campaigns disagree "
            "(audit/events/migrations fingerprints differ)"
        )
    return None


@dataclass
class ChurnSweepResult:
    configs_run: int = 0
    failures: list[tuple] = field(default_factory=list)  # (config, detail)

    @property
    def ok(self) -> bool:
        return not self.failures


def churn_sweep(
    *,
    seeds: range | list[int] = range(4),
    fault_fraction: float = 0.75,
    log: Callable[[str], None] = lambda s: None,
    stop_on_failure: bool = True,
    repro_path: Optional[str] = None,
) -> ChurnSweepResult:
    """The churn campaign matrix: one config per seed, most of them
    with a random kill/revive plan (plan-free cells keep the
    no-fault baseline honest)."""
    result = ChurnSweepResult()
    for seed in seeds:
        rng = np.random.default_rng(seed * 7_368_787 + 29)
        plan = (
            random_churn_plan(rng)
            if rng.random() < fault_fraction
            else None
        )
        config = ChurnConfig(seed=seed, plan=plan)
        log(f"churn: {config.describe()}")
        detail = check_churn_config(config)
        result.configs_run += 1
        if detail is None:
            continue
        log(f"  FAILED ({detail})")
        result.failures.append((config, detail))
        if repro_path is not None:
            payload = {
                "kind": detail.split(":", 1)[0],
                "detail": detail,
                "config": config.to_dict(),
            }
            with open(repro_path, "w", newline="\n") as f:
                json.dump(payload, f, indent=2, sort_keys=True)
                f.write("\n")
            log(f"  repro written to {repro_path}")
        if stop_on_failure:
            return result
    return result
