"""Discrete-event simulation kernel (see :mod:`repro.sim.engine`)."""

from .clock import LocalClock
from .engine import (
    AnyOf,
    SimEvent,
    SimulationError,
    Simulator,
    StopSimulation,
    Task,
    Timeout,
    all_of,
)
from .resources import Mutex, Semaphore, Store
from .rng import RngRegistry

__all__ = [
    "AnyOf",
    "LocalClock",
    "Mutex",
    "RngRegistry",
    "Semaphore",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Task",
    "Timeout",
    "all_of",
]
