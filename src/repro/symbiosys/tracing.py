"""Distributed request tracing (paper §IV-A-2).

Trace events are generated at t1 and t14 on the origin and t5 and t8 on
the target of every RPC.  Each event carries:

* the globally unique *request id* minted by the end client,
* a per-request *order* counter propagated with the request,
* the process's *Lamport clock* (used by the stitcher to correct skewed
  local timestamps),
* the local (possibly drifted) wall-clock timestamp,
* a *span id* / *parent span id* pair for Zipkin-style visualizations,
* sampled PVAR values and OS/tasking statistics.

Events are buffered per process and consolidated by the analysis layer
after the run.

Storage is columnar: recording an event appends fixed-width scalars to
flat ``array`` columns (strings are interned to integer ids once per
distinct value), so the hot path never constructs a dataclass or a
dict.  The familiar :class:`TraceEvent` objects are materialized lazily
-- and cached -- the first time :attr:`TraceBuffer.events` is read,
which only happens at export/analysis time.
"""

from __future__ import annotations

import enum
import itertools
from array import array
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = [
    "EventKind",
    "FaultAnnotation",
    "RetryRecord",
    "SpanIdAllocator",
    "TraceBuffer",
    "TraceEvent",
    "TRACE_DATA_KEYS",
    "TRACE_PVAR_FLOAT_KEYS",
    "TRACE_PVAR_INT_KEYS",
]


class SpanIdAllocator:
    """Run-scoped span-id source.

    One allocator is owned by each
    :class:`~repro.symbiosys.collector.SymbiosysCollector`, so span ids
    restart from 1 for every run and same-seed runs produce identical
    ids.  (A module-global ``itertools.count`` here used to leak ids
    across consecutive runs in one interpreter, which broke byte-level
    determinism of every export containing span ids.)
    """

    def __init__(self, start: int = 1):
        self._ids = itertools.count(start)

    def __call__(self) -> int:
        return next(self._ids)


class EventKind(enum.Enum):
    ORIGIN_FORWARD = "origin_forward"  # t1
    ORIGIN_COMPLETE = "origin_complete"  # t14
    TARGET_ULT_START = "target_ult_start"  # t5
    TARGET_RESPOND = "target_respond"  # t8


#: Kind materialization table, indexed by the integer kind code used in
#: the columnar buffer.
_KINDS = (
    EventKind.ORIGIN_FORWARD,
    EventKind.ORIGIN_COMPLETE,
    EventKind.TARGET_ULT_START,
    EventKind.TARGET_RESPOND,
)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}

#: Per-kind schema of the ``data`` dict: every event of a kind carries
#: exactly these float-valued keys, so they live in fixed data columns.
TRACE_DATA_KEYS = (
    (),  # ORIGIN_FORWARD
    ("t1", "origin_execution_time", "t11"),  # ORIGIN_COMPLETE
    # TARGET_ULT_START
    ("t4", "target_handler_time", "t_arrival", "internal_rdma_transfer_time"),
    (
        "t8",
        "target_execution_time",
        "target_execution_time_exclusive",
        "bulk_transfer_time",
    ),  # TARGET_RESPOND
)

#: The NO_OBJECT PVARs fused into origin trace records at t14, in record
#: order.  All integer-valued; kept int-typed end to end because the
#: JSON trace export and Zipkin tags render ints and floats differently.
TRACE_PVAR_INT_KEYS = (
    "num_ofi_events_read",
    "completion_queue_size",
    "num_posted_handles",
    "num_forward_timeouts",
    "num_forward_retries",
    "num_failed_over_forwards",
    "num_late_responses_dropped",
)
#: The HANDLE-bound timer PVARs that follow, float-valued.
TRACE_PVAR_FLOAT_KEYS = (
    "input_serialization_time",
    "origin_completion_callback_time",
)

# Integer-column record layout (one stride per event).
_QSTRIDE = 12
_Q_REQ = 0  # interned request-id
_Q_RPC = 1  # interned rpc name
_Q_ORDER = 2
_Q_LAMPORT = 3
_Q_SPAN = 4
_Q_PARENT = 5  # -1 encodes parent_span_id=None
_Q_PROVIDER = 6
_Q_SS_BLOCKED = 7
_Q_SS_READY = 8
_Q_SS_RUNNING = 9
_Q_SS_MEM = 10
_Q_PVROW = 11  # row into the pvar side table, -1 if no pvars

# Float-column record layout.
_DSTRIDE = 7
_D_LOCAL = 0
_D_TRUE = 1
_D_SS_CPU = 2
_D_DATA0 = 3  # data values, in TRACE_DATA_KEYS[kind] order

_N_PV_INT = len(TRACE_PVAR_INT_KEYS)
_N_PV_FLOAT = len(TRACE_PVAR_FLOAT_KEYS)


@dataclass
class TraceEvent:
    """One point event in a distributed request trace."""

    kind: EventKind
    request_id: str
    order: int
    lamport: int
    process: str
    local_ts: float  # local clock (subject to drift/offset)
    true_ts: float  # simulator truth, kept for validation only
    rpc_name: str
    callpath: int
    span_id: int
    parent_span_id: Optional[int]
    provider_id: int = 0
    #: Extra measurements attached at the event (t4 spawn time, etc.).
    data: dict[str, Any] = field(default_factory=dict)
    #: PVAR samples fused into the trace record (FULL stage only).
    pvars: dict[str, Any] = field(default_factory=dict)
    #: OS / tasking-layer statistics (blocked ULTs, CPU, memory).
    sysstats: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultAnnotation:
    """One injected fault recorded into a process's trace stream.

    Written by the :class:`~repro.faults.FaultInjector` for every
    process a fired fault touches, so the trace analysis can attribute
    latency spikes to injected faults instead of mislabelling them as
    emergent queueing.
    """

    time: float
    kind: str
    #: Deterministic identifying details (addresses, rpc names) -- the
    #: same tuple the injector's own event trace records.
    detail: tuple = ()

    def describe(self) -> str:
        detail_s = " ".join(str(d) for d in self.detail)
        return f"fault:{self.kind} {detail_s}".rstrip()


@dataclass(frozen=True)
class RetryRecord:
    """One retry/timeout episode on a forwarding client.

    Recorded by the instrumentation's ``on_forward_retry`` /
    ``on_forward_timeout`` hooks.  ``request_id`` is the id of the
    *failed attempt* (each top-level forward attempt mints a fresh one),
    so retry backoff shows up as aggregate/per-operation cost in the
    critical-path breakdown rather than inside any complete request's
    timeline.
    """

    process: str
    time: float
    request_id: str
    rpc_name: str
    #: 1-based attempt number for retries; 0 for bare timeouts.
    attempt: int
    #: Backoff delay about to be slept before the next attempt (retries
    #: only; 0.0 for timeouts).
    delay: float
    #: Next target address for retries, original target for timeouts.
    target: str
    #: ``"retry"`` or ``"timeout"``.
    kind: str


class TraceBuffer:
    """Per-process accumulation of trace events and fault annotations.

    Internally a structure-of-arrays: parallel ``array('q')`` /
    ``array('d')`` columns striped per event, an ``array('b')`` kind
    column, an ``array('Q')`` callpath column (callpath codes use the
    full unsigned 64-bit range), and a side table for the t14 PVAR
    samples that only origin-complete records carry.  Request ids and
    RPC names are interned into a per-buffer string table.

    :attr:`events` materializes (and caches) :class:`TraceEvent` views;
    :meth:`append_event` is the allocation-free hot path used by the
    instrumentation hooks, while :meth:`append` remains for generic
    pre-built events (replay tooling, tests).
    """

    def __init__(self, process: str):
        self.process = process
        #: Injected faults that touched this process, in firing order.
        self.annotations: list[FaultAnnotation] = []
        #: Retry/timeout episodes on this process, in firing order.
        self.retries: list[RetryRecord] = []
        self._n = 0
        self._kind = array("b")
        self._callpath = array("Q")
        self._q = array("q")
        self._d = array("d")
        self._pv_q = array("q")
        self._pv_d = array("d")
        self._n_pv = 0
        self._strings: list[str] = []
        self._str_ids: dict[str, int] = {}
        #: Materialized TraceEvent views for rows [0, len(_mat)).
        self._mat: list[TraceEvent] = []

    # -- recording (hot path) --------------------------------------------------

    def append_event(
        self,
        kind_code: int,
        request_id: str,
        order: int,
        lamport: int,
        local_ts: float,
        true_ts: float,
        rpc_name: str,
        callpath: int,
        span_id: int,
        parent_span_id: Optional[int],
        provider_id: int,
        num_blocked: int,
        num_ready: int,
        num_running: int,
        cpu_util: float,
        memory_bytes: int,
        d0: float = 0.0,
        d1: float = 0.0,
        d2: float = 0.0,
        d3: float = 0.0,
        pvars: Optional[tuple] = None,
    ) -> None:
        """Record one event as flat scalars -- no dataclass, no dicts.

        ``d0..d3`` are the ``data`` values in ``TRACE_DATA_KEYS[kind]``
        order; ``pvars`` is the 9-tuple of t14 samples
        (``TRACE_PVAR_INT_KEYS`` then ``TRACE_PVAR_FLOAT_KEYS`` order)
        or ``None``.
        """
        ids = self._str_ids
        req = ids.get(request_id)
        if req is None:
            req = ids[request_id] = len(self._strings)
            self._strings.append(request_id)
        rpc = ids.get(rpc_name)
        if rpc is None:
            rpc = ids[rpc_name] = len(self._strings)
            self._strings.append(rpc_name)
        if pvars is None:
            pvrow = -1
        else:
            pvrow = self._n_pv
            self._n_pv = pvrow + 1
            self._pv_q.extend(pvars[:_N_PV_INT])
            self._pv_d.extend(pvars[_N_PV_INT:])
        self._kind.append(kind_code)
        self._callpath.append(callpath)
        self._q.extend(
            (
                req,
                rpc,
                order,
                lamport,
                span_id,
                -1 if parent_span_id is None else parent_span_id,
                provider_id,
                num_blocked,
                num_ready,
                num_running,
                memory_bytes,
                pvrow,
            )
        )
        self._d.extend((local_ts, true_ts, cpu_util, d0, d1, d2, d3))
        self._n += 1

    def append(self, event: TraceEvent) -> None:
        """Generic append of a pre-built event (cold path).

        The original object is kept as the materialized view for its
        row, so arbitrary ``data`` / ``pvars`` / ``sysstats`` payloads
        round-trip exactly; only the columns needed for ordering and
        grouping are populated.
        """
        mat = self.events  # materialize pending rows so the cache is aligned
        self.append_event(
            _KIND_CODE[event.kind],
            event.request_id,
            event.order,
            event.lamport,
            event.local_ts,
            event.true_ts,
            event.rpc_name,
            event.callpath,
            event.span_id,
            event.parent_span_id,
            event.provider_id,
            0,
            0,
            0,
            0.0,
            0,
        )
        mat.append(event)

    def annotate(self, time: float, kind: str, detail: tuple = ()) -> None:
        """Record one injected fault (duck-called by the injector, so
        the faults layer needs no import of this module)."""
        self.annotations.append(FaultAnnotation(time, kind, tuple(detail)))

    def record_retry(
        self,
        time: float,
        request_id: str,
        rpc_name: str,
        attempt: int,
        delay: float,
        target: str,
        kind: str,
    ) -> None:
        """Record one retry/timeout episode (instrumentation hook path)."""
        self.retries.append(
            RetryRecord(
                process=self.process,
                time=time,
                request_id=request_id,
                rpc_name=rpc_name,
                attempt=attempt,
                delay=delay,
                target=target,
                kind=kind,
            )
        )

    # -- reading (materialization) ---------------------------------------------

    def _materialize(self, i: int) -> TraceEvent:
        q = self._q
        d = self._d
        qb = i * _QSTRIDE
        db = i * _DSTRIDE
        code = self._kind[i]
        strings = self._strings
        parent = q[qb + _Q_PARENT]
        pvrow = q[qb + _Q_PVROW]
        pvars: dict[str, Any] = {}
        if pvrow >= 0:
            pq = pvrow * _N_PV_INT
            pd = pvrow * _N_PV_FLOAT
            pv_q = self._pv_q
            pv_d = self._pv_d
            for j, name in enumerate(TRACE_PVAR_INT_KEYS):
                pvars[name] = pv_q[pq + j]
            for j, name in enumerate(TRACE_PVAR_FLOAT_KEYS):
                pvars[name] = pv_d[pd + j]
        keys = TRACE_DATA_KEYS[code]
        data = {key: d[db + _D_DATA0 + j] for j, key in enumerate(keys)}
        return TraceEvent(
            kind=_KINDS[code],
            request_id=strings[q[qb + _Q_REQ]],
            order=q[qb + _Q_ORDER],
            lamport=q[qb + _Q_LAMPORT],
            process=self.process,
            local_ts=d[db + _D_LOCAL],
            true_ts=d[db + _D_TRUE],
            rpc_name=strings[q[qb + _Q_RPC]],
            callpath=self._callpath[i],
            span_id=q[qb + _Q_SPAN],
            parent_span_id=None if parent < 0 else parent,
            provider_id=q[qb + _Q_PROVIDER],
            data=data,
            pvars=pvars,
            sysstats={
                "num_blocked": q[qb + _Q_SS_BLOCKED],
                "num_ready": q[qb + _Q_SS_READY],
                "num_running": q[qb + _Q_SS_RUNNING],
                "cpu_util": d[db + _D_SS_CPU],
                "memory_bytes": q[qb + _Q_SS_MEM],
            },
        )

    @property
    def events(self) -> list[TraceEvent]:
        """Materialized event views, in append order.

        Rows are materialized once and cached, so repeated reads (and
        identity across exporters) are stable.
        """
        mat = self._mat
        n = self._n
        if len(mat) != n:
            materialize = self._materialize
            for i in range(len(mat), n):
                mat.append(materialize(i))
        return mat

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return self._n

    def by_request(self) -> dict[str, list[TraceEvent]]:
        """Events grouped by request id, each group in stable time
        order: sort key ``(true_ts, seq)`` where ``seq`` is the append
        sequence number, so same-timestamp events recorded by different
        collectors keep a deterministic relative order."""
        events = self.events
        d = self._d
        out: dict[str, list[TraceEvent]] = {}
        # sorted() is stable, so ties on true_ts keep append order.
        for i in sorted(range(self._n), key=lambda i: d[i * _DSTRIDE + _D_TRUE]):
            ev = events[i]
            group = out.get(ev.request_id)
            if group is None:
                out[ev.request_id] = [ev]
            else:
                group.append(ev)
        return out
