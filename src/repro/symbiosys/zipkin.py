"""Zipkin v2 JSON export of stitched traces (Figure 5's visualization).

"SYMBIOSYS enables this Gantt chart visualization through an adapter
module that stitches the events with a common requestID from different
processes into a Zipkin JSON trace file."  This is that adapter: the
output loads directly into OpenZipkin/Jaeger UI.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from .analysis.trace_summary import RequestTrace, Span

__all__ = ["span_to_zipkin", "request_to_zipkin", "to_zipkin_json"]

_US = 1e6  # Zipkin uses integer microseconds


def _trace_id(request_id: str) -> str:
    return hashlib.sha256(request_id.encode()).hexdigest()[:16]


def _span_id(span_id: int) -> str:
    return f"{span_id:016x}"


def span_to_zipkin(span: Span, trace_id: str) -> dict:
    """One Zipkin v2 span dict for a reconstructed RPC span."""
    if span.t1 is None:
        raise ValueError(f"span {span.span_id} has no origin-forward event")
    record = {
        "traceId": trace_id,
        "id": _span_id(span.span_id),
        "name": span.rpc_name,
        "kind": "CLIENT",
        "timestamp": int(span.t1 * _US),
        "localEndpoint": {"serviceName": span.origin_process},
        "tags": {"callpath": f"{span.callpath:#018x}"},
    }
    if span.parent_span_id is not None:
        record["parentId"] = _span_id(span.parent_span_id)
    if span.duration is not None:
        record["duration"] = max(1, int(span.duration * _US))
    if span.target_process:
        record["remoteEndpoint"] = {"serviceName": span.target_process}
    annotations = []
    if span.t5 is not None:
        annotations.append({"timestamp": int(span.t5 * _US), "value": "target ULT start (t5)"})
    if span.t8 is not None:
        annotations.append({"timestamp": int(span.t8 * _US), "value": "target respond (t8)"})
    # Injected faults attributed to this span's window show up as
    # timestamped annotations, so the Gantt chart explains its own
    # latency spikes.  (Fault times are true sim time; the span's
    # corrected timeline is close enough for display purposes.)
    for ann in span.faults:
        annotations.append(
            {"timestamp": int(ann.time * _US), "value": ann.describe()}
        )
    if span.faults:
        record["tags"]["faults"] = str(len(span.faults))
    if annotations:
        annotations.sort(key=lambda a: (a["timestamp"], a["value"]))
        record["annotations"] = annotations
    # Fuse sampled PVARs from the completion event into tags.
    for ev in span.events:
        for pname, pval in ev.pvars.items():
            record["tags"][f"pvar.{pname}"] = str(pval)
    return record


def request_to_zipkin(request: RequestTrace) -> list[dict]:
    trace_id = _trace_id(request.request_id)
    spans = []
    for root in request.roots:
        for span in root.walk():
            if span.t1 is not None:
                spans.append(span_to_zipkin(span, trace_id))
    spans.sort(key=lambda s: s["timestamp"])
    return spans


def to_zipkin_json(requests: Iterable[RequestTrace], indent: int = 2) -> str:
    """A Zipkin JSON document covering every given request."""
    all_spans: list[dict] = []
    for request in requests:
        all_spans.extend(request_to_zipkin(request))
    return json.dumps(all_spans, indent=indent)
