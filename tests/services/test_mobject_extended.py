"""Tests for the extended Mobject RADOS-subset ops (stat/delete/omap)."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.mobject import MobjectClient, MobjectProviderNode
from repro.sim import Simulator


def make_world():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    node = MobjectProviderNode(sim, fabric, "mobj0", "n0", n_handler_es=4)
    mi = MargoInstance(sim, fabric, "cli", "n0")
    client = MobjectClient(mi)
    return sim, node, mi, client


def run_gen(sim, mi, gen, limit=5.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def test_stat_reports_size_and_mtime():
    sim, node, mi, client = make_world()

    def flow():
        yield from client.write_op("mobj0", "obj", b"x" * 300)
        stat = yield from client.stat_op("mobj0", "obj")
        return stat

    size, mtime = run_gen(sim, mi, flow())
    assert size == 300
    assert 0 < mtime <= sim.now


def test_stat_missing_object():
    sim, node, mi, client = make_world()

    def flow():
        return (yield from client.stat_op("mobj0", "ghost"))

    assert run_gen(sim, mi, flow()) is None


def test_delete_removes_object_and_metadata():
    sim, node, mi, client = make_world()

    def flow():
        yield from client.write_op("mobj0", "victim", b"d" * 64)
        n = yield from client.delete_op("mobj0", "victim")
        gone = yield from client.read_op("mobj0", "victim")
        stat = yield from client.stat_op("mobj0", "victim")
        return n, gone, stat

    n, gone, stat = run_gen(sim, mi, flow())
    assert n == 1  # one extent removed
    assert gone is None
    assert stat is None
    # All sdskv metadata for the object is really gone.
    assert all(
        "victim" not in key
        for db in node.sdskv.databases
        for key in db._data
    )


def test_delete_missing_object():
    sim, node, mi, client = make_world()

    def flow():
        return (yield from client.delete_op("mobj0", "nope"))

    assert run_gen(sim, mi, flow()) is None


def test_delete_multi_extent_object():
    sim, node, mi, client = make_world()

    def flow():
        for i in range(3):
            yield from client.write_op("mobj0", "big", b"z" * 32, offset=i * 32)
        n = yield from client.delete_op("mobj0", "big")
        return n

    assert run_gen(sim, mi, flow()) == 3


def test_omap_get_keys():
    sim, node, mi, client = make_world()

    def flow():
        yield from client.write_op("mobj0", "o1", b"k" * 16)
        keys = yield from client.omap_get_keys("mobj0", "o1")
        return keys

    assert run_gen(sim, mi, flow()) == ["mtime"]


def test_omap_get_keys_empty_for_missing():
    sim, node, mi, client = make_world()

    def flow():
        return (yield from client.omap_get_keys("mobj0", "ghost"))

    assert run_gen(sim, mi, flow()) == []
