"""The analysis service's query operations.

Each operation is a pure function ``(store, params) -> result dict``
answering one cross-run question over a
:class:`~repro.store.PerfStore`:

``runs``
    Inventory of recorded runs.
``regression``
    Per-metric deltas between a base and a head run, each with a
    bootstrap confidence interval -- "did this PR slow anything down".
``trend``
    One metric's statistic across many runs, keyed by seed or by a run
    tag (scale, topology, ...) -- percentile trends vs. scale.
``knobs``
    Knob-importance table: for every config tag that varies across
    runs, how much the chosen metric moves between its values.
``detectors``
    Anomaly-detector event summaries per run.
``profile``
    Top callpath-profile rows of one archived run.
``breakdown``
    Per-operation latency decomposition of one run: mean seconds per
    wait-state category with bootstrap CIs (Fig 11-12's quantities).
``critical_path``
    Per-request critical paths of one run: the ordered wait-state
    segments of the slowest (or one named) request.
``blame``
    The cross-request interference matrix: who occupied the contended
    resource while each victim operation waited, summed overlap.
``bench_history``
    The dated bench trajectory of one suite out of the store.
``shards``
    Per-shard breakdown of one sharded run: final per-process shard
    counts, op/redirect/migration/byte totals from the ``shard_*``
    PVAR series, and the hottest shards from the monitor's per-shard
    ``shard_ops`` series.
``kernel``
    Parallel-kernel execution summary of one ``kind="parallel"`` run:
    window/boundary-event totals and per-round statistics from the
    kernel's self-observability series, per-LP event loads and
    imbalance, plus the recorded (non-deterministic) wall timing.

The three critical-path ops prefer the ``breakdowns`` table written at
record time and fall back to re-running the engine over the archived
trace events (pre-v2 stores), so they work on any store that has the
raw traces.

All floats in results pass through :func:`~repro.analysis.stats.round9`
and all iteration orders are sorted, so a serialized reply is
byte-stable for a given (store, query) pair.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .stats import (
    bootstrap_ci,
    bootstrap_delta_ci,
    mean,
    percentile,
    round9,
)

__all__ = ["QUERY_OPS", "run_query"]


def _stat_fn(name: str) -> Callable[[Sequence[float]], float]:
    if name == "mean":
        return mean
    if name.startswith("p"):
        try:
            q = float(name[1:])
        except ValueError:
            raise ValueError(f"unknown stat {name!r}") from None
        return lambda values: percentile(values, q)
    raise ValueError(f"unknown stat {name!r} (use 'mean' or 'pNN')")


def _boot_kwargs(params: dict) -> dict:
    return {
        "n_boot": int(params.get("boot", 200)),
        "seed": int(params.get("seed", 0)),
        "alpha": float(params.get("alpha", 0.05)),
    }


def q_runs(store, params: dict) -> dict:
    runs = store.runs(kind=params.get("kind"))
    return {"count": len(runs), "runs": runs}


def q_regression(store, params: dict) -> dict:
    """Per-metric base-vs-head deltas with bootstrap CIs.

    A metric is *flagged* when its CI excludes zero -- the planted-
    slowdown detection the store tests assert on.
    """
    base = store.resolve_run(params["base"])
    head = store.resolve_run(params["head"])
    stat_name = params.get("stat", "mean")
    stat = _stat_fn(stat_name)
    prefix = params.get("prefix")
    kw = _boot_kwargs(params)

    base_names = set(store.metric_names(base))
    head_names = set(store.metric_names(head))
    common = sorted(base_names & head_names)
    if prefix:
        common = [n for n in common if n.startswith(prefix)]

    rows = []
    for name in common:
        vb = store.metric_values(base, name)
        vh = store.metric_values(head, name)
        if not vb or not vh:
            continue
        sb, sh = stat(vb), stat(vh)
        delta = sh - sb
        lo, hi = bootstrap_delta_ci(vb, vh, stat, **kw)
        rows.append(
            {
                "metric": name,
                "base": round9(sb),
                "head": round9(sh),
                "delta": round9(delta),
                "rel_delta": round9(delta / sb) if sb else 0.0,
                "ci_lo": lo,
                "ci_hi": hi,
                "flagged": bool(lo > 0.0 or hi < 0.0),
            }
        )
    rows.sort(key=lambda r: (-abs(r["rel_delta"]), r["metric"]))
    limit = params.get("limit")
    if limit is not None:
        rows = rows[: int(limit)]
    return {
        "base_run": base,
        "head_run": head,
        "stat": stat_name,
        "metrics_compared": len(rows),
        "flagged": sum(1 for r in rows if r["flagged"]),
        "rows": rows,
    }


def q_trend(store, params: dict) -> dict:
    """One metric's statistic (with CI) across runs, keyed by seed or a
    run tag (``by="tag:<key>"``)."""
    metric = params["metric"]
    stat_name = params.get("stat", "p95")
    stat = _stat_fn(stat_name)
    by = params.get("by", "seed")
    kw = _boot_kwargs(params)

    points = []
    for run in store.runs(kind=params.get("kind")):
        values = store.metric_values(run["run_id"], metric)
        if not values:
            continue
        if by == "seed":
            x = run["seed"]
        elif by == "name":
            x = run["name"]
        elif by.startswith("tag:"):
            x = run["tags"].get(by[4:])
        else:
            raise ValueError(f"unknown 'by' key {by!r}")
        lo, hi = bootstrap_ci(values, stat, **kw)
        points.append(
            {
                "run_id": run["run_id"],
                "x": x,
                "value": round9(stat(values)),
                "ci_lo": lo,
                "ci_hi": hi,
                "n_samples": len(values),
            }
        )
    points.sort(key=lambda p: (str(p["x"]), p["run_id"]))
    return {"metric": metric, "stat": stat_name, "by": by, "points": points}


def q_knobs(store, params: dict) -> dict:
    """Knob-importance table: for every varying run tag/config key, the
    spread of the target metric's statistic across its values."""
    metric = params["metric"]
    stat = _stat_fn(params.get("stat", "mean"))

    # Gather (knobs, value) per run that has the metric.
    run_rows = []
    for run in store.runs(kind=params.get("kind")):
        values = store.metric_values(run["run_id"], metric)
        if not values:
            continue
        knobs = {**run["config"], **run["tags"]}
        run_rows.append((knobs, stat(values)))

    keys = sorted({k for knobs, _ in run_rows for k in knobs})
    rows = []
    for key in keys:
        groups: dict[str, list[float]] = {}
        for knobs, value in run_rows:
            if key in knobs:
                groups.setdefault(str(knobs[key]), []).append(value)
        if len(groups) < 2:
            continue  # a knob that never varies carries no signal
        group_means = {g: mean(vs) for g, vs in sorted(groups.items())}
        spread = max(group_means.values()) - min(group_means.values())
        base = min(group_means.values())
        rows.append(
            {
                "knob": key,
                "values": {g: round9(m) for g, m in group_means.items()},
                "spread": round9(spread),
                "rel_spread": round9(spread / base) if base else 0.0,
                "n_runs": sum(len(vs) for vs in groups.values()),
            }
        )
    rows.sort(key=lambda r: (-r["spread"], r["knob"]))
    return {"metric": metric, "rows": rows}


def q_detectors(store, params: dict) -> dict:
    """Detector-event summaries: per run (or one run), counts plus
    first/last firing per detector."""
    if "run" in params:
        runs = [store.run(params["run"])]
    else:
        runs = store.runs(kind=params.get("kind"))
    out = []
    for run in runs:
        findings = store.findings(run["run_id"])
        per: dict[str, dict] = {}
        for f in findings:
            d = per.setdefault(
                f["detector"],
                {
                    "count": 0,
                    "first": f["time"],
                    "last": f["time"],
                    "processes": set(),
                },
            )
            d["count"] += 1
            d["first"] = min(d["first"], f["time"])
            d["last"] = max(d["last"], f["time"])
            d["processes"].add(f["process"])
        out.append(
            {
                "run_id": run["run_id"],
                "name": run["name"],
                "total": len(findings),
                "detectors": {
                    name: {
                        "count": d["count"],
                        "first": round9(d["first"]),
                        "last": round9(d["last"]),
                        "processes": sorted(d["processes"]),
                    }
                    for name, d in sorted(per.items())
                },
            }
        )
    return {"runs": out}


def q_profile(store, params: dict) -> dict:
    """Top callpath-profile rows of one run by cumulative time."""
    run = store.resolve_run(params["run"])
    side = params.get("side", "origin")
    interval = params.get("interval")
    top = int(params.get("top", 10))
    rows = store.profile_rows(run, side)
    if interval:
        rows = [r for r in rows if r["interval"] == interval]
    rows.sort(
        key=lambda r: (-r["total"], r["callpath"], r["interval"])
    )
    return {
        "run_id": run,
        "side": side,
        "rows": [
            {
                "callpath": f"{r['callpath']:#018x}",
                "callpath_name": r["callpath_name"],
                "origin": r["origin"],
                "target": r["target"],
                "interval": r["interval"],
                "count": r["count"],
                "total": round9(r["total"]),
                "mean": round9(r["total"] / r["count"]) if r["count"] else 0.0,
            }
            for r in rows[:top]
        ],
    }


def _breakdown_dicts(store, run_id: int) -> list[dict]:
    """The run's per-request breakdowns as plain dicts: the stored rows
    when the run was recorded under schema v2, else recomputed from the
    archived trace events through the critical-path engine (identical
    shape -- the writer serializes the same fields)."""
    rows = store.breakdown_rows(run_id)
    if rows:
        return rows
    if not store.trace_event_rows(run_id):
        return []
    from ..store.archive import ArchivedRun
    from ..symbiosys.critical import analyze_run

    report = analyze_run(ArchivedRun(store, run_id))
    return [
        {
            "request_id": bd.request_id,
            "span_id": bd.span_id,
            "rpc_name": bd.rpc_name,
            "origin": bd.origin,
            "target": bd.target,
            "start_ps": bd.start_ps,
            "total_ps": bd.total_ps,
            "start_true": bd.start_true,
            "end_true": bd.end_true,
            "n_faults": bd.n_faults,
            "categories": dict(bd.categories),
            "segments": [list(seg) for seg in bd.segments],
            "blame": [[b.category, b.occupant, b.overlap_ps]
                      for b in bd.blame],
        }
        for bd in report.breakdowns
    ]


def _retry_by_op(store, run_id: int) -> dict:
    """Aggregate retry/timeout counts and backoff seconds per RPC."""
    out: dict[str, dict] = {}
    for rec in store.retry_records(run_id):
        d = out.setdefault(
            rec["rpc_name"], {"retries": 0, "timeouts": 0, "backoff_s": 0.0}
        )
        if rec["kind"] == "retry":
            d["retries"] += 1
            d["backoff_s"] += rec["delay"]
        else:
            d["timeouts"] += 1
    return {
        op: {**d, "backoff_s": round9(d["backoff_s"])}
        for op, d in sorted(out.items())
    }


def q_breakdown(store, params: dict) -> dict:
    """Per-operation wait-state decomposition with bootstrap CIs.

    For every RPC name: the mean end-to-end latency and, per category,
    the mean seconds spent there (CI over the per-request values) and
    that category's share of the operation's total -- the machine-
    readable form of the paper's Fig 11/12 stacked bars.
    """
    from ..symbiosys.critical import CATEGORIES

    run = store.resolve_run(params["run"])
    kw = _boot_kwargs(params)
    rows = _breakdown_dicts(store, run)

    by_op: dict[str, list[dict]] = {}
    for r in rows:
        by_op.setdefault(r["rpc_name"], []).append(r)

    operations = []
    for op in sorted(by_op):
        group = by_op[op]
        totals = [r["total_ps"] / 1e12 for r in group]
        lo, hi = bootstrap_ci(totals, mean, **kw)
        op_total_ps = sum(r["total_ps"] for r in group)
        categories = {}
        for cat in CATEGORIES:
            values = [r["categories"].get(cat, 0) / 1e12 for r in group]
            cat_ps = sum(r["categories"].get(cat, 0) for r in group)
            if cat_ps == 0 and not any(values):
                continue
            clo, chi = bootstrap_ci(values, mean, **kw)
            categories[cat] = {
                "mean_s": round9(mean(values)),
                "ci_lo": clo,
                "ci_hi": chi,
                "share": round9(cat_ps / op_total_ps)
                if op_total_ps else 0.0,
            }
        operations.append(
            {
                "rpc": op,
                "count": len(group),
                "total_mean_s": round9(mean(totals)),
                "ci_lo": lo,
                "ci_hi": hi,
                "categories": categories,
            }
        )

    category_totals = {}
    for cat in CATEGORIES:
        ps = sum(r["categories"].get(cat, 0) for r in rows)
        if ps:
            category_totals[cat] = round9(ps / 1e12)
    return {
        "run_id": run,
        "n_requests": len(rows),
        "operations": operations,
        "category_totals": category_totals,
        "retry_by_op": _retry_by_op(store, run),
    }


def q_critical_path(store, params: dict) -> dict:
    """Per-request critical paths: ordered wait-state segments of the
    slowest ``top`` requests (or of one ``request`` by id)."""
    run = store.resolve_run(params["run"])
    request = params.get("request")
    top = int(params.get("top", 10))
    rows = _breakdown_dicts(store, run)
    if request is not None:
        rows = [r for r in rows if r["request_id"] == request]
    rows.sort(key=lambda r: (-r["total_ps"], r["request_id"], r["span_id"]))
    return {
        "run_id": run,
        "n_requests": len(rows),
        "requests": [
            {
                "request_id": r["request_id"],
                "rpc": r["rpc_name"],
                "span_id": r["span_id"],
                "origin": r["origin"],
                "target": r["target"],
                "total_s": round9(r["total_ps"] / 1e12),
                "n_faults": r["n_faults"],
                "segments": [
                    {
                        "category": cat,
                        "start_s": round9(start / 1e12),
                        "duration_s": round9(dur / 1e12),
                    }
                    for cat, start, dur in r["segments"]
                ],
            }
            for r in rows[:top]
        ],
    }


def q_blame(store, params: dict) -> dict:
    """The cross-request interference matrix: for each victim RPC, who
    occupied the contended resource while it waited, with the summed
    overlap split by wait-state category."""
    run = store.resolve_run(params["run"])
    rows = _breakdown_dicts(store, run)

    cells: dict[tuple[str, str], dict] = {}
    for r in rows:
        for cat, occupant, overlap_ps in r["blame"]:
            cell = cells.setdefault(
                (r["rpc_name"], occupant), {"overlap_ps": 0, "categories": {}}
            )
            cell["overlap_ps"] += overlap_ps
            cell["categories"][cat] = (
                cell["categories"].get(cat, 0) + overlap_ps
            )
    matrix = [
        {
            "victim": victim,
            "occupant": occupant,
            "overlap_s": round9(cell["overlap_ps"] / 1e12),
            "categories": {
                cat: round9(ps / 1e12)
                for cat, ps in sorted(cell["categories"].items())
            },
        }
        for (victim, occupant), cell in sorted(
            cells.items(),
            key=lambda kv: (-kv[1]["overlap_ps"], kv[0]),
        )
    ]
    limit = params.get("limit")
    if limit is not None:
        matrix = matrix[: int(limit)]
    return {"run_id": run, "n_requests": len(rows), "matrix": matrix}


def _parse_labels(text: str) -> dict:
    """Invert :func:`repro.store.writer.labels_to_text`."""
    if not text:
        return {}
    return dict(pair.split("=", 1) for pair in text.split("|"))


#: The per-process shard PVAR series a sharded run records, mapped to
#: their row field names (final sample value wins; counters are
#: cumulative, so last == total).
_SHARD_PVARS = {
    "pvar_shard_num_owned": "shards_owned",
    "pvar_ssg_view_epoch": "view_epoch",
    "pvar_shard_ops_total": "ops",
    "pvar_shard_redirects_total": "redirects",
    "pvar_shard_migrations_in": "migrations_in",
    "pvar_shard_migrations_out": "migrations_out",
    "pvar_shard_migration_bytes_in": "bytes_in",
    "pvar_shard_migration_bytes_out": "bytes_out",
}


def q_shards(store, params: dict) -> dict:
    """Per-shard breakdown of one sharded run.

    Reads the shard PVAR series (``pvar_shard_*``, ``pvar_ssg_*``) the
    monitor sampled per process and the per-shard ``shard_ops`` series
    the hot-spot detector records, and reduces both to final values:
    one row per server process, one row per (shard, process) pair, and
    run-wide totals.  ``top`` caps the per-shard rows to the hottest N.
    """
    run = store.run(params["run"])
    run_id = run["run_id"]
    per_process: dict[str, dict] = {}
    shard_rows = []
    for name, labels_text in store.series_keys(run_id):
        labels = _parse_labels(labels_text)
        if name in _SHARD_PVARS:
            samples = store.samples(run_id, name, labels_text)
            if not samples:
                continue
            row = per_process.setdefault(labels.get("process", ""), {})
            row[_SHARD_PVARS[name]] = round9(samples[-1][1])
        elif name == "shard_ops":
            samples = store.samples(run_id, name, labels_text)
            if not samples:
                continue
            shard_rows.append(
                {
                    "shard": int(labels["shard"]),
                    "process": labels.get("process", ""),
                    "ops": round9(samples[-1][1]),
                }
            )
    processes = [
        dict(sorted(row.items()), process=addr)
        for addr, row in sorted(per_process.items())
    ]
    shard_rows.sort(key=lambda r: (-r["ops"], r["shard"], r["process"]))
    top = params.get("top")
    if top is not None:
        shard_rows = shard_rows[: int(top)]
    totals = {
        "ops": round9(sum(r.get("ops", 0.0) for r in processes)),
        "redirects": round9(sum(r.get("redirects", 0.0) for r in processes)),
        "migrations": round9(
            sum(r.get("migrations_in", 0.0) for r in processes)
        ),
        "migrated_bytes": round9(
            sum(r.get("bytes_in", 0.0) for r in processes)
        ),
    }
    return {
        "run_id": run_id,
        "name": run["name"],
        "processes": processes,
        "shards": shard_rows,
        "totals": totals,
    }


def q_kernel(store, params: dict) -> dict:
    """Parallel-kernel execution summary of one ``kind="parallel"`` run.

    Reduces the kernel's per-round self-observability series
    (``kernel_boundary_events``, ``kernel_lp_imbalance``, and the
    per-LP ``kernel_window_events``) recorded by
    :func:`~repro.store.record_parallel_run`: how many windows ran, how
    much crossed LP boundaries, and how evenly the work spread.  The
    ``timing`` block is the run's recorded wall-clock measurement --
    real, machine-dependent, and deliberately outside every
    deterministic surface.
    """
    run = store.run(params["run"])
    if run["kind"] != "parallel":
        raise ValueError(
            f"run {run['run_id']} has kind {run['kind']!r}, not 'parallel'"
        )
    run_id = run["run_id"]
    config = run["config"]
    extra = run.get("extra") or {}

    boundary = store.samples(run_id, "kernel_boundary_events")
    imbalance = store.samples(run_id, "kernel_lp_imbalance")
    lps = []
    for name, labels_text in store.series_keys(run_id):
        if name != "kernel_window_events":
            continue
        samples = store.samples(run_id, name, labels_text)
        values = [v for _, v in samples]
        lps.append(
            {
                "lp": _parse_labels(labels_text).get("lp", ""),
                "events": round9(sum(values)),
                "peak_window": round9(max(values, default=0.0)),
            }
        )
    lps.sort(key=lambda r: r["lp"])

    boundary_values = [v for _, v in boundary]
    imbalance_values = [v for _, v in imbalance]
    timing = extra.get("timing", {})
    return {
        "run_id": run_id,
        "name": run["name"],
        "plan": config.get("plan"),
        "n_lps": config.get("n_lps"),
        "workers_requested": config.get("workers_requested"),
        "workers_used": config.get("workers_used"),
        "lookahead": round9(config.get("lookahead", 0.0)),
        "windows": len(boundary),
        "boundary_events": {
            "total": round9(sum(boundary_values)),
            "per_window_mean": round9(mean(boundary_values))
            if boundary_values else 0.0,
            "per_window_max": round9(max(boundary_values, default=0.0)),
        },
        "imbalance": {
            "mean": round9(mean(imbalance_values))
            if imbalance_values else 0.0,
            "max": round9(max(imbalance_values, default=0.0)),
        },
        "lps": lps,
        "timing": {
            "wall_time": round9(timing.get("wall_time", 0.0)),
            "barrier_wait_frac": round9(
                timing.get("barrier_wait_frac", 0.0)
            ),
            "workers_used": timing.get("workers_used"),
        },
    }


def q_bench_history(store, params: dict) -> dict:
    suite = params["suite"]
    return {"suite": suite, "history": store.bench_history(suite)}


QUERY_OPS: dict[str, Callable] = {
    "runs": q_runs,
    "regression": q_regression,
    "trend": q_trend,
    "knobs": q_knobs,
    "detectors": q_detectors,
    "profile": q_profile,
    "breakdown": q_breakdown,
    "critical_path": q_critical_path,
    "blame": q_blame,
    "bench_history": q_bench_history,
    "shards": q_shards,
    "kernel": q_kernel,
}


def run_query(store, op: str, params: dict) -> dict:
    fn = QUERY_OPS.get(op)
    if fn is None:
        raise ValueError(
            f"unknown op {op!r} (available: {', '.join(sorted(QUERY_OPS))})"
        )
    return fn(store, params)
