"""Chrome trace-event (Perfetto) timeline export.

Renders one run as a JSON object loadable by ``ui.perfetto.dev`` or
``chrome://tracing`` (the legacy Trace Event Format, which Perfetto
ingests natively):

* **ULT scheduler slices** from the online monitor's
  :class:`~repro.symbiosys.monitor.SchedRecorder`: every run slice is a
  complete (``"X"``) event on its execution stream's track, and every
  blocked interval is an async (``"b"``/``"e"``) span, so handler-pool
  queueing and progress-ULT starvation are visible at ULT granularity.
* **RPC stage spans** from the SYMBIOSYS trace events: the origin
  [t1, t14] interval and the target [t5, t8] interval of every RPC as
  async spans keyed by span id -- async events may overlap freely, which
  pipelined RPCs do.
* **Flow events** linking each client forward span (t1) to its server
  handler span (t5), so request causality renders as arrows instead of
  disconnected tracks.
* **Fault instant events** from the fault injector, overlaid on a
  dedicated pseudo-process so latency spikes line up with their cause.
* **Critical-path lane** (optional): pass a
  :class:`~repro.symbiosys.critical.CriticalReport` and every decomposed
  request renders its wait-state segments as async spans on a dedicated
  pseudo-process.  The lane lives on the *corrected* reference timeline
  (integer-picosecond boundaries), so segment sums match the breakdown
  exactly; other tracks use raw simulated time.

Processes map to trace ``pid`` s (sorted order), execution streams to
``tid`` s.  All identifiers are run-scoped and deterministic: same-seed
runs produce byte-identical JSON.  Timestamps are simulated time in
microseconds (the unit the format mandates).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional

from .tracing import EventKind, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from .collector import SymbiosysCollector
    from .monitor import Monitor

__all__ = ["to_chrome_trace", "chrome_trace_json", "write_chrome_trace"]

#: The ``tid`` async/metadata events sit on within their process.
_META_TID = 0


def _us(t: float) -> float:
    return round(t * 1e6, 6)


def to_chrome_trace(
    *,
    monitor: Optional["Monitor"] = None,
    collector: Optional["SymbiosysCollector"] = None,
    fault_events: Iterable[tuple] = (),
    critical=None,
    migrations: Iterable = (),
) -> dict:
    """Build the trace-event dict (``{"traceEvents": [...], ...}``).

    Any combination of sources may be given; each contributes its own
    event families.  ``fault_events`` takes the injector's event-trace
    tuples (``(time, kind, *detail)``; see ``Cluster.fault_events()``);
    ``critical`` takes a :class:`~repro.symbiosys.critical.CriticalReport`
    and adds the per-request critical-path lane; ``migrations`` takes
    :class:`~repro.shard.migration.MigrationRecord` s and renders each
    shard move as an async span on a dedicated lane.
    """
    sched_slices = monitor.sched.slices if monitor is not None else []
    trace_events: list[TraceEvent] = (
        collector.all_events() if collector is not None else []
    )
    fault_events = list(fault_events)

    processes = sorted(
        {s.process for s in sched_slices} | {ev.process for ev in trace_events}
    )
    pid_of = {name: i + 1 for i, name in enumerate(processes)}
    faults_pid = len(processes) + 1

    es_names: dict[str, set] = {p: set() for p in processes}
    for s in sched_slices:
        es_names[s.process].add(s.es)
    tid_of: dict[tuple[str, str], int] = {}
    for p in processes:
        for i, es in enumerate(sorted(es_names[p]), start=1):
            tid_of[(p, es)] = i

    events: list[dict] = []

    # -- track metadata ----------------------------------------------------
    for p in processes:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_of[p],
            "tid": _META_TID, "args": {"name": p},
        })
        for es in sorted(es_names[p]):
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid_of[p],
                "tid": tid_of[(p, es)], "args": {"name": es},
            })
    if fault_events:
        events.append({
            "ph": "M", "name": "process_name", "pid": faults_pid,
            "tid": _META_TID, "args": {"name": "fault injector"},
        })

    # -- ULT scheduler slices ----------------------------------------------
    block_seq = 0
    for s in sched_slices:
        pid = pid_of[s.process]
        if s.kind == "run":
            events.append({
                "ph": "X", "name": s.ult, "cat": "ult",
                "pid": pid, "tid": tid_of[(s.process, s.es)],
                "ts": _us(s.start), "dur": _us(s.end - s.start),
                "args": {"reason": s.reason},
            })
        else:  # block interval: async span (blocked ULTs overlap freely)
            block_seq += 1
            bid = f"blk{block_seq}"
            common = {
                "name": s.ult, "cat": "ult_block", "pid": pid,
                "tid": _META_TID, "id": bid,
            }
            events.append({**common, "ph": "b", "ts": _us(s.start)})
            events.append({**common, "ph": "e", "ts": _us(s.end)})

    # -- RPC stage spans (t1..t14 origin, t5..t8 target) -------------------
    by_span: dict[int, dict[EventKind, TraceEvent]] = {}
    for ev in trace_events:
        by_span.setdefault(ev.span_id, {})[ev.kind] = ev
    for span_id in sorted(by_span):
        kinds = by_span[span_id]
        t1 = kinds.get(EventKind.ORIGIN_FORWARD)
        t14 = kinds.get(EventKind.ORIGIN_COMPLETE)
        if t1 is not None and t14 is not None:
            common = {
                "name": t1.rpc_name, "cat": "rpc", "pid": pid_of[t1.process],
                "tid": _META_TID, "id": f"s{span_id}",
            }
            events.append({
                **common, "ph": "b", "ts": _us(t1.true_ts),
                "args": {
                    "request_id": t1.request_id,
                    "callpath": t1.callpath,
                    "span_id": span_id,
                    "parent_span_id": t1.parent_span_id,
                },
            })
            events.append({**common, "ph": "e", "ts": _us(t14.true_ts)})
        t5 = kinds.get(EventKind.TARGET_ULT_START)
        t8 = kinds.get(EventKind.TARGET_RESPOND)
        if t1 is not None and t5 is not None:
            # Flow arrow: client forward (t1) -> server handler (t5).
            fcommon = {
                "name": t1.rpc_name, "cat": "rpc_flow", "id": f"f{span_id}"
            }
            events.append({
                **fcommon, "ph": "s", "pid": pid_of[t1.process],
                "tid": _META_TID, "ts": _us(t1.true_ts),
            })
            events.append({
                **fcommon, "ph": "f", "bp": "e", "pid": pid_of[t5.process],
                "tid": _META_TID, "ts": _us(t5.true_ts),
            })
        if t5 is not None and t8 is not None:
            common = {
                "name": f"{t5.rpc_name} [target]", "cat": "rpc",
                "pid": pid_of[t5.process], "tid": _META_TID,
                "id": f"s{span_id}t",
            }
            events.append({
                **common, "ph": "b", "ts": _us(t5.true_ts),
                "args": {"request_id": t5.request_id, "span_id": span_id},
            })
            events.append({**common, "ph": "e", "ts": _us(t8.true_ts)})

    # -- critical-path lane ------------------------------------------------
    if critical is not None:
        crit_pid = len(processes) + 2
        events.append({
            "ph": "M", "name": "process_name", "pid": crit_pid,
            "tid": _META_TID, "args": {"name": "critical path"},
        })
        for bd in critical.breakdowns:
            for j, (category, seg_start, dur) in enumerate(bd.segments):
                common = {
                    "name": category, "cat": "critical", "pid": crit_pid,
                    "tid": _META_TID, "id": f"cp{bd.span_id}.{j}",
                }
                events.append({
                    **common, "ph": "b",
                    "ts": round(seg_start / 1e6, 6),
                    "args": {
                        "request_id": bd.request_id,
                        "rpc": bd.rpc_name,
                        "span_id": bd.span_id,
                        "duration_ps": dur,
                    },
                })
                events.append({
                    **common, "ph": "e",
                    "ts": round((seg_start + dur) / 1e6, 6),
                })

    # -- shard-migration lane ----------------------------------------------
    migrations = list(migrations)
    if migrations:
        mig_pid = len(processes) + 3
        events.append({
            "ph": "M", "name": "process_name", "pid": mig_pid,
            "tid": _META_TID, "args": {"name": "shard migrations"},
        })
        for i, rec in enumerate(migrations):
            end = rec.end if rec.end is not None else rec.start
            common = {
                "name": f"{rec.kind} shard {rec.shard}",
                "cat": "migration", "pid": mig_pid,
                "tid": _META_TID, "id": f"mig{i}",
            }
            events.append({
                **common, "ph": "b", "ts": _us(rec.start),
                "args": {
                    "shard": rec.shard,
                    "src": rec.src,
                    "dst": rec.dst,
                    "kind": rec.kind,
                    "epoch": rec.epoch,
                    "n_keys": rec.n_keys,
                    "nbytes": rec.nbytes,
                    "ok": rec.ok,
                },
            })
            events.append({**common, "ph": "e", "ts": _us(end)})

    # -- fault instant events ----------------------------------------------
    for fe in fault_events:
        t, kind, *detail = fe
        events.append({
            "ph": "i", "s": "g", "name": f"fault:{kind}",
            "cat": "fault", "pid": faults_pid, "tid": _META_TID,
            "ts": _us(t),
            "args": {"detail": " ".join(str(d) for d in detail)},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.symbiosys.perfetto"},
    }


def chrome_trace_json(**kwargs) -> str:
    """:func:`to_chrome_trace` serialized deterministically."""
    return json.dumps(to_chrome_trace(**kwargs), sort_keys=True)


def write_chrome_trace(path, **kwargs) -> None:
    with open(path, "w", newline="\n") as f:
        f.write(chrome_trace_json(**kwargs))
