"""Tests for the GekkoFS distributed filesystem."""

import pytest

from repro.margo import MargoInstance
from repro.net import Fabric, FabricConfig
from repro.services.gekkofs import (
    GekkoFSClient,
    GekkoFSCluster,
    GekkoFSError,
)
from repro.sim import RngRegistry, Simulator
from repro.symbiosys import Stage, SymbiosysCollector


def make_fs(n_daemons=3, chunk_size=1024, stage=None):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(stage) if stage is not None else None
    cluster = GekkoFSCluster.deploy(
        sim,
        fabric,
        n_daemons=n_daemons,
        instrumentation_factory=(
            collector.create_instrumentation if collector else None
        ),
    )
    mi = MargoInstance(
        sim, fabric, "app", "cnode",
        instrumentation=collector.create_instrumentation() if collector else None,
    )
    client = GekkoFSClient(mi, cluster, chunk_size=chunk_size)
    return sim, cluster, mi, client, collector


def run_gen(sim, mi, gen, limit=10.0):
    out = {}

    def body():
        out["result"] = yield from gen

    mi.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=limit)
    return out["result"]


def test_create_stat_roundtrip():
    sim, cluster, mi, client, _ = make_fs()

    def flow():
        yield from client.create("/data/file1", mode=0o600)
        return (yield from client.stat("/data/file1"))

    st = run_gen(sim, mi, flow())
    assert st["size"] == 0
    assert st["mode"] == 0o600


def test_create_existing_raises():
    sim, cluster, mi, client, _ = make_fs()

    def flow():
        yield from client.create("/f")
        try:
            yield from client.create("/f")
        except GekkoFSError as exc:
            return str(exc)

    assert "EEXIST" in run_gen(sim, mi, flow())


def test_stat_missing_raises():
    sim, cluster, mi, client, _ = make_fs()

    def flow():
        try:
            yield from client.stat("/ghost")
        except GekkoFSError as exc:
            return str(exc)

    assert "ENOENT" in run_gen(sim, mi, flow())


def test_write_read_roundtrip_multichunk():
    sim, cluster, mi, client, _ = make_fs(chunk_size=1024)
    data = RngRegistry(3).stream("fs").integers(
        0, 256, size=5000, dtype="uint8"
    ).tobytes()

    def flow():
        yield from client.create("/big")
        n = yield from client.write("/big", 0, data)
        got = yield from client.read("/big", 0, len(data))
        st = yield from client.stat("/big")
        return n, got, st

    n, got, st = run_gen(sim, mi, flow())
    assert n == 5000
    assert got == data
    assert st["size"] == 5000
    # 5000 bytes / 1024 chunk size => 5 chunks, striped over daemons.
    assert cluster.total_chunks == 5


def test_chunks_stripe_across_daemons():
    sim, cluster, mi, client, _ = make_fs(n_daemons=4, chunk_size=512)

    def flow():
        yield from client.create("/striped")
        yield from client.write("/striped", 0, b"s" * 8192)

    run_gen(sim, mi, flow())
    holders = [d for d in cluster.daemons if d.chunks]
    assert len(holders) >= 3  # 16 chunks over 4 daemons


def test_partial_and_offset_reads():
    sim, cluster, mi, client, _ = make_fs(chunk_size=100)
    payload = bytes(range(250))

    def flow():
        yield from client.create("/p")
        yield from client.write("/p", 0, payload)
        middle = yield from client.read("/p", 50, 120)
        tail = yield from client.read("/p", 200, 999)
        empty = yield from client.read("/p", 250, 10)
        return middle, tail, empty

    middle, tail, empty = run_gen(sim, mi, flow())
    assert middle == payload[50:170]
    assert tail == payload[200:250]
    assert empty == b""


def test_sparse_write_with_offset():
    sim, cluster, mi, client, _ = make_fs(chunk_size=64)

    def flow():
        yield from client.create("/sparse")
        yield from client.write("/sparse", 100, b"XY")
        st = yield from client.stat("/sparse")
        got = yield from client.read("/sparse", 100, 2)
        return st, got

    st, got = run_gen(sim, mi, flow())
    assert st["size"] == 102
    assert got == b"XY"


def test_overwrite_within_chunk():
    sim, cluster, mi, client, _ = make_fs(chunk_size=64)

    def flow():
        yield from client.create("/ow")
        yield from client.write("/ow", 0, b"a" * 32)
        yield from client.write("/ow", 8, b"B" * 4)
        return (yield from client.read("/ow", 0, 32))

    got = run_gen(sim, mi, flow())
    assert got == b"a" * 8 + b"B" * 4 + b"a" * 20


def test_unlink_removes_metadata_and_chunks():
    sim, cluster, mi, client, _ = make_fs(chunk_size=128)

    def flow():
        yield from client.create("/gone")
        yield from client.write("/gone", 0, b"g" * 600)
        yield from client.unlink("/gone")
        try:
            yield from client.stat("/gone")
        except GekkoFSError:
            return True

    assert run_gen(sim, mi, flow()) is True
    assert cluster.total_chunks == 0


def test_readdir_broadcasts_across_daemons():
    sim, cluster, mi, client, _ = make_fs(n_daemons=4)

    def flow():
        for name in ("/d/a", "/d/b", "/d/c", "/other/x"):
            yield from client.create(name)
        under_d = yield from client.readdir("/d/")
        everything = yield from client.readdir("/")
        return under_d, everything

    under_d, everything = run_gen(sim, mi, flow())
    assert under_d == ["/d/a", "/d/b", "/d/c"]
    assert everything == ["/d/a", "/d/b", "/d/c", "/other/x"]
    # Metadata really is distributed (no central server).
    md_holders = [d for d in cluster.daemons if d.metadata]
    assert len(md_holders) >= 2


def test_symbiosys_profiles_gekkofs_callpaths():
    """SYMBIOSYS is service-agnostic: GekkoFS callpaths appear in the
    profile summary with decoded names."""
    from repro.symbiosys.analysis import profile_summary

    sim, cluster, mi, client, collector = make_fs(stage=Stage.FULL,
                                                  chunk_size=512)

    def flow():
        yield from client.create("/traced")
        yield from client.write("/traced", 0, b"t" * 2048)
        yield from client.read("/traced", 0, 2048)

    run_gen(sim, mi, flow())
    summary = profile_summary(collector)
    names = {row.name for row in summary.rows}
    assert "gkfs_write_chunk_rpc" in names
    assert "gkfs_read_chunk_rpc" in names
    assert "gkfs_stat_rpc" in names
    write_row = summary.row_for("gkfs_write_chunk_rpc")
    assert write_row.call_count == 4  # 2048 / 512


def test_client_validates_args():
    sim, cluster, mi, client, _ = make_fs()
    with pytest.raises(ValueError):
        GekkoFSClient(mi, cluster, chunk_size=0)

    def flow():
        yield from client.create("/v")
        yield from client.write("/v", -1, b"x")

    mi.client_ult(flow())
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_deploy_validation():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    with pytest.raises(ValueError):
        GekkoFSCluster.deploy(sim, fabric, n_daemons=0)
