"""Online monitoring: the always-on half of SYMBIOSYS.

The paper's workflow is post-mortem (profiles and traces consolidate
after the run); this module watches the run *while it unfolds*.  A
:class:`Monitor` attaches to the same seams the instrumentation layer
uses and drives a sim-clock-periodic :class:`PeriodicSampler` that
snapshots, per process:

* every NO_OBJECT Mercury PVAR (Table I classes, resilience gauges
  included),
* Argobots pool depths, blocked/ready/running ULT counts, and the
  execution-stream busy fraction,
* process memory and fabric-wide in-flight bytes,

into :class:`~repro.symbiosys.metrics.MetricsRegistry` metrics and
bounded ring-buffer time-series.  A :class:`SchedRecorder` hooks the
Argobots execution streams and records every ULT run slice (and the
block interval between slices) for the Perfetto timeline, and pluggable
:class:`AnomalyDetector` s evaluate each snapshot and emit timestamped
:class:`Finding` s during the run.

Everything here is deterministic: sampling ticks ride the simulator's
event queue (so they interleave identically for identical seeds), no
wall clock is ever read, and nothing exported contains process-global
counter artifacts (ULT ids, HG cookies).  Sampler callbacks are pure
observers -- they read simulator state but add no simulated cost, so the
simulated makespan of a monitored run equals the unmonitored one.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..config import Replaceable
from ..mercury.pvar import PvarBinding, PvarClass, PvarDef, PvarRegistry
from .metrics import MetricsRegistry, SeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from ..argobots import ULT
    from ..argobots.xstream import ExecutionStream
    from ..margo import MargoInstance
    from ..net import Fabric
    from ..sim import Simulator

__all__ = [
    "AnomalyDetector",
    "Finding",
    "ForwardTimeoutBurstDetector",
    "Monitor",
    "MonitorConfig",
    "PeriodicSampler",
    "ProgressStarvationDetector",
    "QueueDepthWatermarkDetector",
    "SchedRecorder",
    "SchedSlice",
]


@dataclass(frozen=True, kw_only=True)
class MonitorConfig(Replaceable):
    """Configuration of one :class:`Monitor`.

    ``detectors`` selects the built-in anomaly detectors by name;
    ``detector_factories`` appends arbitrary extra detectors (each
    factory is called with this config and must return an
    :class:`AnomalyDetector`).
    """

    #: Sampling period on the *simulated* clock, seconds.
    interval: float = 100e-6
    #: Ring-buffer capacity of each metric time-series.
    ring_capacity: int = 4096
    #: Cap on recorded scheduler slices (run + block), monitor-wide.
    sched_slice_capacity: int = 65536
    #: Progress-ULT starvation: a process with completion-queue backlog
    #: but no progress-loop iteration for this long is starved.
    starvation_threshold: float = 0.5e-3
    #: Handler-pool queue depth that trips the watermark detector.
    queue_watermark: int = 8
    #: Forward-timeout burst: this many timeouts ...
    timeout_burst_count: int = 3
    #: ... within this window, seconds.
    timeout_burst_window: float = 1e-3
    #: Built-in detectors to arm.
    detectors: tuple[str, ...] = ("starvation", "queue_depth", "timeout_burst")
    #: Extra detector factories: ``factory(config) -> AnomalyDetector``.
    detector_factories: tuple[Callable, ...] = ()

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("monitor interval must be positive")
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be positive")
        if self.sched_slice_capacity < 1:
            raise ValueError("sched_slice_capacity must be positive")
        unknown = set(self.detectors) - set(_BUILTIN_DETECTORS)
        if unknown:
            raise ValueError(f"unknown detectors: {sorted(unknown)}")


@dataclass(frozen=True)
class Finding:
    """One anomaly observed during the run."""

    time: float
    detector: str
    process: str
    message: str
    value: float = 0.0
    #: Dominant wait-state category near the finding, filled in by
    #: :func:`repro.symbiosys.critical.annotate_findings` ("" until then).
    wait_state: str = ""

    def as_row(self) -> dict:
        row = {
            "time": f"{self.time * 1e3:.6f}ms",
            "detector": self.detector,
            "process": self.process,
            "finding": self.message,
        }
        if self.wait_state:
            row["wait_state"] = self.wait_state
        return row


class AnomalyDetector:
    """Base class: evaluate one telemetry snapshot, return findings.

    Detectors are *edge-triggered*: they report an anomaly when it
    begins (and may report recovery), not once per sample while it
    persists.  ``on_sample`` runs inside the sampler tick, so it must be
    a pure observer -- read state, never mutate the workload.
    """

    name = "anomaly"

    def on_sample(
        self, t: float, monitor: "Monitor"
    ) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


class ProgressStarvationDetector(AnomalyDetector):
    """The Mercury progress ULT stopped turning the crank.

    Fires when a process has completion-queue backlog but its progress
    loop has not run for ``starvation_threshold`` seconds (an execution
    stream monopolized by compute, a hung process, a slow restart), or
    when the process is down entirely (crash -- the progress loop is
    gone and peers see only silence).  Clears when progress resumes.
    """

    name = "progress_starvation"

    def __init__(self, config: MonitorConfig):
        self.threshold = config.starvation_threshold
        self._starved: set[str] = set()

    def on_sample(self, t: float, monitor: "Monitor") -> list[Finding]:
        findings = []
        for addr, mi in monitor.iter_processes():
            last = monitor.last_progress.get(addr, 0.0)
            backlog = mi.endpoint.cq_depth
            down = mi.crashed
            starved = down or (backlog > 0 and t - last >= self.threshold)
            if starved and addr not in self._starved:
                self._starved.add(addr)
                if down:
                    msg = "progress loop halted (process down)"
                else:
                    msg = (
                        f"no progress for {(t - last) * 1e3:.3f} ms "
                        f"with {backlog} queued completions"
                    )
                findings.append(
                    Finding(t, self.name, addr, msg, value=t - last)
                )
            elif not starved and addr in self._starved:
                self._starved.discard(addr)
                findings.append(
                    Finding(t, self.name, addr, "progress resumed")
                )
        return findings


class QueueDepthWatermarkDetector(AnomalyDetector):
    """Handler-pool queue depth crossed the configured watermark.

    The Figure 9 pathology (too few execution streams) as a live alarm.
    Edge-triggered with hysteresis: re-arms once the depth falls to half
    the watermark.
    """

    name = "handler_queue_depth"

    def __init__(self, config: MonitorConfig):
        self.watermark = config.queue_watermark
        self._over: set[str] = set()

    def on_sample(self, t: float, monitor: "Monitor") -> list[Finding]:
        findings = []
        for addr, mi in monitor.iter_processes():
            depth = len(mi.handler_pool)
            if depth >= self.watermark and addr not in self._over:
                self._over.add(addr)
                findings.append(
                    Finding(
                        t,
                        self.name,
                        addr,
                        f"handler pool depth {depth} >= watermark "
                        f"{self.watermark}",
                        value=depth,
                    )
                )
            elif depth <= self.watermark // 2 and addr in self._over:
                self._over.discard(addr)
                findings.append(
                    Finding(
                        t,
                        self.name,
                        addr,
                        f"handler pool drained to {depth}",
                        value=depth,
                    )
                )
        return findings


class ForwardTimeoutBurstDetector(AnomalyDetector):
    """A burst of forward timeouts -- the client-side symptom of a dead
    or partitioned peer.  Watches the ``num_forward_timeouts`` resilience
    gauge and fires when it grows by ``timeout_burst_count`` within
    ``timeout_burst_window`` seconds; re-arms after a quiet window.
    """

    name = "forward_timeout_burst"

    def __init__(self, config: MonitorConfig):
        self.count = config.timeout_burst_count
        self.window = config.timeout_burst_window
        self._last_total: dict[str, int] = {}
        #: Per process: (time, delta) increments inside the window.
        self._recent: dict[str, list[tuple[float, int]]] = {}
        self._bursting: set[str] = set()

    def on_sample(self, t: float, monitor: "Monitor") -> list[Finding]:
        findings = []
        for addr, mi in monitor.iter_processes():
            total = mi.hg.pvars.raw_value("num_forward_timeouts")
            delta = total - self._last_total.get(addr, 0)
            self._last_total[addr] = total
            recent = self._recent.setdefault(addr, [])
            if delta > 0:
                recent.append((t, delta))
            while recent and recent[0][0] < t - self.window:
                recent.pop(0)
            in_window = sum(d for _, d in recent)
            if in_window >= self.count and addr not in self._bursting:
                self._bursting.add(addr)
                findings.append(
                    Finding(
                        t,
                        self.name,
                        addr,
                        f"{in_window} forward timeouts within "
                        f"{self.window * 1e3:.3f} ms",
                        value=in_window,
                    )
                )
            elif not recent and addr in self._bursting:
                self._bursting.discard(addr)
                findings.append(
                    Finding(t, self.name, addr, "timeout burst subsided")
                )
        return findings


_BUILTIN_DETECTORS: dict[str, Callable[[MonitorConfig], AnomalyDetector]] = {
    "starvation": ProgressStarvationDetector,
    "queue_depth": QueueDepthWatermarkDetector,
    "timeout_burst": ForwardTimeoutBurstDetector,
}


@dataclass(frozen=True)
class SchedSlice:
    """One scheduler interval of one ULT on one execution stream.

    ``kind`` is ``"run"`` (the ULT held the ES) or ``"block"`` (the ULT
    sat blocked on an eventual between two run slices).  ``reason`` says
    why a run slice ended: ``"end"`` (terminated), ``"block"``,
    ``"yield"``, or ``"preempt"`` (exception unwound through the ES).
    All fields are deterministic -- ULT *names* are stable across runs,
    ULT ids are not and are deliberately absent.
    """

    process: str
    es: str
    ult: str
    kind: str
    start: float
    end: float
    reason: str = ""


#: Slice-reason materialization table, indexed by the recorder's
#: internal reason code (0 is the empty reason of block slices).
_SLICE_REASONS = ("", "end", "block", "yield", "preempt")


class SchedRecorder:
    """The ``sched_observer`` installed on each process's AbtRuntime.

    Records run slices as the execution streams report them and
    synthesizes the block slice between a ULT blocking and its next
    dispatch.  Bounded: past ``capacity`` slices it counts drops instead
    of growing.

    The hook fires on *every* ULT dispatch, so recording is columnar:
    one slice is four scalar appends into flat arrays with process/ES/
    ULT names interned to integer ids.  :attr:`slices` materializes
    (and caches) the :class:`SchedSlice` views for the exporters.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self.dropped = 0
        #: ULT object -> time its last run slice ended with a block.
        self._blocked_at: dict = {}
        self._n = 0
        self._ids = array("q")  # interleaved (process, es, ult) string ids
        self._kind = array("b")  # 0 = run, 1 = block
        self._reason = array("b")  # index into _SLICE_REASONS
        self._start = array("d")
        self._end = array("d")
        self._strings: list[str] = []
        self._str_ids: dict[str, int] = {}
        self._mat: list[SchedSlice] = []
        #: UltState -> reason code, resolved lazily (import cycle).
        self._reason_codes: Optional[dict] = None

    def _intern(self, s: str) -> int:
        i = self._str_ids.get(s)
        if i is None:
            i = self._str_ids[s] = len(self._strings)
            self._strings.append(s)
        return i

    def on_slice(
        self, es: "ExecutionStream", ult: "ULT", start: float, end: float
    ) -> None:
        """Called by the ES when a ULT leaves it (xstream hook)."""
        reason_codes = self._reason_codes
        if reason_codes is None:
            from ..argobots.ult import UltState

            reason_codes = self._reason_codes = {
                UltState.TERMINATED: 1,
                UltState.BLOCKED: 2,
                UltState.READY: 3,
            }
        n = self._n
        capacity = self.capacity
        blocked_since = self._blocked_at.pop(ult, None)
        proc = self._intern(es.runtime.name)
        es_id = self._intern(es.name)
        ult_id = self._intern(ult.name)
        if blocked_since is not None:
            if n < capacity:
                self._ids.extend((proc, es_id, ult_id))
                self._kind.append(1)
                self._reason.append(0)
                self._start.append(blocked_since)
                self._end.append(start)
                n += 1
            else:
                self.dropped += 1
        reason = reason_codes.get(ult.state, 4)
        if reason == 2:
            self._blocked_at[ult] = end
        if n < capacity:
            self._ids.extend((proc, es_id, ult_id))
            self._kind.append(0)
            self._reason.append(reason)
            self._start.append(start)
            self._end.append(end)
            n += 1
        else:
            self.dropped += 1
        self._n = n

    @property
    def slices(self) -> list[SchedSlice]:
        """Materialized slice views, in recording order (cached)."""
        mat = self._mat
        n = self._n
        if len(mat) != n:
            strings = self._strings
            ids = self._ids
            kind = self._kind
            reason = self._reason
            start = self._start
            end = self._end
            for i in range(len(mat), n):
                base = i * 3
                mat.append(
                    SchedSlice(
                        process=strings[ids[base]],
                        es=strings[ids[base + 1]],
                        ult=strings[ids[base + 2]],
                        kind="block" if kind[i] else "run",
                        start=start[i],
                        end=end[i],
                        reason=_SLICE_REASONS[reason[i]],
                    )
                )
        return mat

    def __len__(self) -> int:
        return self._n


class PeriodicSampler:
    """Drives :meth:`Monitor.sample` every ``interval`` simulated
    seconds by self-rescheduling on the simulator's event queue."""

    def __init__(self, sim: "Simulator", interval: float, sample: Callable[[float], None]):
        self.sim = sim
        self.interval = interval
        self._sample = sample
        self.ticks = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.call_at(self.sim.now + self.interval, self._tick)

    def stop(self) -> None:
        # A tick already in the queue fires once more as a no-op.
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._sample(self.sim.now)
        self.sim.call_at(self.sim.now + self.interval, self._tick)


class _PvarRow:
    """One NO_OBJECT PVAR in a process's cached sampling plan.

    ``read`` is the slot reader bound at plan-build time (one list
    index or getter call per sample -- no name hashing).  ``update`` /
    ``append`` stay None until the PVAR first reports a non-None value
    (LOWWATERMARKs are None until sampled) -- exactly the lazy metric
    creation the uncached path had, so exports are byte-identical;
    afterwards they are the bound ``set``/``set_total`` and
    ``TimeSeries.append`` methods.
    """

    __slots__ = ("d", "is_counter", "read", "metric", "series", "update", "append")

    def __init__(self, d, is_counter: bool, read):
        self.d = d
        self.is_counter = is_counter
        self.read = read
        self.metric = None
        self.series = None
        self.update = None
        self.append = None


class _GaugeRow:
    """A resolved (gauge, ring-buffer series) pair."""

    __slots__ = ("metric", "series")

    def __init__(self, metric, series):
        self.metric = metric
        self.series = series

    def record(self, t: float, value) -> None:
        self.metric.set(value)
        self.series.append(t, value)


class _ProcessPlan:
    """Per-process sampling plan: every name/label/PVAR-index resolution
    the sampler needs, done once at build time instead of every tick.

    Invalidated (and rebuilt) when the process's PVAR registry, Argobots
    runtime, or handler pool is replaced or grows -- the staleness checks
    in :meth:`Monitor.sample`.
    """

    __slots__ = (
        "addr", "pvars", "n_pvars", "pvar_rows", "rt", "pool",
        "depth", "depth_hist", "ready", "blocked", "running",
        "busy", "memory",
    )


class Monitor:
    """The online telemetry hub for one simulated cluster.

    Wire it by hand (``attach`` each MargoInstance, then ``start()``)
    or let :class:`~repro.cluster.Cluster` do it via
    ``Cluster(monitoring=MonitorConfig(...))``.  ``stop()`` must run
    before the final event-queue drain, or the sampler keeps the
    simulation alive forever.
    """

    def __init__(
        self,
        sim: "Simulator",
        config: Optional[MonitorConfig] = None,
        *,
        fabric: Optional["Fabric"] = None,
    ):
        self.sim = sim
        self.config = config or MonitorConfig()
        self.fabric = fabric
        if fabric is not None:
            fabric.track_inflight = True
        self.registry = MetricsRegistry()
        self.store = SeriesStore(self.config.ring_capacity)
        self.sched = SchedRecorder(self.config.sched_slice_capacity)
        #: Sampling-plan rebuilds (staleness-triggered) since start.
        self.plan_rebuilds = 0
        # Self-observability: the monitor's own overhead as PVARs, so
        # the ~1.1x claim is measurable from inside a run.  Exposed
        # through the normal PVAR session interface *and* sampled into
        # pvar_monitor_* series every tick.
        self.pvars = PvarRegistry()
        P, B = PvarClass, PvarBinding
        for d in (
            PvarDef(
                "monitor_samples_taken",
                P.COUNTER,
                B.NO_OBJECT,
                "Sampler ticks completed by the monitor",
                getter=lambda: self.sampler.ticks,
            ),
            PvarDef(
                "monitor_plan_rebuilds",
                P.COUNTER,
                B.NO_OBJECT,
                "Per-process sampling-plan rebuilds (staleness-triggered)",
                getter=lambda: self.plan_rebuilds,
            ),
            PvarDef(
                "monitor_sched_slices",
                P.LEVEL,
                B.NO_OBJECT,
                "Scheduler slices held in the columnar recorder",
                getter=lambda: len(self.sched),
            ),
            PvarDef(
                "monitor_sched_slice_highwater",
                P.HIGHWATERMARK,
                B.NO_OBJECT,
                "Deepest recorded fill of the scheduler-slice buffer",
                getter=lambda: len(self.sched),
            ),
            PvarDef(
                "monitor_sched_slices_dropped",
                P.COUNTER,
                B.NO_OBJECT,
                "Scheduler slices dropped past the capacity cap",
                getter=lambda: self.sched.dropped,
            ),
        ):
            self.pvars.define(d)
        self._self_rows: Optional[list] = None
        self.findings: list[Finding] = []
        #: addr -> simulated time of the last progress-loop iteration.
        self.last_progress: dict[str, float] = {}
        self._processes: dict[str, "MargoInstance"] = {}
        self._plans: dict[str, _ProcessPlan] = {}
        self._fabric_plan: Optional[tuple] = None
        self._progress_counters: dict[str, object] = {}
        self.detectors: list[AnomalyDetector] = [
            _BUILTIN_DETECTORS[name](self.config)
            for name in self.config.detectors
        ]
        self.detectors.extend(
            factory(self.config) for factory in self.config.detector_factories
        )
        self.sampler = PeriodicSampler(sim, self.config.interval, self.sample)

    # -- wiring -------------------------------------------------------------

    def attach(self, mi: "MargoInstance") -> None:
        """Adopt one process: hook its scheduler and progress loop."""
        if mi.addr in self._processes:
            raise ValueError(f"process {mi.addr!r} already monitored")
        self._processes[mi.addr] = mi
        mi.rt.add_sched_observer(self.sched)
        self.last_progress[mi.addr] = self.sim.now
        # The observer fires on every progress iteration, so it is a
        # closure over pre-resolved state: one dict store plus a bound
        # counter.inc per iteration.  The counter is still created on
        # the first iteration (not at attach), as before, so exports of
        # runs with idle processes are unchanged.
        addr = mi.addr
        last_progress = self.last_progress
        registry = self.registry
        counters = self._progress_counters
        inc_cell: list = []

        def _observer(t: float, n: int) -> None:
            last_progress[addr] = t
            if not inc_cell:
                counter = registry.counter(
                    "hg_progress_iterations",
                    "Progress-loop iterations completed",
                    labels={"process": addr},
                )
                counters[addr] = counter
                inc_cell.append(counter.inc)
            inc_cell[0]()

        mi.hg.add_progress_observer(_observer)

    def iter_processes(self):
        """Attached processes in attach order (deterministic)."""
        return self._processes.items()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        """Stop sampling and take one final snapshot.

        Must happen before the teardown drain -- a self-rescheduling
        sampler would otherwise keep the event queue non-empty forever.
        """
        if self.sampler._running:
            self.sampler.stop()
            self.sample(self.sim.now)

    # -- sampling -----------------------------------------------------------

    def sample(self, t: float) -> None:
        """Snapshot every watched quantity at simulated time ``t``."""
        for addr, mi in self._processes.items():
            plan = self._plans.get(addr)
            if (
                plan is None
                or plan.pvars is not mi.hg.pvars
                or plan.n_pvars != mi.hg.pvars.num_pvars
                or plan.rt is not mi.rt
                or plan.pool is not mi.handler_pool
            ):
                plan = self._plans[addr] = self._build_plan(addr, mi)
                self.plan_rebuilds += 1
            self._sample_pvars(t, plan)
            self._sample_tasking(t, mi, plan)
        if self.fabric is not None:
            fp = self._fabric_plan
            if fp is None:
                fp = self._fabric_plan = (
                    _GaugeRow(
                        self.registry.gauge(
                            "fabric_inflight_bytes",
                            "Bytes currently on the wire (sent, not yet "
                            "delivered)",
                            None,
                        ),
                        self.store.series("fabric_inflight_bytes", None),
                    ),
                    self.registry.counter(
                        "fabric_total_bytes",
                        "Cumulative bytes injected into the fabric",
                        None,
                    ),
                    self.store.series("fabric_total_bytes", None),
                )
            fp[0].record(t, self.fabric.inflight_bytes)
            total = self.fabric.total_bytes
            fp[1].set_total(total)
            fp[2].append(t, total)
        self._sample_self(t)
        for detector in self.detectors:
            self.findings.extend(detector.on_sample(t, self))

    def _sample_self(self, t: float) -> None:
        """Sample the monitor's own overhead PVARs (self-observability)."""
        rows = self._self_rows
        if rows is None:
            rows = self._self_rows = []
            labels = {"process": "__monitor__"}
            for i in range(self.pvars.num_pvars):
                d = self.pvars.info(i)
                name = f"pvar_{d.name}"
                if d.pvar_class is PvarClass.COUNTER:
                    metric = self.registry.counter(name, d.description, labels)
                    update = metric.set_total
                else:
                    metric = self.registry.gauge(name, d.description, labels)
                    update = metric.set
                rows.append(
                    (self.pvars.reader(d.name), update,
                     self.store.series(name, labels).append)
                )
        for read, update, append in rows:
            value = read()
            update(value)
            append(t, value)

    def _build_plan(self, addr: str, mi: "MargoInstance") -> _ProcessPlan:
        """Resolve every name/PVAR lookup the sampler will make for
        ``mi`` once, so the per-tick hot loop touches only cached
        handles."""
        labels = {"process": addr}
        pvars = mi.hg.pvars
        plan = _ProcessPlan()
        plan.addr = addr
        plan.pvars = pvars
        plan.n_pvars = pvars.num_pvars
        plan.pvar_rows = [
            _PvarRow(d, d.pvar_class is PvarClass.COUNTER, pvars.reader(d.name))
            for d in (pvars.info(i) for i in range(pvars.num_pvars))
            # HANDLE-bound values have no global snapshot.
            if d.binding is PvarBinding.NO_OBJECT
        ]
        plan.rt = mi.rt
        plan.pool = mi.handler_pool

        def gauge_row(name: str, help: str) -> _GaugeRow:
            return _GaugeRow(
                self.registry.gauge(name, help, labels),
                self.store.series(name, labels),
            )

        plan.depth = gauge_row(
            "abt_handler_pool_depth", "ULTs queued in the handler pool"
        )
        plan.depth_hist = self.registry.histogram(
            "abt_handler_pool_depth_hist",
            "Distribution of sampled handler-pool depths",
            labels=labels,
        )
        plan.ready = gauge_row(
            "abt_num_ready", "ULTs queued in pools, waiting for an ES"
        )
        plan.blocked = gauge_row(
            "abt_num_blocked", "ULTs blocked on an eventual or mutex"
        )
        plan.running = gauge_row(
            "abt_num_running", "ULTs currently executing on an ES"
        )
        plan.busy = gauge_row(
            "abt_busy_fraction",
            "Mean cumulative ES busy time over elapsed time",
        )
        plan.memory = gauge_row(
            "process_memory_bytes", "Simulated process memory gauge"
        )
        return plan

    def _sample_pvars(self, t: float, plan: _ProcessPlan) -> None:
        for row in plan.pvar_rows:
            value = row.read()
            if value is None:
                continue  # LOWWATERMARK with no sample yet
            update = row.update
            if update is None:
                d = row.d
                name = f"pvar_{d.name}"
                labels = {"process": plan.addr}
                if row.is_counter:
                    metric = self.registry.counter(name, d.description, labels)
                    update = metric.set_total
                else:
                    metric = self.registry.gauge(name, d.description, labels)
                    update = metric.set
                row.metric = metric
                row.series = self.store.series(name, labels)
                row.update = update
                row.append = row.series.append
            update(value)
            row.append(t, value)

    def _sample_tasking(
        self, t: float, mi: "MargoInstance", plan: _ProcessPlan
    ) -> None:
        rt = plan.rt
        depth = len(plan.pool)
        plan.depth.record(t, depth)
        plan.depth_hist.observe(depth)
        plan.ready.record(t, rt.num_ready)
        plan.blocked.record(t, rt.num_blocked)
        plan.running.record(t, rt.num_running)
        # busy_fraction() is a pure read; ProcessStats.cpu_utilization()
        # would perturb the delta-sample state the trace layer shares.
        plan.busy.record(t, rt.busy_fraction())
        plan.memory.record(t, mi.stats.memory_bytes)

    # -- reporting ----------------------------------------------------------

    def findings_report(self) -> str:
        """Deterministic plain-text finding timeline."""
        lines = [f"anomaly findings ({len(self.findings)}):"]
        for f in self.findings:
            lines.append(
                f"  {f.time * 1e3:12.6f} ms  {f.detector:<24} "
                f"{f.process:<14} {f.message}"
            )
        return "\n".join(lines)

    def record_to(self, writer, run_id: int) -> None:
        """Archive this monitor's telemetry (time-series, findings,
        scheduler slices) under ``run_id`` via a
        :class:`repro.store.StoreWriter`.  The caller flushes."""
        writer.record_monitor(run_id, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Monitor(processes={len(self._processes)}, "
            f"series={len(self.store)}, findings={len(self.findings)})"
        )
