"""Ablation: clock-skew magnitude vs. trace-correction quality.

The paper mitigates clock skew with Lamport clocks; our stitcher also
estimates per-process offsets NTP-style from span message deltas.  This
ablation injects growing offsets/drifts into the instrumented world and
measures how well the correction recovers them -- and that the stitched
span ordering survives even under skew that is orders of magnitude
larger than RPC latencies.
"""

import numpy as np

from repro.experiments import ascii_table
from repro.sim import LocalClock
from repro.symbiosys import Stage
from repro.symbiosys.analysis import estimate_clock_offsets, trace_summary
from .conftest import run_once

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from symbiosys.conftest import drive_requests, make_instrumented_world  # noqa: E402


def _run_with_skew(offset_scale: float):
    offsets_in = {"front": 0.7 * offset_scale, "back": -0.4 * offset_scale}
    world = make_instrumented_world(
        Stage.FULL,
        clocks={k: LocalClock(offset=v) for k, v in offsets_in.items()},
    )
    results = drive_requests(world, 6)
    world.sim.run(until=1.0)
    assert len(results) == 6
    events = world.collector.all_events()
    est = estimate_clock_offsets(events)
    errors = [
        abs((est[p] - est["cli"]) - offsets_in.get(p, 0.0))
        for p in ("front", "back")
    ]
    summary = trace_summary(world.collector)
    ordered = all(
        span.t1 <= span.t5 <= span.t8 <= span.t14
        for req in summary.requests.values()
        for span in req.roots[0].walk()
    )
    return max(errors), ordered


def test_ablation_clock_skew(benchmark, report):
    scales = (0.0, 1e-3, 1.0, 100.0)

    def _sweep():
        return {s: _run_with_skew(s) for s in scales}

    results = run_once(benchmark, _sweep)
    rows = [
        {
            "injected offset scale (s)": scale,
            "max recovery error (us)": err * 1e6,
            "span ordering intact": "yes" if ordered else "NO",
        }
        for scale, (err, ordered) in results.items()
    ]
    report.append("Ablation: clock skew vs offset recovery")
    report.append(ascii_table(rows))

    for scale, (err, ordered) in results.items():
        # Offsets recovered to within a couple of wire latencies,
        # regardless of magnitude (the estimator is differential).
        assert err < 5e-6, f"scale {scale}: error {err}"
        assert ordered, f"scale {scale}: span ordering broken"
    benchmark.extra_info["max_error_us"] = max(
        e * 1e6 for e, _ in results.values()
    )
