"""SDSKV key-value backend databases.

Three backends mirror the ones SDSKV exposes (``map``, ``leveldb``,
``bdb``).  All of them *really* store the key-value pairs (gets return
what puts wrote); they differ in cost model and concurrency:

* **map** -- a std::map-like in-memory store.  Cheap per item, but "not
  capable of parallel insertions": a single mutex is held for the whole
  insert batch.  Under bursty ``put_packed`` floods this serializes
  writers -- the Figure 10 mechanism.
* **leveldb** -- LSM-style store: pricier per item (memtable + WAL
  append) but writers do not serialize behind one lock.
* **bdb** -- B-tree with page locking: moderately priced, serialized
  like ``map`` but with coarser per-batch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ...argobots import AbtRuntime, Compute
from ...mercury import estimate_size

__all__ = [
    "BackendCosts",
    "KVDatabase",
    "MapDatabase",
    "LevelDBDatabase",
    "BDBDatabase",
    "make_database",
    "BACKENDS",
]


@dataclass(frozen=True)
class BackendCosts:
    """Cost model of one backend type."""

    put_fixed: float  # per insert operation
    put_per_byte: float
    get_fixed: float
    get_per_byte: float
    scan_per_item: float  # list_keyvals iteration cost per stored item
    batch_fixed: float = 0.0  # once per put_many call


class KVDatabase:
    """Base: ordered in-memory KV store with a backend cost model."""

    name = "abstract"
    serialized_inserts = False

    def __init__(self, runtime: AbtRuntime, costs: BackendCosts, db_id: int = 0):
        self.runtime = runtime
        self.costs = costs
        self.db_id = db_id
        self._data: dict[str, object] = {}
        self._mutex = (
            runtime.mutex(f"{self.name}-db{db_id}")
            if self.serialized_inserts
            else None
        )
        #: Total bytes ever inserted (memory-gauge feed).
        self.bytes_stored = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def insert_mutex_waiters(self) -> int:
        return self._mutex.waiting if self._mutex is not None else 0

    @property
    def insert_mutex_waiters_high_watermark(self) -> int:
        """Peak number of ULTs ever queued on the insert mutex (0 for
        backends with concurrent inserts)."""
        return (
            self._mutex.contention_high_watermark
            if self._mutex is not None
            else 0
        )

    # -- operations (generators: they consume simulated time) ----------------

    def put(self, key: str, value: object) -> Generator:
        yield from self.put_many([(key, value)])

    def put_many(self, pairs: list[tuple[str, object]]) -> Generator:
        """Insert a batch.  Serialized backends hold their mutex for the
        whole batch, as one ``sdskv_put_packed`` does."""
        if self._mutex is not None:
            yield from self._mutex.lock()
        try:
            if self.costs.batch_fixed > 0:
                yield Compute(self.costs.batch_fixed)
            for key, value in pairs:
                nbytes = estimate_size(key) + estimate_size(value)
                yield Compute(
                    self.costs.put_fixed + self.costs.put_per_byte * nbytes
                )
                if key not in self._data:
                    self.bytes_stored += nbytes
                self._data[key] = value
        finally:
            if self._mutex is not None:
                self._mutex.unlock()

    def peek(self, key: str) -> Optional[object]:
        """Zero-cost out-of-band read for offline audits and tests —
        never use on a simulated code path (no backend cost charged)."""
        return self._data.get(key)

    def get(self, key: str) -> Generator:
        nbytes = estimate_size(key)
        value = self._data.get(key)
        if value is not None:
            nbytes += estimate_size(value)
        yield Compute(self.costs.get_fixed + self.costs.get_per_byte * nbytes)
        return value

    def exists(self, key: str) -> Generator:
        yield Compute(self.costs.get_fixed)
        return key in self._data

    def list_keyvals(
        self, prefix: str = "", max_items: Optional[int] = None
    ) -> Generator:
        """Prefix scan.  Cost scales with the number of *stored* items
        (full iteration), which is what makes listing dominate the
        ior+Mobject read profile (Figure 6)."""
        yield Compute(self.costs.scan_per_item * max(1, len(self._data)))
        out = []
        for key in sorted(self._data):
            if key.startswith(prefix):
                out.append((key, self._data[key]))
                if max_items is not None and len(out) >= max_items:
                    break
        return out

    def erase(self, key: str) -> Generator:
        yield Compute(self.costs.put_fixed)
        self._data.pop(key, None)


class MapDatabase(KVDatabase):
    name = "map"
    serialized_inserts = True

    DEFAULT_COSTS = BackendCosts(
        put_fixed=0.5e-6,
        put_per_byte=0.10e-9,
        get_fixed=0.4e-6,
        get_per_byte=0.05e-9,
        scan_per_item=0.05e-6,
    )


class LevelDBDatabase(KVDatabase):
    name = "leveldb"
    serialized_inserts = False

    DEFAULT_COSTS = BackendCosts(
        put_fixed=1.6e-6,
        put_per_byte=0.35e-9,
        get_fixed=1.2e-6,
        get_per_byte=0.12e-9,
        scan_per_item=0.08e-6,
        batch_fixed=2.0e-6,  # WAL sync per batch
    )


class BDBDatabase(KVDatabase):
    name = "bdb"
    serialized_inserts = True

    DEFAULT_COSTS = BackendCosts(
        put_fixed=1.0e-6,
        put_per_byte=0.20e-9,
        get_fixed=0.8e-6,
        get_per_byte=0.08e-9,
        scan_per_item=0.06e-6,
        batch_fixed=1.0e-6,
    )


BACKENDS: dict[str, type[KVDatabase]] = {
    "map": MapDatabase,
    "leveldb": LevelDBDatabase,
    "bdb": BDBDatabase,
}


def make_database(
    backend: str,
    runtime: AbtRuntime,
    db_id: int = 0,
    costs: Optional[BackendCosts] = None,
) -> KVDatabase:
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown SDSKV backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(runtime, costs or cls.DEFAULT_COSTS, db_id=db_id)
