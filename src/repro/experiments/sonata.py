"""Sonata store_multi_json experiment harness (Figure 7).

One origin and one target on separate compute nodes; the benchmark
repeatedly stores a fixed-length JSON record array in batches, then the
target-side execution time is broken into the Table III steps.  The
paper's instance: 50,000 records, batch size 5,000, with input
deserialization accounting for ~27% of target execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from ..services.sonata import SonataClient, SonataProvider
from ..symbiosys import Stage, SymbiosysCollector
from ..symbiosys.analysis import profile_summary
from ..workloads import generate_json_records
from .presets import THETA_KNL, Preset

__all__ = ["SonataExperimentResult", "run_sonata_experiment"]

_PROVIDER_ID = 1


@dataclass
class SonataExperimentResult:
    collector: SymbiosysCollector
    makespan: float
    n_records: int
    batch_size: int

    def store_row(self):
        return profile_summary(self.collector).row_for("sonata_store_multi_json")

    def target_execution_breakdown(self) -> dict[str, float]:
        """Figure 7: cumulative target execution time split into input
        deserialization, internal RDMA, document store work, and output
        serialization."""
        row = self.store_row()
        exec_total = row.breakdown.get("target_execution_time", 0.0)
        deser = row.breakdown.get("input_deserialization_time", 0.0)
        rdma = row.breakdown.get("internal_rdma_transfer_time", 0.0)
        out_ser = row.breakdown.get("output_serialization_time", 0.0)
        return {
            "input_deserialization_time": deser,
            "internal_rdma_transfer_time": rdma,
            "document_store_time": max(0.0, exec_total - deser),
            "output_serialization_time": out_ser,
            "target_execution_time": exec_total,
        }

    @property
    def deserialization_fraction(self) -> float:
        b = self.target_execution_breakdown()
        denom = b["target_execution_time"] + b["internal_rdma_transfer_time"]
        return b["input_deserialization_time"] / denom if denom > 0 else 0.0


def run_sonata_experiment(
    *,
    n_records: int = 50_000,
    batch_size: int = 5_000,
    fields_per_record: int = 6,
    stage: Stage = Stage.FULL,
    preset: Preset = THETA_KNL,
    time_limit: float = 600.0,
) -> SonataExperimentResult:
    cluster = Cluster(stage=stage, preset=preset)
    server = cluster.process("sonata-svr", "nodeA", n_handler_es=2)
    SonataProvider(server, _PROVIDER_ID)
    client_mi = cluster.process("sonata-cli", "nodeB")
    client = SonataClient(client_mi)
    records = generate_json_records(
        n_records, fields_per_record=fields_per_record
    )
    done = cluster.sim.event("sonata-done")

    def body():
        yield from client.create_database("sonata-svr", _PROVIDER_ID, "bench")
        yield from client.store_multi(
            "sonata-svr", _PROVIDER_ID, "bench", records, batch_size=batch_size
        )
        done.succeed(cluster.sim.now)

    client_mi.client_ult(body(), name="sonata-bench")
    if not cluster.run_until_event(done, limit=time_limit):
        raise RuntimeError("sonata benchmark did not finish in time")
    return SonataExperimentResult(
        collector=cluster.collector,
        makespan=done.value,
        n_records=n_records,
        batch_size=batch_size,
    )
