"""Scale smoke test: a deployment in the paper's overhead-study range.

The paper's §VI study used 224 data-loader clients against 32 HEPnOS
service providers over 128 nodes.  This bench runs a 64-client /
8-server deployment (the largest that stays in a one-minute budget) at
full instrumentation and checks that the system behaves sanely at that
scale: everything stores, profiles balance across servers, and the
collected trace volume matches the RPC count.
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)
from repro.symbiosys import push
from repro.symbiosys.analysis import system_summary
from .conftest import run_once

CONFIG = TABLE_IV["C2"].scaled(
    name="scale-smoke",
    total_clients=64,
    clients_per_node=16,
    total_servers=8,
    servers_per_node=2,
    databases=64,
)
EVENTS_PER_CLIENT = 1024


def _run():
    return run_hepnos_experiment(CONFIG, events_per_client=EVENTS_PER_CLIENT)


def test_scale_smoke(benchmark, report):
    result = run_once(benchmark, _run)
    report.append(
        f"scale smoke: {CONFIG.total_clients} clients x "
        f"{CONFIG.total_servers} servers, "
        f"{result.events_stored} events in {format_seconds(result.makespan)} "
        f"simulated ({result.collector.total_trace_events} trace events)"
    )

    # Everything stored.
    assert result.events_stored == CONFIG.total_clients * EVENTS_PER_CLIENT
    # Trace volume: 4 events per RPC, across 72 processes.
    assert result.collector.total_trace_events == 4 * result.rpcs_issued
    assert len(set(result.collector.processes())) == 64 + 8

    # The put_packed load spreads over all 8 servers within a reasonable
    # imbalance factor (hashing over 64 databases).
    row = result.put_packed_row()
    assert set(row.target_counts) == set(result.server_addrs)
    counts = sorted(row.target_counts.values())
    assert counts[-1] < 2.5 * counts[0]
    report.append(
        "per-server put_packed counts: "
        + ", ".join(f"{k}={v}" for k, v in sorted(row.target_counts.items()))
    )

    # System summary covers every process with sane values.
    summary = system_summary(result.collector.all_events())
    assert len(summary.per_process) == 72
    for stats in summary.per_process.values():
        assert 0.0 <= stats.mean_cpu <= 1.0
    benchmark.extra_info["trace_events"] = result.collector.total_trace_events
    benchmark.extra_info["makespan_ms"] = round(result.makespan * 1e3, 3)
