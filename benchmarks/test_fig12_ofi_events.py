"""Figure 12: sampling num_ofi_events_read on the client (C4-C7).

SYMBIOSYS samples the ``num_ofi_events_read`` Mercury PVAR at every t14
trace event.  Per the paper:

* C4 (batch 1024): the OFI_max_events threshold of 16 is never breached.
* C5 (batch 1): reads consistently hit the 16-event cap -- the
  completion queue is backed up.
* C6 (cap 64): reads rise above 16, showing the hidden backlog.
* C7 (dedicated progress ES): the queue no longer backs up; reads are
  small again.
"""

import numpy as np

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    run_hepnos_experiment,
    series_histogram,
)
from .conftest import run_once

EVENTS_PER_CLIENT = 2048
PIPELINE = {"C4": 32, "C5": 64, "C6": 64, "C7": 64}


def _run_all():
    return {
        name: run_hepnos_experiment(
            TABLE_IV[name],
            events_per_client=EVENTS_PER_CLIENT,
            pipeline_width=PIPELINE[name],
        )
        for name in ("C4", "C5", "C6", "C7")
    }


def test_fig12_ofi_events(benchmark, report):
    results = run_once(benchmark, _run_all)
    series = {
        name: np.array([v for _, v in r.ofi_series()])
        for name, r in results.items()
    }

    rows = []
    for name in ("C4", "C5", "C6", "C7"):
        s = series[name]
        rows.append(
            {
                "config": name,
                "OFI_max_events": results[name].config.ofi_max_events,
                "samples": len(s),
                "mean": float(s.mean()),
                "max": int(s.max()),
                "share at/above 16": f"{100 * float((s >= 16).mean()):.1f}%",
            }
        )
    report.append("Figure 12: num_ofi_events_read samples per configuration")
    report.append(ascii_table(rows))
    for name in ("C4", "C5", "C6", "C7"):
        report.append(series_histogram(series[name], bins=[4, 16, 64],
                                       label=f"{name} num_ofi_events_read"))

    c4, c5, c6, c7 = (series[k] for k in ("C4", "C5", "C6", "C7"))
    # C4: threshold never breached.
    assert c4.max() < 16
    # C5: the 16-event cap is consistently hit (>= 80% of samples).
    assert c5.max() == 16
    assert float((c5 >= 16).mean()) > 0.8
    # C6: values above the old threshold appear, bounded by the new cap.
    assert c6.max() > 16
    assert c6.max() <= 64
    assert float((c6 > 16).mean()) > 0.3
    # C7: queue drained -- reads small again.
    assert c7.mean() < 4
    assert c7.max() <= 16
    benchmark.extra_info.update(
        c4_max=int(c4.max()),
        c5_share_at_cap=round(float((c5 >= 16).mean()), 4),
        c6_max=int(c6.max()),
        c7_mean=round(float(c7.mean()), 3),
    )
