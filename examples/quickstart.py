#!/usr/bin/env python3
"""Quickstart: build a tiny composed service, profile it with SYMBIOSYS.

This walks the core workflow end to end:

1. create a simulated cluster (fabric + Margo processes),
2. compose a two-tier microservice (a front API that fans out to a
   key-value leaf service),
3. instrument everything with SYMBIOSYS at full support,
4. run a small client workload, and
5. print the distributed callpath profile and a per-request trace.

Run:  python examples/quickstart.py
"""

import repro.argobots as abt
from repro.cluster import Cluster
from repro.symbiosys import Stage
from repro.symbiosys.analysis import profile_summary, trace_summary


def main() -> None:
    # -- 1. the simulated world: one Cluster bundles the simulator, the
    # fabric, and a SYMBIOSYS collector at full support ---------------------
    with Cluster(seed=0, stage=Stage.FULL) as cluster:
        # -- 2. a composed service: front API -> KV leaf ----------------------
        kv_server = cluster.process("kv", "node1", n_handler_es=2)
        kv_store: dict = {}

        def kv_put(mi, handle):
            inp = yield from mi.get_input(handle)
            yield abt.Compute(2e-6)  # backend insert work
            kv_store[inp["key"]] = inp["value"]
            yield from mi.respond(handle, {"ret": 0})

        def kv_get(mi, handle):
            inp = yield from mi.get_input(handle)
            yield abt.Compute(1e-6)
            yield from mi.respond(handle, {"value": kv_store.get(inp["key"])})

        kv_server.register("kv_put_rpc", kv_put)
        kv_server.register("kv_get_rpc", kv_get)

        front = cluster.process("front", "node0", n_handler_es=2)
        front.register("kv_put_rpc")
        front.register("kv_get_rpc")

        def api_store(mi, handle):
            """The composed op: one API call = two downstream RPCs."""
            inp = yield from mi.get_input(handle)
            yield from mi.forward("kv", "kv_put_rpc", {"key": inp["key"], "value": inp["value"]})
            check = yield from mi.forward("kv", "kv_get_rpc", {"key": inp["key"]})
            yield from mi.respond(handle, {"stored": check["value"] == inp["value"]})

        front.register("api_store_op", api_store)

        # -- 3./4. an instrumented client workload ----------------------------
        client = cluster.process("cli", "node2")
        client.register("api_store_op")
        results = []

        def workload():
            for i in range(8):
                out = yield from client.forward(
                    "front", "api_store_op", {"key": f"k{i}", "value": i * i}
                )
                results.append(out["stored"])

        client.client_ult(workload(), name="quickstart")
        assert cluster.run_until(lambda: len(results) == 8, limit=1.0)
        assert all(results), "service misbehaved"
        print(f"workload done at t={cluster.sim.now * 1e3:.3f} ms; all 8 ops verified\n")

        # -- 5. analysis -------------------------------------------------------
        print("=== Distributed callpath profile (dominant callpaths) ===")
        print(profile_summary(cluster.collector).render(top_n=5))

        print("\n=== Per-request structure (one stitched trace) ===")
        traces = trace_summary(cluster.collector)
        request = next(iter(traces.requests.values()))
        root = request.roots[0]
        print(f"request {request.request_id}: {root.rpc_name} "
              f"({root.duration * 1e6:.1f} us end to end)")
        for child in root.children:
            print(f"   -> {child.rpc_name} on {child.target_process} "
                  f"({child.duration * 1e6:.1f} us)")

    # Leaving the with-block finalized every process and drained the
    # event queue; nothing is left pending.
    assert cluster.leaked_events == 0


if __name__ == "__main__":
    main()
