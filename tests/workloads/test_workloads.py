"""Tests for the workload generators (ior, synthetic files, JSON records)."""

import pytest

from repro.workloads import (
    IorClient,
    IorConfig,
    flatten_to_pairs,
    generate_event_files,
    generate_json_records,
    run_ior_clients,
)


# ------------------------------------------------------------ ior


def test_ior_config_validation():
    with pytest.raises(ValueError):
        IorConfig(objects_per_client=0)
    with pytest.raises(ValueError):
        IorConfig(transfer_size=0)
    with pytest.raises(ValueError):
        IorConfig(read_iterations=-1)


def test_ior_object_ids_unique_per_rank():
    from repro.margo import MargoInstance
    from repro.net import Fabric, FabricConfig
    from repro.sim import Simulator

    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    clients = [
        IorClient(
            MargoInstance(sim, fabric, f"c{r}", "n0"),
            "target",
            r,
            IorConfig(objects_per_client=3),
        )
        for r in range(2)
    ]
    ids = {
        c._object_id(i) for c in clients for i in range(3)
    }
    assert len(ids) == 6


def test_ior_end_to_end_verifies_data():
    from repro.margo import MargoInstance
    from repro.net import Fabric, FabricConfig
    from repro.services.mobject import MobjectProviderNode
    from repro.sim import Simulator

    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    MobjectProviderNode(sim, fabric, "mobj", "n0", n_handler_es=4)
    clients = [
        IorClient(
            MargoInstance(sim, fabric, f"ior{r}", "n0"),
            "mobj",
            r,
            IorConfig(objects_per_client=2, transfer_size=2048,
                      read_iterations=2),
        )
        for r in range(3)
    ]
    run_ior_clients(clients)
    assert sim.run_until(
        lambda: all(c.finished_at is not None for c in clients), limit=10.0
    )
    for c in clients:
        assert c.write_errors == 0
        assert c.read_mismatches == 0


def test_ior_rank_data_is_deterministic_per_seed():
    from repro.margo import MargoInstance
    from repro.net import Fabric, FabricConfig
    from repro.sim import Simulator

    def data_for(seed):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig())
        c = IorClient(
            MargoInstance(sim, fabric, "c", "n0"), "t", 0,
            IorConfig(transfer_size=64), seed=seed,
        )
        return c._rng.integers(0, 256, size=16, dtype="uint8").tobytes()

    assert data_for(1) == data_for(1)
    assert data_for(1) != data_for(2)


# ------------------------------------------------------------ synthetic files


def test_event_files_keys_are_well_formed():
    from repro.services.hepnos import parse_event_key

    files = generate_event_files(n_files=2, events_per_file=20,
                                 subruns_per_file=4)
    for f in files:
        for key, payload in f.to_pairs():
            parsed = parse_event_key(key)
            assert parsed.dataset == f.dataset
            assert parsed.run == f.run
            assert 0 <= parsed.subrun < 4


def test_subruns_partition_events_in_order():
    (f,) = generate_event_files(n_files=1, events_per_file=16,
                                subruns_per_file=4)
    subruns = [subrun for subrun, _, _ in f.events]
    assert subruns == sorted(subruns)
    assert set(subruns) == {0, 1, 2, 3}


def test_flatten_preserves_order_and_count():
    files = generate_event_files(n_files=3, events_per_file=8)
    pairs = flatten_to_pairs(files)
    assert len(pairs) == 24
    keys = [k for k, _ in pairs]
    assert keys == sorted(keys)  # file order == run order == key order


def test_event_sizes_lognormal_spread():
    (f,) = generate_event_files(n_files=1, events_per_file=200,
                                mean_event_bytes=1024)
    sizes = [len(p) for _, _, p in f.events]
    mean = sum(sizes) / len(sizes)
    assert 700 < mean < 1500
    assert min(sizes) >= 16
    assert max(sizes) > 1.5 * min(sizes)  # genuinely variable


# ------------------------------------------------------------ JSON records


def test_json_records_shape_and_determinism():
    a = generate_json_records(50, fields_per_record=3, seed=5)
    b = generate_json_records(50, fields_per_record=3, seed=5)
    assert a == b
    assert len(a) == 50
    for i, rec in enumerate(a):
        assert rec["id"] == i
        assert {"tag", "score", "field0", "field1", "field2"} <= set(rec)


def test_json_records_validation():
    with pytest.raises(ValueError):
        generate_json_records(-1)
    with pytest.raises(ValueError):
        generate_json_records(5, fields_per_record=-1)
    assert generate_json_records(0) == []
