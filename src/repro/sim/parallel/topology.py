"""Automatic node-aligned partitioning from a deployed topology.

PR 9's kernel required every experiment to hand-write its LP
declarations -- which nodes go where, one builder per LP.  This module
derives them instead: a :class:`ClusterTopology` describes the
*deployed* shape of a run (one :class:`NodeGroup` per unsplittable
placement unit, weighted by the traffic it is expected to carry --
e.g. the shards a server node hosts) plus a single *topology builder*
that can populate any subset of those groups inside one LP.
:meth:`PartitionPlan.from_topology
<repro.sim.parallel.partition.PartitionPlan.from_topology>` then packs
the groups into LPs with a deterministic traffic-weighted greedy
bin-packing and emits ordinary :class:`LPSpec` objects, so everything
downstream (kernel, executors, digests) is unchanged.

Determinism contract: the derived partition is a pure function of
``(groups, n_lps)`` -- independent of dict ordering, wall clock, and
the eventual ``--workers`` count used to *execute* the plan.  Baking
the LP count into the plan (rather than reading it from the executor)
is what keeps digests byte-identical across worker counts: the same
plan runs under any ``--workers`` and produces the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["ClusterTopology", "NodeGroup", "greedy_assign"]


@dataclass(frozen=True)
class NodeGroup:
    """One unsplittable placement unit of a deployed topology.

    Usually one simulated node (the kernel's partition rule: a node
    never spans two LPs).  ``weight`` is the group's expected traffic
    share -- shards hosted, clients driven -- and steers the
    bin-packing toward balanced LPs; the absolute scale is irrelevant.
    """

    name: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("NodeGroup needs a non-empty name")
        if self.weight < 0:
            raise ValueError(f"NodeGroup {self.name!r}: negative weight")


def greedy_assign(
    groups: Sequence[NodeGroup], n_lps: int
) -> list[list[str]]:
    """Pack ``groups`` into ``n_lps`` bins, heaviest first.

    Longest-processing-time greedy: sort by ``(-weight, name)``, place
    each group on the least-loaded LP (ties break toward the lowest LP
    index).  Every group lands in exactly one bin and every bin is
    returned (possibly empty only when ``n_lps > len(groups)``, which
    :meth:`ClusterTopology.assign` never requests).  Within a bin the
    group names are sorted, so builders see a canonical local list.
    """
    if n_lps < 1:
        raise ValueError("n_lps must be >= 1")
    order = sorted(groups, key=lambda g: (-g.weight, g.name))
    loads = [0.0] * n_lps
    bins: list[list[str]] = [[] for _ in range(n_lps)]
    for g in order:
        lp = min(range(n_lps), key=lambda i: (loads[i], i))
        loads[lp] += g.weight
        bins[lp].append(g.name)
    return [sorted(b) for b in bins]


@dataclass(frozen=True)
class ClusterTopology:
    """The deployed shape of a run, ready for automatic partitioning.

    ``builder(ctx, local_groups)`` populates one LP: it is called once
    per derived LP with the LP's :class:`~repro.sim.parallel.lp.
    LPContext` and the sorted names of the node groups that LP owns.
    The builder must deploy each named group's processes on that
    group's node(s) and declare everything else remote -- the node-
    alignment the kernel validates at init follows from that
    discipline plus the exactly-once group assignment this module
    guarantees.
    """

    groups: tuple[NodeGroup, ...]
    builder: Callable[[Any, list[str]], None]
    name: str = "topology"

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("ClusterTopology needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names: {names}")
        object.__setattr__(self, "groups", tuple(self.groups))

    @property
    def total_weight(self) -> float:
        return sum(g.weight for g in self.groups)

    def assign(self, n_lps: int) -> list[list[str]]:
        """Derived partition: group names per LP, never more LPs than
        groups (an empty LP would just stall at every barrier)."""
        n_lps = max(1, min(n_lps, len(self.groups)))
        return greedy_assign(self.groups, n_lps)
