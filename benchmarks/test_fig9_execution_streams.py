"""Figure 9: too few execution streams (C1 vs C2).

C1 gives each HEPnOS server only 5 handler execution streams; newly
spawned ULTs wait in the Argobots handler pool, so the *target handler
time* becomes a visible share of the cumulative target RPC execution
time for sdskv_put_packed.  C2 adds 15 more streams: in the paper,
cumulative time improves 53.3% and the handler share drops from 26.6%
to 14%.  The shape criteria assert the same direction at comparable
magnitude.
"""

from repro.experiments import (
    TABLE_IV,
    ascii_table,
    format_seconds,
    run_hepnos_experiment,
)
from .conftest import run_once

EVENTS_PER_CLIENT = 2048


def _run_pair():
    return {
        name: run_hepnos_experiment(
            TABLE_IV[name], events_per_client=EVENTS_PER_CLIENT
        )
        for name in ("C1", "C2")
    }


def test_fig9_execution_streams(benchmark, report):
    results = run_once(benchmark, _run_pair)
    c1, c2 = results["C1"], results["C2"]

    rows = []
    for r in (c1, c2):
        breakdown = r.target_breakdown()
        rows.append(
            {
                "config": r.config.name,
                "threads (ESs)": r.config.threads,
                "cumulative target RPC time": format_seconds(
                    r.cumulative_target_time
                ),
                "handler share": f"{100 * r.handler_time_fraction:.1f}%",
                "handler time": format_seconds(breakdown["target_handler_time"]),
                "execution time": format_seconds(breakdown["target_execution_time"]),
            }
        )
    report.append("Figure 9: cumulative target RPC execution time (sdskv_put_packed)")
    report.append(ascii_table(rows))

    improvement = 1 - c2.cumulative_target_time / c1.cumulative_target_time
    report.append(
        f"C2 improves cumulative target RPC time by {100 * improvement:.1f}% "
        f"(paper: 53.3%)"
    )

    # Shape 1: C1's handler time is a significant share (paper 26.6%).
    assert c1.handler_time_fraction > 0.08
    # Shape 2: adding execution streams shrinks the handler share and its
    # absolute time.
    assert c2.handler_time_fraction < c1.handler_time_fraction
    assert (
        c2.target_breakdown()["target_handler_time"]
        < 0.5 * c1.target_breakdown()["target_handler_time"]
    )
    # Shape 3: overall cumulative target time improves substantially
    # (paper: 53.3%; require at least 30%).
    assert improvement > 0.30
    benchmark.extra_info["c1_handler_fraction"] = round(c1.handler_time_fraction, 4)
    benchmark.extra_info["c2_handler_fraction"] = round(c2.handler_time_fraction, 4)
    benchmark.extra_info["improvement"] = round(improvement, 4)
