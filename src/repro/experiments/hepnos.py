"""HEPnOS data-loader experiment harness (Figures 9-12).

Deploys a Table IV configuration, runs the data-loader against synthetic
event files, and extracts every quantity the paper's HEPnOS case studies
plot: cumulative target-side RPC execution time with its component
breakdown (Fig 9), blocked-ULT samples versus request start time
(Fig 10), cumulative origin time with the unaccounted component
(Fig 11), and the ``num_ofi_events_read`` sample series (Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..margo import MargoConfig, MargoInstance
from ..net import Fabric
from ..services.hepnos import DataLoader, DataLoaderConfig, HEPnOSService
from ..sim import Simulator, all_of
from ..symbiosys import Stage, SymbiosysCollector
from ..symbiosys.analysis import (
    ProfileSummary,
    blocked_ult_samples,
    ofi_events_series,
    profile_summary,
)
from ..symbiosys.monitor import Monitor, MonitorConfig
from ..workloads import flatten_to_pairs, generate_event_files
from .configs import HEPnOSConfig
from .presets import THETA_KNL, Preset

__all__ = ["HEPnOSExperimentResult", "run_hepnos_experiment", "PUT_PACKED"]

PUT_PACKED = "sdskv_put_packed"

#: Target-side components stacked in Figure 9 (disjoint sub-intervals of
#: t4..t13 on the target).
TARGET_COMPONENTS = (
    "target_handler_time",
    "target_execution_time",
    "target_completion_callback_time",
)


@dataclass
class HEPnOSExperimentResult:
    config: HEPnOSConfig
    collector: SymbiosysCollector
    makespan: float
    events_stored: int
    rpcs_issued: int
    client_addrs: list[str]
    server_addrs: list[str]
    #: PolicyEngines attached by the autotuning extension (if any).
    policy_engines: list = field(default_factory=list)
    #: Online telemetry monitor (when the run was monitored; else None).
    monitor: Optional[Monitor] = None
    _summary: Optional[ProfileSummary] = field(default=None, repr=False)

    @property
    def throughput(self) -> float:
        """Events stored per simulated second."""
        return self.events_stored / self.makespan if self.makespan > 0 else 0.0

    @property
    def summary(self) -> ProfileSummary:
        if self._summary is None:
            self._summary = profile_summary(self.collector)
        return self._summary

    def put_packed_row(self):
        return self.summary.row_for(PUT_PACKED)

    # -- Figure 9 quantities -----------------------------------------------------

    def target_breakdown(self) -> dict[str, float]:
        row = self.put_packed_row()
        return {c: row.breakdown.get(c, 0.0) for c in TARGET_COMPONENTS}

    @property
    def cumulative_target_time(self) -> float:
        return sum(self.target_breakdown().values())

    @property
    def handler_time_fraction(self) -> float:
        breakdown = self.target_breakdown()
        total = sum(breakdown.values())
        return breakdown["target_handler_time"] / total if total > 0 else 0.0

    # -- Figure 11 quantities -------------------------------------------------------

    @property
    def cumulative_origin_time(self) -> float:
        return self.put_packed_row().cumulative_latency

    @property
    def unaccounted_time(self) -> float:
        return self.put_packed_row().unaccounted_time

    @property
    def unaccounted_fraction(self) -> float:
        total = self.cumulative_origin_time
        return self.unaccounted_time / total if total > 0 else 0.0

    # -- Figure 10 / 12 series ---------------------------------------------------------

    def blocked_samples(self, server: Optional[str] = None):
        return blocked_ult_samples(self.collector.all_events(), server)

    def ofi_series(self, client: Optional[str] = None):
        events = self.collector.all_events()
        if client is not None:
            return ofi_events_series(events, client)
        out = []
        for addr in self.client_addrs:
            out.extend(ofi_events_series(events, addr))
        out.sort()
        return out


def run_hepnos_experiment(
    config: HEPnOSConfig,
    *,
    events_per_client: int = 2048,
    mean_event_bytes: int = 1024,
    stage: Stage = Stage.FULL,
    preset: Preset = THETA_KNL,
    pipeline_width: Optional[int] = None,
    seed: int = 7,
    time_limit: float = 300.0,
    collector: Optional[SymbiosysCollector] = None,
    client_policy_factory=None,
    server_policy_factory=None,
    monitoring: Optional[MonitorConfig] = None,
) -> HEPnOSExperimentResult:
    """Deploy ``config``, run the data-loader, and collect the results.

    ``client_policy_factory`` / ``server_policy_factory``, if given, are
    called with each client/server MargoInstance and should return a
    :class:`~repro.symbiosys.policy.PolicyEngine` (or None) -- the
    dynamic-reconfiguration extension.  Engines are returned on the
    result's ``policy_engines`` attribute.

    ``monitoring`` attaches an online :class:`Monitor` to every process
    for the duration of the run (returned as ``result.monitor``).
    """
    sim = Simulator()
    fabric = Fabric(sim, preset.fabric)
    collector = collector or SymbiosysCollector(stage)
    hg_config = preset.hg_config(ofi_max_events=config.ofi_max_events)

    service = HEPnOSService.deploy(
        sim,
        fabric,
        n_servers=config.total_servers,
        servers_per_node=config.servers_per_node,
        n_handler_es=config.threads,
        n_databases=config.databases_per_server,
        backend="map",
        sdskv_costs=preset.map_costs,
        hg_config=hg_config,
        serialization=preset.serialization,
        ctx_switch_cost=preset.ctx_switch_cost,
        instrumentation_factory=collector.create_instrumentation,
    )

    monitor: Optional[Monitor] = None
    if monitoring is not None:
        monitor = Monitor(sim, monitoring, fabric=fabric)
        for server_mi in service.servers:
            monitor.attach(server_mi)
        monitor.start()

    if pipeline_width is None:
        windows = max(1, events_per_client // config.batch_size)
        pipeline_width = min(32, max(2, windows))

    policy_engines = []
    if server_policy_factory is not None:
        for server_mi in service.servers:
            engine = server_policy_factory(server_mi)
            if engine is not None:
                policy_engines.append(engine)

    loaders: list[DataLoader] = []
    client_addrs: list[str] = []
    for i in range(config.total_clients):
        addr = f"cli{i}"
        client_addrs.append(addr)
        mi = MargoInstance(
            sim,
            fabric,
            addr,
            f"cnode{i // config.clients_per_node}",
            config=MargoConfig(
                use_progress_thread=config.client_progress_thread
            ),
            hg_config=hg_config,
            serialization=preset.serialization,
            ctx_switch_cost=preset.ctx_switch_cost,
            instrumentation=collector.create_instrumentation(),
        )
        files = generate_event_files(
            n_files=1,
            events_per_file=events_per_client,
            mean_event_bytes=mean_event_bytes,
            seed=seed + i,
        )
        loader = DataLoader(
            mi,
            service,
            DataLoaderConfig(
                batch_size=config.batch_size,
                pipeline_width=pipeline_width,
                prep_fixed=preset.loader_prep_fixed,
                prep_per_event=preset.loader_prep_per_event,
                response_cost=preset.loader_response_cost,
            ),
        )
        if client_policy_factory is not None:
            engine = client_policy_factory(mi)
            if engine is not None:
                policy_engines.append(engine)
        if monitor is not None:
            monitor.attach(mi)
        loader.load(flatten_to_pairs(files))
        loaders.append(loader)

    all_loaded = all_of(
        sim, (ld.all_done for ld in loaders), name="hepnos-loaders-done"
    )
    finished = sim.run_until_event(all_loaded, limit=time_limit)
    if monitor is not None:
        monitor.stop()
    if not finished:
        raise RuntimeError(
            f"{config.name}: data-loader did not finish within "
            f"{time_limit} simulated seconds"
        )

    result = HEPnOSExperimentResult(
        config=config,
        collector=collector,
        makespan=max(ld.finished_at for ld in loaders),
        events_stored=sum(ld.events_stored for ld in loaders),
        rpcs_issued=sum(ld.client.rpcs_issued for ld in loaders),
        client_addrs=client_addrs,
        server_addrs=[s.addr for s in service.servers],
    )
    result.policy_engines = policy_engines
    result.monitor = monitor
    return result
