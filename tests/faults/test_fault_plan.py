"""FaultPlan and rule-matching semantics (no simulator involved)."""

import math

import pytest

from repro.faults import (
    CrashFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    HandlerFaultRule,
    HangFault,
    PartitionWindow,
    RestartFault,
    WireRule,
)


def test_wire_rule_wildcards_match_anything():
    rule = WireRule()
    assert rule.matches(src="a", dst="b", kind="rpc_request", now=0.0)
    assert rule.matches(src="x", dst="y", kind="rpc_response", now=1e9)


def test_wire_rule_field_matchers():
    rule = WireRule(src="a", dst="b", kind="rpc_request")
    assert rule.matches(src="a", dst="b", kind="rpc_request", now=0.0)
    assert not rule.matches(src="z", dst="b", kind="rpc_request", now=0.0)
    assert not rule.matches(src="a", dst="z", kind="rpc_request", now=0.0)
    assert not rule.matches(src="a", dst="b", kind="rpc_response", now=0.0)


def test_wire_rule_window_is_half_open():
    rule = WireRule(start=1.0, end=2.0)
    assert not rule.matches(src="a", dst="b", kind="k", now=0.999)
    assert rule.matches(src="a", dst="b", kind="k", now=1.0)
    assert rule.matches(src="a", dst="b", kind="k", now=1.999)
    assert not rule.matches(src="a", dst="b", kind="k", now=2.0)


@pytest.mark.parametrize("bad", [-0.1, 1.1])
def test_probability_validated(bad):
    with pytest.raises(ValueError):
        DropRule(probability=bad)


def test_window_validated():
    with pytest.raises(ValueError):
        WireRule(start=2.0, end=1.0)
    with pytest.raises(ValueError):
        WireRule(start=-1.0)


def test_rules_are_keyword_only():
    with pytest.raises(TypeError):
        DropRule("svr")  # positional construction is an API error
    with pytest.raises(TypeError):
        PartitionWindow("a", "b", 0.0, 1.0)


def test_rules_support_replace():
    rule = DropRule(dst="svr", probability=0.5)
    widened = rule.replace(probability=1.0)
    assert widened.probability == 1.0
    assert widened.dst == "svr"
    assert rule.probability == 0.5  # original untouched


def test_duplicate_rule_needs_at_least_one_copy():
    with pytest.raises(ValueError):
        DuplicateRule(copies=0)
    assert DuplicateRule().copies == 1


def test_delay_rule_needs_some_delay():
    with pytest.raises(ValueError):
        DelayRule()
    assert DelayRule(extra=1e-3).spread == 0.0


def test_partition_window_severs_symmetrically():
    w = PartitionWindow(node_a="nA", node_b="nB", start=1.0, end=2.0)
    assert w.severs("nA", "nB", 1.5)
    assert w.severs("nB", "nA", 1.5)
    assert not w.severs("nA", "nB", 0.5)
    assert not w.severs("nA", "nB", 2.0)
    assert not w.severs("nA", "nC", 1.5)


def test_partition_needs_distinct_nodes():
    with pytest.raises(ValueError):
        PartitionWindow(node_a="n", node_b="n", start=0.0, end=1.0)


def test_handler_rule_matching_and_validation():
    rule = HandlerFaultRule(rpc="op", error_probability=1.0)
    assert rule.matches(rpc="op", addr="svr", now=0.0)
    assert not rule.matches(rpc="other", addr="svr", now=0.0)
    scoped = HandlerFaultRule(addr="svr", error_probability=0.5)
    assert scoped.matches(rpc="anything", addr="svr", now=0.0)
    assert not scoped.matches(rpc="anything", addr="other", now=0.0)
    with pytest.raises(ValueError):
        HandlerFaultRule()  # injects nothing
    with pytest.raises(ValueError):
        HandlerFaultRule(stall_probability=0.5)  # stall missing


def test_process_fault_validation():
    with pytest.raises(ValueError):
        CrashFault(addr="s", at=-1.0)
    with pytest.raises(ValueError):
        HangFault(addr="s", at=0.0, duration=0.0)
    with pytest.raises(ValueError):
        RestartFault(addr="s", at=0.0, downtime=0.0)
    assert RestartFault(addr="s", at=0.0, downtime=1.0).warmup == 0.0


def test_plan_normalizes_lists_to_tuples():
    plan = FaultPlan(
        name="p",
        wire_rules=[DropRule(probability=0.1)],
        partitions=[PartitionWindow(node_a="a", node_b="b", start=0, end=1)],
        process_faults=[CrashFault(addr="s", at=1.0)],
        handler_rules=[HandlerFaultRule(error_probability=0.1)],
    )
    assert isinstance(plan.wire_rules, tuple)
    assert isinstance(plan.partitions, tuple)
    assert isinstance(plan.process_faults, tuple)
    assert isinstance(plan.handler_rules, tuple)


def test_plan_is_empty_and_faults_for():
    assert FaultPlan().is_empty
    plan = FaultPlan(
        process_faults=[
            CrashFault(addr="s1", at=1.0),
            HangFault(addr="s2", at=0.5, duration=0.1),
            RestartFault(addr="s1", at=3.0, downtime=1.0),
        ]
    )
    assert not plan.is_empty
    assert [type(f).__name__ for f in plan.faults_for("s1")] == [
        "CrashFault",
        "RestartFault",
    ]
    assert plan.faults_for("nobody") == []


def test_default_windows_are_open_ended():
    rule = DropRule(probability=0.5)
    assert rule.start == 0.0
    assert rule.end == math.inf
