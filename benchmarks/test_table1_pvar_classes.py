"""Table I: PVAR classes exported by the Mercury instrumentation.

Regenerates the class list by querying a live Mercury instance through
the external-tool PVAR interface and checks that all seven classes of
Table I are represented.
"""

from repro.argobots import AbtRuntime
from repro.mercury import HGCore, PvarClass
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.experiments import ascii_table
from .conftest import run_once

PAPER_TABLE_I = {
    "STATE": "Represents any one of a set of discrete states",
    "COUNTER": "Monotonically increasing value",
    "TIMER": "Interval event timer",
    "LEVEL": "Represents the utilization level of a resource",
    "SIZE": "Represents the size of a resource",
    "HIGHWATERMARK": "Highest recorded value",
    "LOWWATERMARK": "Lowest recorded value",
}


def _build_class_table():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    rt = AbtRuntime(sim)
    hg = HGCore(sim, fabric, fabric.create_endpoint("p"), rt)
    session = hg.pvar_session_init()
    by_class: dict[str, list[str]] = {}
    for i in range(session.get_num_pvars()):
        info = session.get_info(i)
        by_class.setdefault(info.pvar_class.value, []).append(info.name)
    session.finalize()
    return by_class


def test_table1_pvar_classes(benchmark, report):
    by_class = run_once(benchmark, _build_class_table)
    rows = [
        {
            "PVAR Class": cls,
            "Description": PAPER_TABLE_I[cls],
            "exported examples": ", ".join(sorted(by_class.get(cls, []))[:2]),
        }
        for cls in PAPER_TABLE_I
    ]
    report.append("Table I: Performance Variable Classes")
    report.append(ascii_table(rows))
    # Shape: every class in the paper's Table I is exported by at least
    # one PVAR.
    assert set(by_class) == set(PAPER_TABLE_I)
    assert set(by_class) == {c.value for c in PvarClass}
    benchmark.extra_info["classes"] = sorted(by_class)
