"""Tests for the Sonata microservice and its filter engine."""

import pytest

from repro.mercury import HGConfig
from repro.services.sonata import (
    SonataClient,
    SonataCosts,
    SonataProvider,
    evaluate_filter,
)
from repro.workloads import generate_json_records
from .conftest import make_service_world, run_ult


# ------------------------------------------------------------ filter engine


def test_filter_leaf_operators():
    doc = {"a": 5, "s": "hello"}
    assert evaluate_filter(doc, {"field": "a", "op": "==", "value": 5})
    assert evaluate_filter(doc, {"field": "a", "op": "!=", "value": 6})
    assert evaluate_filter(doc, {"field": "a", "op": "<", "value": 10})
    assert evaluate_filter(doc, {"field": "a", "op": ">=", "value": 5})
    assert evaluate_filter(doc, {"field": "s", "op": "contains", "value": "ell"})
    assert not evaluate_filter(doc, {"field": "a", "op": ">", "value": 5})


def test_filter_missing_field_is_falsy_for_comparisons():
    assert not evaluate_filter({}, {"field": "x", "op": "<", "value": 1})
    assert not evaluate_filter({}, {"field": "x", "op": "contains", "value": "a"})
    # Equality against None works as stated.
    assert evaluate_filter({}, {"field": "x", "op": "==", "value": None})


def test_filter_and_or_composition():
    doc = {"a": 5, "b": 10}
    q = {
        "and": [
            {"field": "a", "op": "==", "value": 5},
            {"or": [
                {"field": "b", "op": "<", "value": 3},
                {"field": "b", "op": ">", "value": 8},
            ]},
        ]
    }
    assert evaluate_filter(doc, q)


def test_filter_unknown_op_rejected():
    with pytest.raises(ValueError):
        evaluate_filter({}, {"field": "a", "op": "~=", "value": 1})


# ------------------------------------------------------------ provider RPCs


@pytest.fixture
def sonata_world():
    world = make_service_world()
    world.provider = SonataProvider(world.server, provider_id=1)
    world.sonata = SonataClient(world.client)
    return world


def test_create_store_fetch_roundtrip(sonata_world):
    w = sonata_world
    records = [{"id": i, "v": i * i} for i in range(10)]

    def body():
        yield from w.sonata.create_database("svr", 1, "coll")
        ids = yield from w.sonata.store_multi("svr", 1, "coll", records)
        first = yield from w.sonata.fetch("svr", 1, "coll", ids[0])
        size = yield from w.sonata.size("svr", 1, "coll")
        return ids, first, size

    ids, first, size = run_ult(w, body())
    assert ids == list(range(10))
    assert first == {"id": 0, "v": 0}
    assert size == 10


def test_store_multi_batching_preserves_ids(sonata_world):
    w = sonata_world
    records = [{"id": i} for i in range(25)]

    def body():
        yield from w.sonata.create_database("svr", 1, "c")
        ids = yield from w.sonata.store_multi(
            "svr", 1, "c", records, batch_size=10
        )
        return ids

    ids = run_ult(w, body())
    assert ids == list(range(25))


def test_duplicate_collection_returns_error(sonata_world):
    w = sonata_world

    def body():
        r1 = yield from w.sonata.create_database("svr", 1, "dup")
        r2 = yield from w.sonata.create_database("svr", 1, "dup")
        return r1, r2

    r1, r2 = run_ult(w, body())
    assert r1 == 0
    assert r2 == -1


def test_fetch_out_of_range_returns_none(sonata_world):
    w = sonata_world

    def body():
        yield from w.sonata.create_database("svr", 1, "c")
        doc = yield from w.sonata.fetch("svr", 1, "c", 99)
        return doc

    assert run_ult(w, body()) is None


def test_unknown_collection_fails_loudly(sonata_world):
    w = sonata_world

    def body():
        yield from w.sonata.fetch("svr", 1, "nope", 0)

    w.client.client_ult(body())
    from repro.margo import RemoteRpcError

    with pytest.raises(RemoteRpcError, match="unknown Sonata collection"):
        w.sim.run(until=1.0)


def test_remote_filter_executes_query(sonata_world):
    w = sonata_world
    records = generate_json_records(60)

    def body():
        yield from w.sonata.create_database("svr", 1, "t")
        yield from w.sonata.store_multi("svr", 1, "t", records, batch_size=20)
        matches = yield from w.sonata.filter(
            "svr", 1, "t", {"field": "tag", "op": "==", "value": "alpha"}
        )
        return matches

    matches = run_ult(w, body(), until=5.0)
    expected = [r for r in records if r["tag"] == "alpha"]
    assert matches == expected
    assert 0 < len(matches) < len(records)


def test_large_metadata_overflows_eager_buffer():
    """A 5000-record batch exceeds the eager buffer: the internal RDMA
    path engages (the Figure 7 setup)."""
    world = make_service_world(hg_config=HGConfig(eager_size=4096))
    world.server.hg.pvars_enabled = True
    world.client.hg.pvars_enabled = True
    SonataProvider(world.server, provider_id=1)
    sonata = SonataClient(world.client)
    records = generate_json_records(2000)

    def body():
        yield from sonata.create_database("svr", 1, "big")
        yield from sonata.store_multi("svr", 1, "big", records, batch_size=500)

    run_ult(world, body(), until=5.0)
    sess = world.client.hg.pvar_session_init()
    assert sess.read_by_name("eager_overflow_count") == 4


def test_store_cost_scales_with_records():
    durations = {}
    for n in (50, 500):
        world = make_service_world()
        SonataProvider(world.server, provider_id=1)
        sonata = SonataClient(world.client)
        records = generate_json_records(n)

        def body(recs=records):
            yield from sonata.create_database("svr", 1, "x")
            t0 = world.sim.now
            yield from sonata.store_multi("svr", 1, "x", recs)
            return world.sim.now - t0

        durations[n] = run_ult(world, body(), until=10.0)
    assert durations[500] > 5 * durations[50]


def test_store_batch_size_validation(sonata_world):
    w = sonata_world

    def body():
        yield from w.sonata.create_database("svr", 1, "c")
        yield from w.sonata.store_multi("svr", 1, "c", [{"a": 1}], batch_size=0)

    w.client.client_ult(body())
    with pytest.raises(ValueError, match="batch_size"):
        w.sim.run(until=1.0)
