"""Tests for profile/trace export (CSV and JSON round-trips)."""

import csv
import io
import json

import pytest

from repro.symbiosys import Stage
from repro.symbiosys.analysis import stitch_traces, trace_summary
from repro.symbiosys.export import (
    events_to_json,
    load_events_json,
    profile_to_rows,
    write_profile_csv,
)
from .conftest import drive_requests, make_instrumented_world


def run_world(n=2):
    world = make_instrumented_world(Stage.FULL)
    results = drive_requests(world, n)
    world.sim.run(until=1.0)
    assert len(results) == n
    return world


def test_profile_rows_cover_all_keys_and_intervals():
    world = run_world()
    store = world.collector.merged_origin_profile()
    rows = profile_to_rows(store, world.collector.registry)
    assert rows
    expected = sum(len(store.intervals_for(k)) for k in store.keys())
    assert len(rows) == expected
    for row in rows:
        assert row["callpath"].startswith("0x")
        assert row["count"] >= 1
        assert row["min"] <= row["mean"] <= row["max"]


def test_profile_rows_sorted_by_total_desc():
    world = run_world()
    rows = profile_to_rows(world.collector.merged_origin_profile())
    totals = [r["total"] for r in rows]
    assert totals == sorted(totals, reverse=True)


def test_profile_rows_decode_names_with_registry():
    world = run_world()
    rows = profile_to_rows(
        world.collector.merged_origin_profile(), world.collector.registry
    )
    names = {r["callpath_name"] for r in rows}
    assert "front_op" in names
    assert "front_op -> leaf_op" in names


def test_csv_output_parses(tmp_path):
    world = run_world()
    path = tmp_path / "profile.csv"
    text = write_profile_csv(
        world.collector.merged_origin_profile(),
        world.collector.registry,
        path=str(path),
    )
    assert path.read_text() == text
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed
    assert float(parsed[0]["total"]) > 0


def test_events_json_roundtrip(tmp_path):
    world = run_world()
    events = world.collector.all_events()
    path = tmp_path / "trace.json"
    doc = events_to_json(events, path=str(path), indent=2)
    assert json.loads(path.read_text()) == json.loads(doc)
    restored = load_events_json(doc)
    assert len(restored) == len(events)
    for a, b in zip(events, restored):
        assert a.kind is b.kind
        assert a.request_id == b.request_id
        assert a.local_ts == b.local_ts
        assert a.pvars == b.pvars
        assert a.sysstats == b.sysstats


def test_restored_events_stitch_identically():
    """Offline stitching of exported traces matches in-process results."""
    world = run_world()
    events = world.collector.all_events()
    live = trace_summary(world.collector)
    offline = stitch_traces(load_events_json(events_to_json(events)))
    assert set(live.requests) == set(offline.requests)
    for rid, req in live.requests.items():
        other = offline.requests[rid]
        assert len(req.spans) == len(other.spans)
        for sid, span in req.spans.items():
            assert abs(span.t1 - other.spans[sid].t1) < 1e-12
            assert span.rpc_name == other.spans[sid].rpc_name
