"""Cost-model presets.

``THETA_KNL`` approximates the evaluation platform: Intel Knights
Landing cores are slow on serial code (roughly 3-4x a contemporary Xeon
core), so per-operation CPU costs are scaled up accordingly, while the
Aries fabric remains fast.  The absolute values are order-of-magnitude
estimates -- the reproduction targets relative shapes, not absolute
times -- but using one consistent preset across every HEPnOS experiment
keeps the configurations comparable the way Table IV intends.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mercury import HGConfig, SerializationModel
from ..net import FabricConfig
from ..services.sdskv import BackendCosts

__all__ = ["Preset", "THETA_KNL", "FAST_TEST"]


@dataclass(frozen=True)
class Preset:
    name: str
    serialization: SerializationModel
    fabric: FabricConfig
    ctx_switch_cost: float
    map_costs: BackendCosts
    #: Data-loader client CPU model (file prep per window/event,
    #: per-response bookkeeping).
    loader_prep_fixed: float = 0.0
    loader_prep_per_event: float = 0.0
    loader_response_cost: float = 0.0

    def hg_config(self, ofi_max_events: int = 16, eager_size: int = 4096) -> HGConfig:
        if self.name == "theta-knl":
            return HGConfig(
                eager_size=eager_size,
                ofi_max_events=ofi_max_events,
                post_cost=1.0e-6,
                callback_cost=0.4e-6,
            )
        return HGConfig(eager_size=eager_size, ofi_max_events=ofi_max_events)


THETA_KNL = Preset(
    name="theta-knl",
    serialization=SerializationModel(
        ser_fixed=2.0e-6,
        ser_per_byte=0.8e-9,
        deser_fixed=2.5e-6,
        deser_per_byte=1.0e-9,
    ),
    fabric=FabricConfig(
        latency=1.8e-6,
        bandwidth=8e9,
        intra_node_latency=0.5e-6,
        intra_node_bandwidth=20e9,
    ),
    ctx_switch_cost=0.3e-6,
    map_costs=BackendCosts(
        put_fixed=0.3e-6,
        put_per_byte=0.05e-9,
        get_fixed=0.5e-6,
        get_per_byte=0.06e-9,
        scan_per_item=0.06e-6,
    ),
    loader_prep_fixed=2.0e-6,
    loader_prep_per_event=0.1e-6,
    loader_response_cost=2.5e-6,
)

#: Cheap defaults for unit-style experiment tests.
FAST_TEST = Preset(
    name="fast-test",
    serialization=SerializationModel(),
    fabric=FabricConfig(),
    ctx_switch_cost=50e-9,
    map_costs=BackendCosts(
        put_fixed=0.5e-6,
        put_per_byte=0.10e-9,
        get_fixed=0.4e-6,
        get_per_byte=0.05e-9,
        scan_per_item=0.05e-6,
    ),
)
