"""Shared benchmark infrastructure.

Every file in this directory regenerates one table or figure from the
paper (see DESIGN.md §3).  Each benchmark

* runs the corresponding experiment once under ``pytest-benchmark``
  (``rounds=1`` -- these are full workload simulations, not microbenches),
* prints the paper-style rows/series (visible with ``pytest -s``),
* asserts the *shape* criteria from DESIGN.md (who wins, by roughly what
  factor), and
* records the headline numbers in ``benchmark.extra_info`` so the JSON
  output carries the measured values.

Absolute numbers are not expected to match the paper (the substrate is a
simulator, not a Cray XC40); shapes are.
"""

import pytest


def run_once(benchmark, fn, **extra):
    """Run ``fn`` exactly once under the benchmark timer."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    return result


@pytest.fixture
def report():
    """Collect printable lines and emit them at the end of the bench."""
    lines = []
    yield lines
    if lines:
        print()
        for line in lines:
            print(line)
