"""Automatic topology partitioning: bin-packing and derived plans.

The load-bearing claims:

* ``greedy_assign`` is a pure function of ``(groups, n_lps)``: every
  node group lands in exactly one LP (node-aligned exact cover), the
  packing is deterministic, and weights balance heaviest-first.
* ``PartitionPlan.from_topology`` bakes the target LP count into the
  plan, so executing the *same derived plan* under ``--workers`` 1, 2,
  or 4 yields byte-identical digests -- including on a jittered fabric
  with a declared ``jitter_bound`` (the bounded-jitter acceptance
  criterion).
"""

import pytest

from repro.net import FabricConfig
from repro.sim.parallel import (
    ClusterTopology,
    NodeGroup,
    PartitionPlan,
    greedy_assign,
    run_partitioned,
)

N_SERVERS = 6


def _echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp["n"]})


def _topo_builder(ctx, local_names):
    """Deploy whatever groups the packing assigned: server nodes
    ``g<i>`` (one echo server each) and/or the client node ``gc``."""
    local = set(local_names)
    for i in range(N_SERVERS):
        if f"g{i}" not in local:
            ctx.register_remote(f"s{i}", f"g{i}")
    if "gc" not in local:
        ctx.register_remote("cli", "gc")
    for i in range(N_SERVERS):
        if f"g{i}" in local:
            mi = ctx.process(f"s{i}", f"g{i}", n_handler_es=1)
            mi.register("echo", _echo_handler)
    if "gc" in local:
        mi = ctx.process("cli", "gc")
        mi.register("echo")
        done = ctx.cluster.sim.event("topo-done")

        def body():
            for i in range(N_SERVERS):
                out = yield from mi.forward(f"s{i}", "echo", {"n": i})
                assert out["echo"] == i
            done.succeed(ctx.cluster.sim.now)

        mi.client_ult(body(), name="topo-client")
        ctx.set_done(done)


def _topology(**fabric_kw):
    groups = [
        NodeGroup(f"g{i}", weight=float(1 + i % 3)) for i in range(N_SERVERS)
    ] + [NodeGroup("gc", weight=2.0)]
    return ClusterTopology(
        groups=tuple(groups), builder=_topo_builder, name="topo_echo"
    )


# -- greedy bin-packing ----------------------------------------------------


def test_greedy_assign_is_a_node_aligned_exact_cover():
    groups = [NodeGroup(f"n{i}", weight=float((i * 7) % 5)) for i in range(23)]
    for n_lps in (1, 2, 3, 5, 8, 23):
        bins = greedy_assign(groups, n_lps)
        assert len(bins) == n_lps
        placed = [name for b in bins for name in b]
        # Exact cover: every node group in exactly one LP.
        assert sorted(placed) == sorted(g.name for g in groups)
        assert all(b == sorted(b) for b in bins)
        # Pure function: same inputs, same packing.
        assert greedy_assign(groups, n_lps) == bins


def test_greedy_assign_balances_weights():
    groups = [NodeGroup(f"n{i}", weight=1.0) for i in range(12)]
    bins = greedy_assign(groups, 4)
    sizes = sorted(len(b) for b in bins)
    assert sizes == [3, 3, 3, 3]

    heavy = [NodeGroup("big", weight=10.0)] + [
        NodeGroup(f"n{i}", weight=1.0) for i in range(5)
    ]
    bins = greedy_assign(heavy, 2)
    big_bin = next(b for b in bins if "big" in b)
    # Heaviest-first: the big group gets an LP to itself while the
    # light groups pile onto the other.
    assert big_bin == ["big"]


def test_group_and_topology_validation():
    with pytest.raises(ValueError, match="name"):
        NodeGroup("")
    with pytest.raises(ValueError, match="weight"):
        NodeGroup("n", weight=-1.0)
    with pytest.raises(ValueError, match="at least one"):
        ClusterTopology(groups=(), builder=_topo_builder)
    with pytest.raises(ValueError, match="duplicate"):
        ClusterTopology(
            groups=(NodeGroup("a"), NodeGroup("a")), builder=_topo_builder
        )


def test_assign_caps_lps_at_group_count():
    topo = _topology()
    assert len(topo.assign(100)) == len(topo.groups)
    assert len(topo.assign(1)) == 1


# -- derived plans ---------------------------------------------------------


def test_from_topology_bakes_the_lp_count():
    plan = PartitionPlan.from_topology(_topology(), 3)
    assert plan.n_lps == 3
    assert plan.name == "topo_echo"
    assert [lp.name for lp in plan.lps] == ["part0", "part1", "part2"]
    with pytest.raises(ValueError, match="workers"):
        PartitionPlan.from_topology(_topology(), 0)


def test_from_topology_digests_identical_across_worker_counts():
    """The same derived plan executes byte-identically under any
    worker count -- the partition is plan state, not run state."""
    reference = None
    for workers in (1, 2, 4):
        result = run_partitioned(
            PartitionPlan.from_topology(_topology(), 3), workers=workers
        )
        assert result.done
        if reference is None:
            reference = result
        else:
            assert reference.verify_mismatches(result) == []
            assert reference.digests() == result.digests()


def test_from_topology_jittered_digests_identical_across_worker_counts():
    """The bounded-jitter acceptance criterion at unit scale: a
    jittered fabric with a declared jitter_bound runs multi-worker
    byte-identical to serial on an auto-partitioned plan."""
    config = FabricConfig(jitter_sigma=0.4, jitter_bound=1e-6)

    def make_plan():
        return PartitionPlan.from_topology(
            _topology(), 3, fabric_config=config
        )

    assert make_plan().lookahead() == config.latency - 1e-6
    serial = run_partitioned(make_plan(), workers=1)
    parallel = run_partitioned(make_plan(), workers=4, verify=True)
    assert parallel.fallback is None
    assert serial.verify_mismatches(parallel) == []
    assert serial.digests() == parallel.digests()
