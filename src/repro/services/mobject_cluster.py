"""Multi-node Mobject: object placement over an SSG group.

Production Mobject shards objects across provider nodes; clients place
each object by hashing its id over the group membership (consistent
key-based member selection).  :class:`MobjectCluster` deploys N provider
nodes and :class:`MobjectClusterClient` routes every RADOS-subset op to
the owning node -- composing Mobject, SSG, and the Margo substrate.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..margo import MargoInstance
from ..net import Fabric
from ..sim import Simulator
from ..ssg import SSGGroup
from .mobject import MobjectClient, MobjectProviderNode

__all__ = ["MobjectCluster", "MobjectClusterClient"]


class MobjectCluster:
    """N Mobject provider nodes joined into one SSG group."""

    def __init__(self) -> None:
        self.nodes: list[MobjectProviderNode] = []
        self.group = SSGGroup("mobject")

    @classmethod
    def deploy(
        cls,
        sim: Simulator,
        fabric: Fabric,
        *,
        n_provider_nodes: int,
        n_handler_es: int = 4,
        instrumentation_factory=None,
        addr_prefix: str = "mobject",
        node_prefix: str = "mnode",
    ) -> "MobjectCluster":
        if n_provider_nodes < 1:
            raise ValueError("need at least one provider node")
        cluster = cls()
        mk_instr = instrumentation_factory or (lambda: None)
        for i in range(n_provider_nodes):
            node = MobjectProviderNode(
                sim,
                fabric,
                f"{addr_prefix}{i}",
                f"{node_prefix}{i}",
                n_handler_es=n_handler_es,
                instrumentation=mk_instr(),
            )
            cluster.nodes.append(node)
            cluster.group.join(node.addr)
        return cluster

    @property
    def size(self) -> int:
        return self.group.size

    def owner_of(self, oid: str) -> str:
        return self.group.member_for_key(oid)


class MobjectClusterClient:
    """Placement-aware client: routes each object to its owner node."""

    def __init__(self, mi: MargoInstance, cluster: MobjectCluster):
        self.mi = mi
        self.cluster = cluster
        self._client = MobjectClient(mi)

    def write_op(self, oid: str, data: bytes, offset: int = 0) -> Generator:
        out = yield from self._client.write_op(
            self.cluster.owner_of(oid), oid, data, offset
        )
        return out

    def read_op(self, oid: str) -> Generator:
        out = yield from self._client.read_op(self.cluster.owner_of(oid), oid)
        return out

    def stat_op(self, oid: str) -> Generator:
        out = yield from self._client.stat_op(self.cluster.owner_of(oid), oid)
        return out

    def delete_op(self, oid: str) -> Generator:
        out = yield from self._client.delete_op(self.cluster.owner_of(oid), oid)
        return out
