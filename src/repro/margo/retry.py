"""Client-side resilience policy for ``MargoInstance.forward``.

Real Mochi clients wrap ``margo_forward_timed`` in retry loops (e.g. the
SSG group-management and Bedrock bootstrap paths).  :class:`RetryPolicy`
captures that pattern declaratively: a per-attempt timeout, a bounded
number of attempts, exponential backoff with optional jitter, and an
optional fail-over target list rotated on each retry.

The policy is pure data (frozen, keyword-only, :meth:`replace`-able like
the other knob dataclasses); the retry loop itself lives in
``MargoInstance.forward``.  Jittered backoff draws from the instance's
seeded RNG stream so fault campaigns replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Replaceable

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, kw_only=True)
class RetryPolicy(Replaceable):
    """How ``forward`` behaves when a response does not arrive in time.

    An attempt fails when its per-attempt ``timeout`` expires (the handle
    is cancelled and any late response is dropped).  Failed attempts are
    retried up to ``max_attempts`` total tries, sleeping
    ``backoff * backoff_factor**(attempt-1)`` (clamped to ``max_backoff``,
    plus uniform jitter) between tries.  If ``failover`` targets are
    given, retries rotate through them round-robin starting from the
    original target.
    """

    #: Total tries, including the first (1 = no retry).
    max_attempts: int = 3
    #: Per-attempt response deadline, seconds.
    timeout: float = 1.0
    #: Base delay before the first retry, seconds.
    backoff: float = 1e-3
    #: Multiplier applied per subsequent retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Upper clamp on the (pre-jitter) backoff delay, seconds.
    max_backoff: float = 1.0
    #: Uniform jitter fraction in [0, 1]: the sleep is scaled by a factor
    #: drawn from ``[1 - jitter, 1 + jitter]``.  0 disables jitter.
    jitter: float = 0.0
    #: Alternate target addresses to rotate through on retries.  Empty
    #: means always retry the original target.
    failover: tuple[str, ...] = field(default=())
    #: Also retry when the remote handler raised (RemoteRpcError).  Off
    #: by default: handler errors are usually not transient.
    retry_remote_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        object.__setattr__(self, "failover", tuple(self.failover))

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff sleep before retry number ``attempt`` (1-based).

        ``rng`` is a numpy Generator used only when ``jitter`` is set.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.backoff * self.backoff_factor ** (attempt - 1),
                   self.max_backoff)
        if self.jitter > 0 and rng is not None:
            base *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base

    def target_for(self, original: str, attempt: int) -> str:
        """Target address for attempt number ``attempt`` (1-based)."""
        if not self.failover or attempt <= 1:
            return original
        ring = (original,) + self.failover
        return ring[(attempt - 1) % len(ring)]
