"""Shared test harness helpers.

One home for the world-builders the margo / faults / services suites
used to duplicate: a bare Margo pair on a fabric (``make_pair``,
``make_service_world``), a Cluster-managed echo world
(``make_echo_cluster``), and the ULT drivers (``run_client_calls``,
``run_ult``).  The per-directory ``conftest.py`` files re-export these
so existing ``from .conftest import ...`` lines keep working.
"""

from types import SimpleNamespace

from repro.cluster import Cluster
from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator


def echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp})


def make_pair(
    *,
    server_config=None,
    client_config=None,
    hg_config=None,
    instrumentation_factory=None,
    same_node=False,
):
    """A client and a server MargoInstance on a shared fabric."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mk_instr = instrumentation_factory or (lambda mi_addr: None)
    server = MargoInstance(
        sim,
        fabric,
        "svr",
        "n0",
        config=server_config or MargoConfig(n_handler_es=2),
        hg_config=hg_config,
        instrumentation=mk_instr("svr"),
    )
    client = MargoInstance(
        sim,
        fabric,
        "cli",
        "n0" if same_node else "n1",
        config=client_config or MargoConfig(),
        hg_config=hg_config,
        instrumentation=mk_instr("cli"),
    )
    return SimpleNamespace(sim=sim, fabric=fabric, server=server, client=client)


def make_service_world(n_handler_es=2, hg_config=None, server_addr="svr"):
    """Like ``make_pair`` but with the handler-ES count as the lead knob."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(
        sim,
        fabric,
        server_addr,
        "n0",
        config=MargoConfig(n_handler_es=n_handler_es),
        hg_config=hg_config,
    )
    client = MargoInstance(sim, fabric, "cli", "n1", hg_config=hg_config)
    return SimpleNamespace(sim=sim, fabric=fabric, server=server, client=client)


def make_echo_cluster(*, plan=None, seed=0, retry=None, stage=None, **cluster_kw):
    """One server + one client on separate nodes under a Cluster, echo
    RPC registered.  Extra keywords go to :class:`~repro.cluster.Cluster`
    (``validate=...``, ``monitoring=...``, ...)."""
    cluster = Cluster(
        seed=seed, stage=stage, fault_plan=plan, retry=retry, **cluster_kw
    )
    server = cluster.process("svr", "nA", n_handler_es=1)
    client = cluster.process("cli", "nB")
    server.register("echo", echo_handler)
    client.register("echo")
    return SimpleNamespace(
        cluster=cluster,
        sim=cluster.sim,
        server=server,
        client=client,
        injector=cluster.injector,
    )


def run_client_calls(world, calls, name="c"):
    """Spawn one client ULT per (rpc_name, payload); collect outputs."""
    results = []

    def body(rpc_name, payload):
        out = yield from world.client.forward("svr", rpc_name, payload)
        results.append(out)

    for i, (rpc_name, payload) in enumerate(calls):
        world.client.client_ult(body(rpc_name, payload), name=f"{name}{i}")
    return results


def run_ult(world, gen, until=2.0, name="test"):
    """Run one client ULT to completion; return its result."""
    done = {}

    def wrapper():
        result = yield from gen
        done["result"] = result

    world.client.client_ult(wrapper(), name=name)
    world.sim.run_until(lambda: "result" in done, limit=until)
    assert "result" in done, "client ULT did not finish in time"
    return done.get("result")
