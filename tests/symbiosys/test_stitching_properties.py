"""Property-based tests for trace stitching over synthetic event sets.

Random request trees with random per-process clock offsets are encoded
into raw TraceEvents (the stitcher's input format) and stitched back;
the reconstruction must recover the tree exactly and keep corrected
timestamps causally ordered.
"""

from hypothesis import given, settings, strategies as st

from repro.symbiosys.analysis import estimate_clock_offsets, stitch_traces
from repro.symbiosys.tracing import EventKind, TraceEvent


def build_events(tree, offsets, *, rpc_latency=1e-4, work=5e-5):
    """Encode a span tree into the four TraceEvents per span.

    ``tree`` is (origin_process, target_process, children) nested tuples.
    True timestamps are synthesized depth-first; local timestamps apply
    the per-process offsets.
    """
    events = []
    state = {"span": 1, "lamport": {}, "t": 0.0}

    def lamport(process, floor=0):
        nxt = max(state["lamport"].get(process, 0), floor) + 1
        state["lamport"][process] = nxt
        return nxt

    def emit(kind, process, true_ts, span_id, parent, rid, order, lam):
        events.append(
            TraceEvent(
                kind=kind,
                request_id=rid,
                order=order,
                lamport=lam,
                process=process,
                local_ts=true_ts + offsets.get(process, 0.0),
                true_ts=true_ts,
                rpc_name=f"op{span_id}",
                callpath=span_id,
                span_id=span_id,
                parent_span_id=parent,
            )
        )

    def walk(node, parent_span, rid, depth):
        origin, target, children = node
        span_id = state["span"]
        state["span"] += 1
        t1 = state["t"]
        state["t"] += rpc_latency
        l1 = lamport(origin)
        emit(EventKind.ORIGIN_FORWARD, origin, t1, span_id, parent_span, rid, 0, l1)
        t5 = state["t"]
        state["t"] += work
        l5 = lamport(target, floor=l1)
        emit(EventKind.TARGET_ULT_START, target, t5, span_id, parent_span, rid, 1, l5)
        for child in children:
            walk(child, span_id, rid, depth + 1)
        t8 = state["t"]
        state["t"] += rpc_latency
        l8 = lamport(target)
        emit(EventKind.TARGET_RESPOND, target, t8, span_id, parent_span, rid, 2, l8)
        t14 = state["t"]
        state["t"] += work
        l14 = lamport(origin, floor=l8)
        emit(EventKind.ORIGIN_COMPLETE, origin, t14, span_id, parent_span, rid, 3, l14)
        return span_id

    walk(tree, None, "req-1", 0)
    return events


processes = st.sampled_from(["p0", "p1", "p2", "p3"])


@st.composite
def span_trees(draw, depth=0, origin=None):
    """Physically consistent trees: a nested RPC originates from the
    process that is serving its parent."""
    if origin is None:
        origin = draw(processes)
    target = draw(processes.filter(lambda p: p != origin))
    if depth >= 2:
        children = []
    else:
        children = draw(
            st.lists(
                span_trees(depth=depth + 1, origin=target),
                min_size=0,
                max_size=3,
            )
        )
    return (origin, target, children)


def count_spans(tree):
    _, _, children = tree
    return 1 + sum(count_spans(c) for c in children)


@given(
    tree=span_trees(),
    offsets=st.dictionaries(
        processes, st.floats(-1.0, 1.0, allow_nan=False), max_size=4
    ),
)
@settings(max_examples=60, deadline=None)
def test_stitching_recovers_tree_and_order(tree, offsets):
    events = build_events(tree, offsets)
    summary = stitch_traces(events)
    assert len(summary.requests) == 1
    (req,) = summary.requests.values()
    assert len(req.spans) == count_spans(tree)
    assert len(req.roots) == 1
    root = req.roots[0]
    # Every span is complete, causally ordered, and nested in its parent.
    for span in root.walk():
        assert span.complete
        assert span.t1 <= span.t5 <= span.t8 <= span.t14
        for child in span.children:
            assert span.t1 <= child.t1
            assert child.t14 <= span.t14 + 1e-9


@given(
    tree=span_trees(),
    offsets=st.dictionaries(
        processes, st.floats(-0.5, 0.5, allow_nan=False), min_size=4, max_size=4
    ),
)
@settings(max_examples=40, deadline=None)
def test_offset_estimation_recovers_relative_offsets(tree, offsets):
    events = build_events(tree, offsets)
    est = estimate_clock_offsets(events)
    # For every pair of processes that exchanged messages, the estimated
    # relative offset matches the injected one (symmetric latencies).
    seen = {ev.process for ev in events}
    for a in seen:
        for b in seen:
            if a >= b or a not in est or b not in est:
                continue
            # Only check pairs in the same connected component.
            true_rel = offsets.get(b, 0.0) - offsets.get(a, 0.0)
            est_rel = est[b] - est[a]
            assert abs(est_rel - true_rel) < 1e-6


@given(st.randoms())
@settings(max_examples=20, deadline=None)
def test_stitching_is_order_insensitive(rnd):
    tree = ("p0", "p1", [("p1", "p2", []), ("p1", "p3", [])])
    events = build_events(tree, {"p1": 0.3, "p2": -0.2})
    shuffled = list(events)
    rnd.shuffle(shuffled)
    a = stitch_traces(events)
    b = stitch_traces(shuffled)
    (ra,) = a.requests.values()
    (rb,) = b.requests.values()
    assert {s.span_id for s in ra.roots[0].walk()} == {
        s.span_id for s in rb.roots[0].walk()
    }
    for sid in ra.spans:
        assert abs(ra.spans[sid].t1 - rb.spans[sid].t1) < 1e-12
