"""Margo test harness helpers."""

from types import SimpleNamespace

from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator


def make_pair(
    *,
    server_config=None,
    client_config=None,
    hg_config=None,
    instrumentation_factory=None,
    same_node=False,
):
    """A client and a server MargoInstance on a shared fabric."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    mk_instr = instrumentation_factory or (lambda mi_addr: None)
    server = MargoInstance(
        sim,
        fabric,
        "svr",
        "n0",
        config=server_config or MargoConfig(n_handler_es=2),
        hg_config=hg_config,
        instrumentation=mk_instr("svr"),
    )
    client = MargoInstance(
        sim,
        fabric,
        "cli",
        "n0" if same_node else "n1",
        config=client_config or MargoConfig(),
        hg_config=hg_config,
        instrumentation=mk_instr("cli"),
    )
    return SimpleNamespace(sim=sim, fabric=fabric, server=server, client=client)


def echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp})


def run_client_calls(world, calls, name="c"):
    """Spawn one client ULT per (rpc_name, payload); collect outputs."""
    results = []

    def body(rpc_name, payload):
        out = yield from world.client.forward("svr", rpc_name, payload)
        results.append(out)

    for i, (rpc_name, payload) in enumerate(calls):
        world.client.client_ult(body(rpc_name, payload), name=f"{name}{i}")
    return results
