"""Parallel fan-out determinism: --jobs N must equal --jobs 1."""

from repro.experiments.overhead import run_overhead_study
from repro.experiments.runner import map_cells, run_fault_campaigns
from repro.symbiosys import Stage


def _square(cell):
    return cell["x"] * cell["x"]


def test_map_cells_inline_matches_pool():
    cells = [{"x": i} for i in range(6)]
    inline = map_cells(_square, cells, jobs=1)
    pooled = map_cells(_square, cells, jobs=3)
    assert inline == pooled == [0, 1, 4, 9, 16, 25]


def test_map_cells_single_cell_skips_pool():
    assert map_cells(_square, [{"x": 4}], jobs=8) == [16]


def test_overhead_study_jobs_identical_sim_quantities():
    kwargs = dict(
        repetitions=2,
        events_per_client=32,
        stages=(Stage.OFF, Stage.FULL),
    )
    serial = run_overhead_study(**kwargs, jobs=1)
    parallel = run_overhead_study(**kwargs, jobs=2)
    for stage in (Stage.OFF, Stage.FULL):
        assert (
            serial.timings[stage].sim_makespans
            == parallel.timings[stage].sim_makespans
        )
        assert (
            serial.timings[stage].trace_events
            == parallel.timings[stage].trace_events
        )


def test_fault_campaigns_ordered_by_seed_and_jobs_identical():
    kwargs = dict(n_records=400, batch_size=100)
    serial = run_fault_campaigns([0, 1], jobs=1, **kwargs)
    parallel = run_fault_campaigns([0, 1], jobs=2, **kwargs)
    assert [r.seed for r in serial] == [0, 1]
    for a, b in zip(serial, parallel):
        assert a.seed == b.seed
        assert a.baseline_makespan == b.baseline_makespan
        assert a.faulted_makespan == b.faulted_makespan
        assert a.fault_events == b.fault_events
        assert a.report() == b.report()
