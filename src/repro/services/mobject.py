"""Mobject: a distributed object store exposing a RADOS-like API.

Each Mobject *provider node* (one server process) hosts three providers:
the Mobject sequencer (the client-facing provider), a BAKE provider for
object data, and an SDSKV provider for object metadata (Figure 4).  The
sequencer translates each RADOS-style op into BAKE and SDSKV operations
issued as loopback RPCs -- control always returns to the Mobject
provider between steps, so each step is a *discrete* RPC visible to
SYMBIOSYS (the 12-call structure of Figure 5).

``mobject_write_op`` issues exactly 12 downstream calls; the expensive
step of ``mobject_read_op`` is ``sdskv_list_keyvals_rpc``, whose scan
cost grows with the stored extent count -- which is why it dominates the
ior read profile in Figure 6.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..argobots import Compute
from ..margo import MargoConfig, MargoInstance
from ..mercury import BulkRef, HGHandle
from ..net import Fabric
from ..sim import Simulator
from .bake import BakeClient, BakeCosts, BakeProvider
from .sdskv import BackendCosts, SdskvClient, SdskvProvider

__all__ = ["MobjectProviderNode", "MobjectClient"]

RPC_WRITE_OP = "mobject_write_op"
RPC_READ_OP = "mobject_read_op"
RPC_STAT_OP = "mobject_stat_op"
RPC_DELETE_OP = "mobject_delete_op"
RPC_OMAP_GET_KEYS = "mobject_omap_get_keys_op"

PID_SEQUENCER = 1
PID_BAKE = 2
PID_SDSKV = 3

#: Per-op bookkeeping cost inside the sequencer itself.
_SEQUENCER_STEP_COST = 0.3e-6


class MobjectProviderNode:
    """One Mobject server process: sequencer + BAKE + SDSKV providers."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addr: str,
        node: str,
        *,
        n_handler_es: int = 4,
        sdskv_backend: str = "map",
        sdskv_costs: Optional[BackendCosts] = None,
        bake_costs: Optional[BakeCosts] = None,
        instrumentation=None,
        margo_config: Optional[MargoConfig] = None,
    ):
        self.mi = MargoInstance(
            sim,
            fabric,
            addr,
            node,
            config=margo_config or MargoConfig(n_handler_es=n_handler_es),
            instrumentation=instrumentation,
        )
        self.bake = BakeProvider(self.mi, PID_BAKE, costs=bake_costs)
        self.sdskv = SdskvProvider(
            self.mi,
            PID_SDSKV,
            backend=sdskv_backend,
            n_databases=1,
            costs=sdskv_costs,
        )
        # Loopback clients used by the sequencer for its discrete steps.
        self._bake_cli = BakeClient(self.mi)
        self._skv_cli = SdskvClient(self.mi)
        self.mi.register(RPC_WRITE_OP, self._h_write_op, PID_SEQUENCER)
        self.mi.register(RPC_READ_OP, self._h_read_op, PID_SEQUENCER)
        self.mi.register(RPC_STAT_OP, self._h_stat_op, PID_SEQUENCER)
        self.mi.register(RPC_DELETE_OP, self._h_delete_op, PID_SEQUENCER)
        self.mi.register(RPC_OMAP_GET_KEYS, self._h_omap_get_keys, PID_SEQUENCER)

    @property
    def addr(self) -> str:
        return self.mi.addr

    # -- sequencer handlers ------------------------------------------------------

    def _h_write_op(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """RADOS-subset object write: 12 discrete SDSKV/BAKE calls."""
        inp = yield from mi.get_input(handle)
        oid: str = inp["oid"]
        offset: int = inp.get("offset", 0)
        bulk: BulkRef = inp["bulk"]
        # Pull the object payload from the real client first.
        yield from mi.bulk_transfer(handle, bulk.nbytes)
        data: bytes = bulk.data
        me, skv, bake = self.addr, self._skv_cli, self._bake_cli

        yield Compute(_SEQUENCER_STEP_COST)
        # 1. look up the object's sequence entry
        seq = yield from skv.get(me, PID_SDSKV, 0, f"seq:{oid}")
        # 2. bump / install the sequence number
        next_seq = (seq or 0) + 1
        yield from skv.put(me, PID_SDSKV, 0, f"seq:{oid}", next_seq)
        # 3. read the current object descriptor (may be absent)
        yield from skv.get(me, PID_SDSKV, 0, f"obj:{oid}")
        # 4-6. create a BAKE region, write the data, persist it
        rid = yield from bake.create(me, PID_BAKE, len(data))
        yield from bake.write(me, PID_BAKE, rid, 0, data)
        yield from bake.persist(me, PID_BAKE, rid)
        # 7. map the extent to its BAKE region
        yield from skv.put(
            me, PID_SDSKV, 0, f"extent:{oid}:{offset:012d}", {"rid": rid, "len": len(data)}
        )
        # 8. update the object descriptor
        yield from skv.put(
            me, PID_SDSKV, 0, f"obj:{oid}", {"seq": next_seq, "rid": rid}
        )
        # 9. update the object size record
        yield from skv.put(
            me, PID_SDSKV, 0, f"size:{oid}", offset + len(data)
        )
        # 10. store the omap timestamp entry
        yield from skv.put(
            me, PID_SDSKV, 0, f"omap:{oid}:mtime", mi.sim.now
        )
        # 11. verify the descriptor landed
        yield from skv.exists(me, PID_SDSKV, 0, f"obj:{oid}")
        # 12. confirm the persisted region size
        yield from bake.get_size(me, PID_BAKE, rid)

        yield Compute(_SEQUENCER_STEP_COST)
        yield from mi.respond(handle, {"ret": 0, "seq": next_seq})

    def _h_read_op(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """RADOS-subset object read: extent listing dominates."""
        inp = yield from mi.get_input(handle)
        oid: str = inp["oid"]
        me, skv, bake = self.addr, self._skv_cli, self._bake_cli

        yield Compute(_SEQUENCER_STEP_COST)
        # 1. list the object's extents (scan -- the dominant step)
        extents = yield from skv.list_keyvals(
            me, PID_SDSKV, 0, prefix=f"extent:{oid}:"
        )
        # 2. fetch the object descriptor
        desc = yield from skv.get(me, PID_SDSKV, 0, f"obj:{oid}")
        if desc is None or not extents:
            yield from mi.respond(handle, {"ret": -1, "bulk": None})
            return
        # 3. read the newest extent's data from BAKE
        _, extent = extents[-1]
        data = yield from bake.read(me, PID_BAKE, extent["rid"], 0)
        yield from mi.respond(
            handle, {"ret": 0, "bulk": BulkRef(data, 0), "len": extent["len"]}
        )


    def _h_stat_op(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """Object metadata lookup: size and modification time."""
        inp = yield from mi.get_input(handle)
        oid: str = inp["oid"]
        me, skv = self.addr, self._skv_cli
        yield Compute(_SEQUENCER_STEP_COST)
        size = yield from skv.get(me, PID_SDSKV, 0, f"size:{oid}")
        mtime = yield from skv.get(me, PID_SDSKV, 0, f"omap:{oid}:mtime")
        if size is None:
            yield from mi.respond(handle, {"ret": -1})
            return
        yield from mi.respond(handle, {"ret": 0, "size": size, "mtime": mtime})

    def _h_delete_op(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        """Remove an object: extents, descriptor, size, and omap entries."""
        inp = yield from mi.get_input(handle)
        oid: str = inp["oid"]
        me, skv = self.addr, self._skv_cli
        yield Compute(_SEQUENCER_STEP_COST)
        extents = yield from skv.list_keyvals(
            me, PID_SDSKV, 0, prefix=f"extent:{oid}:"
        )
        if not extents:
            yield from mi.respond(handle, {"ret": -1})
            return
        for key, _extent in extents:
            yield from skv.erase(me, PID_SDSKV, 0, key)
        for key in (f"obj:{oid}", f"size:{oid}", f"omap:{oid}:mtime",
                    f"seq:{oid}"):
            yield from skv.erase(me, PID_SDSKV, 0, key)
        yield from mi.respond(handle, {"ret": 0, "extents": len(extents)})

    def _h_omap_get_keys(self, mi: MargoInstance, handle: HGHandle) -> Generator:
        inp = yield from mi.get_input(handle)
        oid: str = inp["oid"]
        me, skv = self.addr, self._skv_cli
        yield Compute(_SEQUENCER_STEP_COST)
        items = yield from skv.list_keyvals(
            me, PID_SDSKV, 0, prefix=f"omap:{oid}:",
            max_items=inp.get("max_items"),
        )
        keys = [k.split(":", 2)[2] for k, _ in items]
        yield from mi.respond(handle, {"ret": 0, "keys": keys})


class MobjectClient:
    """Client-side RADOS-subset API."""

    def __init__(self, mi: MargoInstance):
        self.mi = mi
        mi.register(RPC_WRITE_OP)
        mi.register(RPC_READ_OP)
        mi.register(RPC_STAT_OP)
        mi.register(RPC_DELETE_OP)
        mi.register(RPC_OMAP_GET_KEYS)

    def write_op(
        self, target: str, oid: str, data: bytes, offset: int = 0
    ) -> Generator:
        out = yield from self.mi.forward(
            target,
            RPC_WRITE_OP,
            {"oid": oid, "offset": offset, "bulk": BulkRef(data, len(data))},
            PID_SEQUENCER,
        )
        return out["ret"]

    def read_op(self, target: str, oid: str) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_READ_OP, {"oid": oid}, PID_SEQUENCER
        )
        if out["ret"] != 0:
            return None
        return out["bulk"].data

    def stat_op(self, target: str, oid: str) -> Generator:
        """Returns (size, mtime) or None for a missing object."""
        out = yield from self.mi.forward(
            target, RPC_STAT_OP, {"oid": oid}, PID_SEQUENCER
        )
        if out["ret"] != 0:
            return None
        return out["size"], out["mtime"]

    def delete_op(self, target: str, oid: str) -> Generator:
        """Returns the number of extents removed, or None if missing."""
        out = yield from self.mi.forward(
            target, RPC_DELETE_OP, {"oid": oid}, PID_SEQUENCER
        )
        if out["ret"] != 0:
            return None
        return out["extents"]

    def omap_get_keys(self, target: str, oid: str, max_items=None) -> Generator:
        out = yield from self.mi.forward(
            target, RPC_OMAP_GET_KEYS, {"oid": oid, "max_items": max_items},
            PID_SEQUENCER,
        )
        return out["keys"]
