"""Service test harness: one server + one client process."""

from types import SimpleNamespace

import pytest

from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator


def make_service_world(n_handler_es=2, hg_config=None, server_addr="svr"):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(
        sim,
        fabric,
        server_addr,
        "n0",
        config=MargoConfig(n_handler_es=n_handler_es),
        hg_config=hg_config,
    )
    client = MargoInstance(sim, fabric, "cli", "n1", hg_config=hg_config)
    return SimpleNamespace(sim=sim, fabric=fabric, server=server, client=client)


def run_ult(world, gen, until=2.0, name="test"):
    """Run one client ULT to completion; return its result."""
    done = {}

    def wrapper():
        result = yield from gen
        done["result"] = result

    world.client.client_ult(wrapper(), name=name)
    world.sim.run_until(lambda: "result" in done, limit=until)
    assert "result" in done, "client ULT did not finish in time"
    return done.get("result")


@pytest.fixture
def world():
    return make_service_world()
