"""The cluster-scale sharded experiment: smoke cell, acceptance
invariants, determinism, and artifact/store integration."""

import json

import pytest

from repro.experiments.scale import (
    default_matrix,
    run_scale_cell,
    smoke_cell,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_scale_cell(smoke_cell(), seed=0)


def test_smoke_cell_shape():
    cell = smoke_cell()
    assert cell.n_servers >= 32
    assert cell.servers_per_node == 1  # flat: a >=32-*node* topology


def test_matrix_covers_topology_scale_load():
    cells = default_matrix()
    assert {c.topology for c in cells} == {"flat", "packed"}
    assert {c.n_servers for c in cells} == {32, 64}
    assert len({c.keys_per_client for c in cells}) > 1


def test_death_yields_view_change_and_migrations(smoke_result):
    r = smoke_result
    r.check_invariants()  # the acceptance gate itself
    assert r.epoch >= 1
    assert r.failovers >= 1 and r.rebalances >= 1
    assert any(
        kind == "death" and addr == r.victim
        for (_, kind, addr, _) in r.membership_events
    )
    assert r.audit.ok
    assert r.issued == r.acked + r.failed


def test_perfetto_export_has_migration_lane(smoke_result):
    trace = json.loads(smoke_result.perfetto_json)
    events = trace["traceEvents"]
    lane = [
        e
        for e in events
        if e["ph"] == "M"
        and e["args"].get("name") == "shard migrations"
    ]
    assert lane, "migration lane metadata missing"
    mig_pid = lane[0]["pid"]
    spans = [
        e for e in events if e.get("cat") == "migration" and e["ph"] == "b"
    ]
    assert spans and all(e["pid"] == mig_pid for e in spans)
    kinds = {e["args"]["kind"] for e in spans}
    assert "failover" in kinds and "rebalance" in kinds
    # The crash itself is on the fault lane, so cause and effect render
    # side by side.
    assert any(e.get("cat") == "fault" for e in events)


def test_smoke_cell_is_deterministic(smoke_result):
    again = run_scale_cell(smoke_cell(), seed=0)
    assert again.perfetto_json == smoke_result.perfetto_json
    assert again.audit.as_dict() == smoke_result.audit.as_dict()
    assert again.makespan == smoke_result.makespan
    assert again.membership_events == smoke_result.membership_events


def test_store_records_shard_series(tmp_path, smoke_result):
    from repro.analysis.queries import run_query
    from repro.store import PerfStore

    db = tmp_path / "scale.db"
    result = run_scale_cell(smoke_cell(), seed=0, store=str(db))
    with PerfStore(str(db)) as store:
        out = run_query(
            store, "shards", {"run": f"scale-{result.cell.name}-seed0"}
        )
    assert len(out["processes"]) == result.cell.n_servers
    assert out["totals"]["migrations"] >= 1
    assert out["shards"], "per-shard op rows missing"
    hottest = out["shards"][0]
    assert hottest["ops"] >= out["shards"][-1]["ops"]
