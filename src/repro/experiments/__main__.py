"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table4
    python -m repro.experiments fig6 fig7
    python -m repro.experiments fig9 --events 4096
    python -m repro.experiments all

Each target regenerates one paper table/figure and prints the
paper-style rows (the same harnesses the benchmark suite asserts on).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .breakdown import run_breakdown_experiment
from .configs import TABLE_IV, table_iv_rows
from .hepnos import run_hepnos_experiment
from .mobject import run_mobject_experiment
from .monitor import run_monitor_experiment
from .overhead import run_overhead_study, time_analysis_scripts
from .reporting import ascii_table, format_seconds, series_histogram
from .runner import run_fault_campaigns
from .scale import run_scale_experiment, smoke_cell
from .sonata import run_sonata_experiment


def _fig5(args) -> None:
    result = run_mobject_experiment()
    request = result.write_op_trace()
    print("Figure 5: one mobject_write_op request")
    for i, name in enumerate(request.discrete_calls(), 1):
        print(f"  step {i:>2}: {name}")


def _fig6(args) -> None:
    result = run_mobject_experiment()
    print("Figure 6: dominant callpaths (ior + Mobject)")
    print(result.summary.render(top_n=5))


def _fig7(args) -> None:
    result = run_sonata_experiment(n_records=10_000, batch_size=1_000)
    print("Figure 7: Sonata target execution breakdown")
    b = result.target_execution_breakdown()
    total = b["target_execution_time"] + b["internal_rdma_transfer_time"]
    rows = [
        {"step": k, "time": format_seconds(v), "share": f"{100 * v / total:.1f}%"}
        for k, v in b.items() if k != "target_execution_time"
    ]
    print(ascii_table(rows))


def _fig9(args) -> None:
    rows = []
    for name in ("C1", "C2"):
        r = run_hepnos_experiment(TABLE_IV[name], events_per_client=args.events)
        rows.append({
            "config": name,
            "threads": r.config.threads,
            "cumulative target RPC time": format_seconds(r.cumulative_target_time),
            "handler share": f"{100 * r.handler_time_fraction:.1f}%",
        })
    print("Figure 9: too few execution streams")
    print(ascii_table(rows))


def _fig10(args) -> None:
    rows = []
    for name in ("C2", "C3"):
        r = run_hepnos_experiment(TABLE_IV[name], events_per_client=args.events)
        blocked = np.array([b for _, b, _ in r.blocked_samples()])
        rows.append({
            "config": name,
            "databases": r.config.databases,
            "RPCs": r.rpcs_issued,
            "blocked max": int(blocked.max()),
            "cumulative target RPC time": format_seconds(r.cumulative_target_time),
        })
    print("Figure 10: too many databases")
    print(ascii_table(rows))


def _fig11(args) -> None:
    rows = []
    for name in ("C4", "C5", "C6", "C7"):
        r = run_hepnos_experiment(
            TABLE_IV[name], events_per_client=args.events,
            pipeline_width=64 if TABLE_IV[name].batch_size == 1 else 32,
        )
        rows.append({
            "config": name,
            "batch": r.config.batch_size,
            "cumulative RPC time": format_seconds(r.cumulative_origin_time),
            "unaccounted": f"{100 * r.unaccounted_fraction:.1f}%",
        })
    print("Figure 11: unaccounted component of RPC execution time")
    print(ascii_table(rows))


def _fig12(args) -> None:
    print("Figure 12: num_ofi_events_read samples")
    for name in ("C4", "C5", "C6", "C7"):
        r = run_hepnos_experiment(
            TABLE_IV[name], events_per_client=args.events,
            pipeline_width=64 if TABLE_IV[name].batch_size == 1 else 32,
        )
        series = [v for _, v in r.ofi_series()]
        print(series_histogram(
            series, bins=[4, 16, 64],
            label=f"{name} (cap {r.config.ofi_max_events})",
        ))


def _fig13(args) -> None:
    study = run_overhead_study(
        repetitions=args.reps, events_per_client=min(args.events, 512),
        jobs=args.jobs,
    )
    print("Figure 13: measurement overheads")
    print(ascii_table(study.rows()))


def _overhead(args) -> None:
    # The deterministic view of the overhead study: only simulated
    # quantities, so the output is byte-identical for any --jobs value
    # (the CI determinism gate diffs --jobs 1 against --jobs 4).
    study = run_overhead_study(
        repetitions=args.reps, events_per_client=min(args.events, 512),
        jobs=args.jobs,
    )
    if args.store:
        from ..store import record_overhead_study

        run_id = record_overhead_study(args.store, study, seed=args.seed)
        # Store chatter goes to stderr; stdout feeds the CI diff gate.
        print(f"[recorded run {run_id} into {args.store}]", file=sys.stderr)
    print("Overhead study: simulated quantities per stage")
    rows = [
        {
            "stage": row["stage"],
            "mean_sim_makespan": format_seconds(row["mean_sim_makespan_s"]),
            "trace_events": row["trace_events"],
        }
        for row in study.rows()
    ]
    print(ascii_table(rows))


def _faults(args) -> None:
    seeds = range(args.seed, args.seed + args.seeds)
    results = run_fault_campaigns(seeds, jobs=args.jobs)
    print("Fault campaign: Sonata under injected faults")
    for i, result in enumerate(results):
        if i:
            print()
        print(result.report())


def _monitor(args) -> None:
    # The smoke shape still spans the fault window (crash at 0.8 ms), so
    # both the starvation and timeout-burst detectors get exercised.
    if args.workers is not None and args.workers > 1:
        # The monitored campaign injects crashes and drives migrations
        # -- cross-LP churn is a parallel-kernel non-goal (see
        # docs/performance.md section 7), so this stays serial.
        print(
            "[monitor: fault/churn campaign is single-cluster; "
            f"--workers {args.workers} falls back to the serial kernel]",
            file=sys.stderr,
        )
    kw = {"n_records": 600, "batch_size": 50} if args.smoke else {}
    result = run_monitor_experiment(
        seed=args.seed, out_dir=args.out, store=args.store, **kw
    )
    print("Monitored campaign: online telemetry under injected faults")
    print(result.report())
    if args.out:
        print(f"artifacts written to {args.out}/")
    if args.store:
        print(f"[run recorded into {args.store}]", file=sys.stderr)


def _breakdown(args) -> None:
    # Fig 11-12 through the critical-path engine: per-request latency
    # decomposition with the sum-to-total invariant machine-checked.
    kw = {"events_per_client": 96, "configs": ("C4", "C5")} \
        if args.smoke else {}
    result = run_breakdown_experiment(
        seed=args.seed, store=args.store, out_dir=args.out, **kw
    )
    print(result.report())
    if args.out:
        print(f"artifacts written to {args.out}/")
    if args.store:
        print(f"[runs recorded into {args.store}]", file=sys.stderr)
    result.check_invariants()
    if not result.fig11_check():
        raise SystemExit("fig11 check failed: batch-1 regime did not "
                         "wait more on the completion queue")


def _scale(args) -> None:
    if args.workers is not None:
        _scale_parallel(args)
        return
    # Sharded services at cluster scale: consistent-hash placement,
    # membership churn, and monitor-triggered migration, swept over the
    # mubench-style topology x scale x load matrix (--smoke: one
    # 32-server cell).  check_invariants() is the acceptance gate: the
    # injected death must yield a view change plus completed failover,
    # the hot shard a rebalance, and the churn audit must conserve data.
    cells = [smoke_cell()] if args.smoke else None
    result = run_scale_experiment(
        seed=args.seed, cells=cells, store=args.store, out_dir=args.out
    )
    print("Sharded services at cluster scale")
    print(result.report())
    if args.out:
        print(f"artifacts written to {args.out}/")
    if args.store:
        print(f"[runs recorded into {args.store}]", file=sys.stderr)
    result.check_invariants()


def _scale_parallel(args) -> None:
    # The static counterpart of the churn sweep, partitioned across
    # LPs and executed by the conservative parallel kernel.  stdout is
    # deterministic across runs AND across --workers values (the CI
    # parallel-smoke job diffs both); wall-clock goes to stderr.
    import dataclasses

    from .parallel_scale import (
        ParallelScaleCell,
        n1024_parallel_cell,
        run_parallel_scale,
        smoke_parallel_cell,
    )

    if args.nodes >= 1024:
        # The thousand-node capacity cell: handler-pool saturation and
        # timeout storms at fleet scale (--smoke shrinks the per-ULT op
        # counts, never the fleet).
        cell = n1024_parallel_cell(smoke=args.smoke)
    elif args.smoke:
        cell = smoke_parallel_cell()
    else:
        cell = ParallelScaleCell(
            n_servers=64, server_lps=8, n_clients=8, keys_per_client=50
        )
    if args.jitter_sigma:
        # Bounded-jitter fabric: partitioned runs need the truncation
        # floor declared up front (FabricConfig validates the pair).
        cell = dataclasses.replace(
            cell,
            jitter_sigma=args.jitter_sigma,
            jitter_bound=args.jitter_bound,
        )
    result = run_parallel_scale(
        cell,
        seed=args.seed,
        workers=args.workers,
        verify=args.verify,
        store=args.store,
    )
    print("Sharded services at cluster scale (parallel kernel)")
    print(result.report())
    if args.verify:
        print("verify: parallel digests match the serial reference")
    if args.store:
        print(f"[run recorded into {args.store}]", file=sys.stderr)
    timing = result.timing()
    print(
        f"[parallel kernel: {timing['wall_time']:.2f}s wall, "
        f"barrier wait {timing['barrier_wait_frac']:.0%}, "
        f"{int(timing['workers_used'])} worker(s)]",
        file=sys.stderr,
    )
    result.check_invariants()


def _table4(args) -> None:
    print("Table IV: HEPnOS service configurations")
    print(ascii_table(table_iv_rows()))


def _table5(args) -> None:
    result = run_hepnos_experiment(TABLE_IV["C2"], events_per_client=args.events)
    timings = time_analysis_scripts(result)
    print("Table V: analysis overheads")
    print(ascii_table(timings.rows()))


TARGETS = {
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "overhead": _overhead,
    "table4": _table4,
    "table5": _table5,
    "faults": _faults,
    "monitor": _monitor,
    "breakdown": _breakdown,
    "scale": _scale,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "targets", nargs="+",
        help=f"one or more of: {', '.join(TARGETS)}, all, list",
    )
    parser.add_argument("--events", type=int, default=2048,
                        help="events per client for HEPnOS runs")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions for the overhead study")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the fault/monitor campaigns")
    parser.add_argument("--seeds", type=int, default=1,
                        help="number of consecutive seeds for the faults "
                             "target (a multi-seed campaign)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for fannable targets "
                             "(overhead, fig13, faults)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-kernel LP workers for the scale "
                             "target (selects the partitioned static "
                             "fleet; single-cluster targets fall back "
                             "to serial with a note on stderr)")
    parser.add_argument("--verify", action="store_true",
                        help="with --workers: also run the serial "
                             "reference and require byte-identical "
                             "digests")
    parser.add_argument("--nodes", type=int, default=0,
                        help="with --workers: fleet size for the scale "
                             "target; >= 1024 selects the thousand-node "
                             "capacity cell (handler-pool saturation + "
                             "timeout storms)")
    parser.add_argument("--jitter-sigma", type=float, default=0.0,
                        help="with --workers: lognormal wire-time jitter "
                             "sigma for the scale target (requires "
                             "--jitter-bound)")
    parser.add_argument("--jitter-bound", type=float, default=0.0,
                        help="with --workers: truncation bound; jittered "
                             "wire times are clamped at latency - bound, "
                             "which becomes the conservative lookahead")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="artifact output directory for the monitor target")
    parser.add_argument("--store", default=None,
                        help="performance-store .db path; the monitor and "
                             "overhead targets archive their runs into it "
                             "(query with python -m repro.analysis)")
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in TARGETS:
            print(name)
        return 0
    targets = list(TARGETS) if args.targets == ["all"] else args.targets
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        parser.error(f"unknown targets: {', '.join(unknown)}")
    for i, target in enumerate(targets):
        if i:
            print()
        t0 = time.perf_counter()
        TARGETS[target](args)
        # Timing goes to stderr: stdout stays byte-identical across runs
        # (and across --jobs values), so determinism gates can diff it.
        print(
            f"[{target} done in {time.perf_counter() - t0:.1f}s]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
