"""Tests for the BAKE microservice."""

import pytest

from repro.services.bake import BakeClient, BakeCosts, BakeProvider
from .conftest import make_service_world, run_ult


@pytest.fixture
def bake_world():
    world = make_service_world()
    world.provider = BakeProvider(world.server, provider_id=1)
    world.bake = BakeClient(world.client)
    return world


def test_create_write_read_roundtrip(bake_world):
    w = bake_world
    data = b"\xde\xad\xbe\xef" * 256

    def body():
        rid = yield from w.bake.create("svr", 1, len(data))
        yield from w.bake.write("svr", 1, rid, 0, data)
        got = yield from w.bake.read("svr", 1, rid, 0)
        return rid, got

    rid, got = run_ult(w, body())
    assert got == data
    assert rid in w.provider.regions


def test_persist_marks_region(bake_world):
    w = bake_world

    def body():
        rid = yield from w.bake.create("svr", 1, 64)
        yield from w.bake.write("svr", 1, rid, 0, b"y" * 64)
        yield from w.bake.persist("svr", 1, rid)
        return rid

    rid = run_ult(w, body())
    assert w.provider.regions[rid].persisted


def test_create_write_persist_combined(bake_world):
    w = bake_world
    data = b"z" * 500

    def body():
        rid = yield from w.bake.create_write_persist("svr", 1, data)
        size = yield from w.bake.get_size("svr", 1, rid)
        got = yield from w.bake.read("svr", 1, rid, 0)
        return rid, size, got

    rid, size, got = run_ult(w, body())
    assert size == 500
    assert got == data
    assert w.provider.regions[rid].persisted


def test_read_missing_offset_returns_none(bake_world):
    w = bake_world

    def body():
        rid = yield from w.bake.create("svr", 1, 64)
        got = yield from w.bake.read("svr", 1, rid, 12345)
        return got

    assert run_ult(w, body()) is None


def test_write_past_capacity_fails_loudly(bake_world):
    w = bake_world

    def body():
        rid = yield from w.bake.create("svr", 1, 10)
        yield from w.bake.write("svr", 1, rid, 0, b"x" * 100)

    w.client.client_ult(body())
    from repro.margo import RemoteRpcError

    with pytest.raises(RemoteRpcError, match="past region end"):
        w.sim.run(until=1.0)


def test_unknown_region_fails_loudly(bake_world):
    w = bake_world

    def body():
        yield from w.bake.persist("svr", 1, 424242)

    w.client.client_ult(body())
    from repro.margo import RemoteRpcError

    with pytest.raises(RemoteRpcError, match="unknown BAKE region"):
        w.sim.run(until=1.0)


def test_larger_writes_take_longer():
    durations = {}
    for size in (1_000, 10_000_000):
        world = make_service_world()
        BakeProvider(world.server, provider_id=1)
        bake = BakeClient(world.client)

        def body(sz=size):
            t0 = world.sim.now
            yield from bake.create_write_persist("svr", 1, b"x" * sz)
            return world.sim.now - t0

        durations[size] = run_ult(world, body())
    assert durations[10_000_000] > 2 * durations[1_000]


def test_persist_cost_scales_with_bytes():
    slow = BakeCosts(persist_per_byte=1e-6)
    fast = BakeCosts(persist_per_byte=0.0)
    durations = {}
    for tag, costs in (("slow", slow), ("fast", fast)):
        world = make_service_world()
        BakeProvider(world.server, provider_id=1, costs=costs)
        bake = BakeClient(world.client)

        def body():
            rid = yield from bake.create("svr", 1, 4096)
            yield from bake.write("svr", 1, rid, 0, b"x" * 4096)
            t0 = world.sim.now
            yield from bake.persist("svr", 1, rid)
            return world.sim.now - t0

        durations[tag] = run_ult(world, body(), until=10.0)
    assert durations["slow"] > 100 * durations["fast"]


def test_memory_gauge_tracks_writes(bake_world):
    w = bake_world

    def body():
        yield from w.bake.create_write_persist("svr", 1, b"m" * 2048)

    run_ult(w, body())
    assert w.server.stats.memory_bytes >= 2048


def test_fragments_stored_by_offset(bake_world):
    w = bake_world

    def body():
        rid = yield from w.bake.create("svr", 1, 1000)
        yield from w.bake.write("svr", 1, rid, 0, b"a" * 100)
        yield from w.bake.write("svr", 1, rid, 500, b"b" * 100)
        first = yield from w.bake.read("svr", 1, rid, 0)
        second = yield from w.bake.read("svr", 1, rid, 500)
        size = yield from w.bake.get_size("svr", 1, rid)
        return first, second, size

    first, second, size = run_ult(w, body())
    assert first == b"a" * 100
    assert second == b"b" * 100
    assert size == 200
