"""Versioned SQLite schema of the persistent performance store.

One ``.db`` file holds any number of *runs* -- monitored cluster
campaigns, overhead studies, bench suites -- each decomposed into the
columnar tables below.  The layout follows the SOS/LDMS shape the
``algo74/py-sim-serv`` exemplar queries: narrow append-only tables keyed
by run, with metric samples separated from metric identity so a
time-series scan never touches label strings.

Tables (schema version 1):

``meta``
    Key/value store metadata; carries ``schema_version``.
``runs``
    One row per recorded run: name, kind (``cluster`` / ``overhead`` /
    ``bench``), seed, JSON config/tags, free-form ``extra`` JSON
    (fault-event traces land here).
``metrics`` / ``samples``
    Metric identity (name, canonical ``k=v|k=v`` label string, Prometheus
    kind, help) and its ``(t, value)`` time-series rows.
``pvar_samples``
    A *view* over metrics/samples restricted to the ``pvar_``-prefixed
    families -- the Table I/II PVAR snapshots as their own queryable
    relation.
``trace_events``
    Full-fidelity SYMBIOSYS trace events (span ids, callpaths, JSON
    payloads), losslessly restorable to ``TraceEvent`` objects.
``sched_slices``
    ULT scheduler run/block slices from the monitor's recorder.
``findings``
    Timestamped anomaly-detector findings (v2 adds ``wait_state``: the
    dominant wait-state category from the critical-path engine).
``retry_records``
    Retry/timeout episodes from the instrumentation's forward hooks
    (v2) -- the raw material of the ``retry_backoff`` category.
``breakdowns``
    Per-request critical-path decompositions (v2): integer-picosecond
    category durations, ordered segments, and blame entries as JSON,
    one row per complete root span.
``profiles``
    Flattened callpath-profile interval statistics (count / total /
    min / max plus the bounded distribution reservoir as JSON), one row
    per (side, callpath, origin, target, interval).
``callpath_names``
    Component-hash -> RPC-name mapping captured at record time so
    archived callpaths stay decodable without the live registry.
``bench_results``
    Per-benchmark medians/repeats of one recorded bench suite run.
``bench_history``
    The dated cross-run bench trajectory; ``UNIQUE(suite, machine,
    git_rev)`` makes history appends idempotent (re-recording the same
    rev on the same machine replaces instead of duplicating).
"""

from __future__ import annotations

import sqlite3

__all__ = ["SCHEMA_VERSION", "ensure_schema", "schema_version"]

SCHEMA_VERSION = 2

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    run_id  INTEGER PRIMARY KEY,
    name    TEXT NOT NULL,
    kind    TEXT NOT NULL DEFAULT 'cluster',
    seed    INTEGER,
    config  TEXT NOT NULL DEFAULT '{}',
    tags    TEXT NOT NULL DEFAULT '{}',
    extra   TEXT NOT NULL DEFAULT '{}',
    created TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_runs_name ON runs(name);

CREATE TABLE IF NOT EXISTS metrics (
    metric_id INTEGER PRIMARY KEY,
    run_id    INTEGER NOT NULL REFERENCES runs(run_id),
    name      TEXT NOT NULL,
    labels    TEXT NOT NULL DEFAULT '',
    kind      TEXT NOT NULL DEFAULT 'gauge',
    help      TEXT NOT NULL DEFAULT '',
    UNIQUE(run_id, name, labels)
);

CREATE TABLE IF NOT EXISTS samples (
    metric_id INTEGER NOT NULL REFERENCES metrics(metric_id),
    t         REAL NOT NULL,
    value     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_samples_metric ON samples(metric_id, t);

CREATE VIEW IF NOT EXISTS pvar_samples AS
    SELECT m.run_id  AS run_id,
           m.name    AS name,
           m.labels  AS labels,
           s.t       AS t,
           s.value   AS value
    FROM metrics m JOIN samples s ON s.metric_id = m.metric_id
    WHERE m.name LIKE 'pvar\\_%' ESCAPE '\\';

CREATE TABLE IF NOT EXISTS trace_events (
    run_id         INTEGER NOT NULL REFERENCES runs(run_id),
    seq            INTEGER NOT NULL,
    kind           TEXT NOT NULL,
    request_id     TEXT NOT NULL,
    ord            INTEGER NOT NULL,
    lamport        INTEGER NOT NULL,
    process        TEXT NOT NULL,
    local_ts       REAL NOT NULL,
    true_ts        REAL NOT NULL,
    rpc_name       TEXT NOT NULL,
    callpath       INTEGER NOT NULL,
    span_id        INTEGER NOT NULL,
    parent_span_id INTEGER,
    provider_id    INTEGER NOT NULL DEFAULT 0,
    data           TEXT NOT NULL DEFAULT '{}',
    pvars          TEXT NOT NULL DEFAULT '{}',
    sysstats       TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_trace_events_run ON trace_events(run_id, seq);

CREATE TABLE IF NOT EXISTS sched_slices (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id),
    seq     INTEGER NOT NULL,
    process TEXT NOT NULL,
    es      TEXT NOT NULL,
    ult     TEXT NOT NULL,
    kind    TEXT NOT NULL,
    start   REAL NOT NULL,
    end     REAL NOT NULL,
    reason  TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_sched_slices_run ON sched_slices(run_id, seq);

CREATE TABLE IF NOT EXISTS findings (
    run_id   INTEGER NOT NULL REFERENCES runs(run_id),
    seq      INTEGER NOT NULL,
    time     REAL NOT NULL,
    detector TEXT NOT NULL,
    process  TEXT NOT NULL,
    message  TEXT NOT NULL,
    value    REAL NOT NULL DEFAULT 0.0,
    wait_state TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_findings_run ON findings(run_id, seq);

CREATE TABLE IF NOT EXISTS retry_records (
    run_id     INTEGER NOT NULL REFERENCES runs(run_id),
    seq        INTEGER NOT NULL,
    time       REAL NOT NULL,
    process    TEXT NOT NULL,
    request_id TEXT NOT NULL,
    rpc_name   TEXT NOT NULL,
    attempt    INTEGER NOT NULL,
    delay      REAL NOT NULL,
    target     TEXT NOT NULL,
    kind       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_retry_records_run ON retry_records(run_id, seq);

CREATE TABLE IF NOT EXISTS breakdowns (
    run_id     INTEGER NOT NULL REFERENCES runs(run_id),
    seq        INTEGER NOT NULL,
    request_id TEXT NOT NULL,
    span_id    INTEGER NOT NULL,
    rpc_name   TEXT NOT NULL,
    origin     TEXT NOT NULL,
    target     TEXT NOT NULL,
    start_ps   INTEGER NOT NULL,
    total_ps   INTEGER NOT NULL,
    start_true REAL NOT NULL,
    end_true   REAL NOT NULL,
    n_faults   INTEGER NOT NULL DEFAULT 0,
    categories TEXT NOT NULL DEFAULT '{}',
    segments   TEXT NOT NULL DEFAULT '[]',
    blame      TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS idx_breakdowns_run ON breakdowns(run_id, seq);

CREATE TABLE IF NOT EXISTS profiles (
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    side          TEXT NOT NULL,
    callpath      INTEGER NOT NULL,
    callpath_name TEXT NOT NULL DEFAULT '',
    origin        TEXT NOT NULL,
    target        TEXT NOT NULL,
    interval      TEXT NOT NULL,
    count         INTEGER NOT NULL,
    total         REAL NOT NULL,
    min           REAL NOT NULL,
    max           REAL NOT NULL,
    reservoir     TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS idx_profiles_run ON profiles(run_id, side);

CREATE TABLE IF NOT EXISTS callpath_names (
    run_id    INTEGER NOT NULL REFERENCES runs(run_id),
    component INTEGER NOT NULL,
    name      TEXT NOT NULL,
    UNIQUE(run_id, component, name)
);

CREATE TABLE IF NOT EXISTS bench_results (
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    suite         TEXT NOT NULL,
    benchmark     TEXT NOT NULL,
    median_s      REAL NOT NULL,
    runs_s        TEXT NOT NULL DEFAULT '[]',
    units         INTEGER NOT NULL DEFAULT 0,
    unit_name     TEXT NOT NULL DEFAULT 'ops',
    rate_per_s    REAL NOT NULL DEFAULT 0.0,
    calibration_s REAL
);
CREATE INDEX IF NOT EXISTS idx_bench_results_suite ON bench_results(suite);

CREATE TABLE IF NOT EXISTS bench_history (
    suite         TEXT NOT NULL,
    machine       TEXT NOT NULL,
    git_rev       TEXT NOT NULL,
    date          TEXT NOT NULL,
    calibration_s REAL,
    results       TEXT NOT NULL DEFAULT '{}',
    UNIQUE(suite, machine, git_rev)
);
"""


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create all tables (idempotent), migrate, and stamp the version.

    Opening a store written by a *newer* schema raises rather than
    silently misreading it; older stores are migrated in place:

    * v1 -> v2: ``findings`` gains ``wait_state`` (backfilled to the
      empty string); the ``retry_records`` and ``breakdowns`` tables
      come for free from ``CREATE TABLE IF NOT EXISTS``.
    """
    conn.executescript(_DDL)
    _migrate(conn)
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()
        return
    found = int(row[0])
    if found > SCHEMA_VERSION:
        raise RuntimeError(
            f"store schema version {found} is newer than supported "
            f"version {SCHEMA_VERSION}; upgrade this checkout"
        )
    if found < SCHEMA_VERSION:
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()


def _migrate(conn: sqlite3.Connection) -> None:
    """Bring a pre-v2 layout up to date (no-op on fresh stores)."""
    cols = {r[1] for r in conn.execute("PRAGMA table_info(findings)")}
    if cols and "wait_state" not in cols:
        conn.execute(
            "ALTER TABLE findings "
            "ADD COLUMN wait_state TEXT NOT NULL DEFAULT ''"
        )


def schema_version(conn: sqlite3.Connection) -> int:
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    return int(row[0]) if row is not None else 0
