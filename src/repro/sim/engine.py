"""Discrete-event simulation kernel.

The kernel is the foundation for every substrate in this repository: the
Argobots user-level threading runtime, the OFI-like network fabric, the
Mercury RPC library, and the Margo layer are all built as tasks scheduled
on a single :class:`Simulator`.

Tasks are plain Python generators.  A task communicates with the kernel by
yielding *waitables*:

* :class:`Timeout` -- resume the task after a fixed amount of simulated time.
* :class:`SimEvent` -- resume the task when the event is fired; the value
  passed to :meth:`SimEvent.succeed` becomes the result of the ``yield``.
* :class:`AnyOf` -- resume when the first of several waitables completes.

Subroutines compose with ``yield from``; the kernel never needs to know
about nesting.

The kernel is fully deterministic: events scheduled for the same timestamp
fire in the order they were scheduled (a monotonically increasing sequence
number breaks ties).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "Task",
    "SimulationError",
    "StopSimulation",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations (e.g. yielding a
    non-waitable, or firing an event twice)."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


class _Waitable:
    """Base class for objects a task may ``yield`` to the kernel."""

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Resume the yielding task after ``delay`` units of simulated time."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        sim.call_at(sim.now + self.delay, task._resume, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class SimEvent(_Waitable):
    """A one-shot event that tasks can wait on.

    An event is fired at most once with :meth:`succeed` (or :meth:`fail`);
    every task waiting on it is resumed with the event's value, and tasks
    that wait on an already-fired event resume immediately.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            # Callbacks run at the *current* simulated instant but through
            # the event queue, preserving deterministic FIFO ordering.
            self.sim.call_at(self.sim.now, cb, self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_at(self.sim.now, cb, self)
        return self

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        """Invoke ``cb(event)`` once the event fires (immediately if it
        already has)."""
        if self._fired:
            self.sim.call_at(self.sim.now, cb, self)
        else:
            self._callbacks.append(cb)

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        def _on_fire(ev: "SimEvent") -> None:
            if ev._exc is not None:
                task._throw(ev._exc)
            else:
                task._resume(ev._value)

        self.add_callback(_on_fire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        return f"SimEvent({self.name!r}, {state})"


class AnyOf(_Waitable):
    """Wait for the first of several waitables; yields ``(index, value)``.

    Losing :class:`Timeout` branches are discarded harmlessly (their kernel
    callback becomes a no-op); losing :class:`SimEvent` branches are *not*
    consumed -- the event stays available to other waiters.
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Iterable[_Waitable]):
        self.branches = list(branches)
        if not self.branches:
            raise ValueError("AnyOf requires at least one branch")

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        done = {"flag": False}

        def _make_cb(index: int) -> Callable[[Any], None]:
            def _cb(value: Any = None) -> None:
                if done["flag"]:
                    return
                done["flag"] = True
                task._resume((index, value))

            return _cb

        for i, br in enumerate(self.branches):
            cb = _make_cb(i)
            if isinstance(br, Timeout):
                sim.call_at(sim.now + br.delay, cb, br.value)
            elif isinstance(br, SimEvent):
                br.add_callback(lambda ev, _cb=cb: _cb(ev._value))
            else:
                raise SimulationError(
                    f"AnyOf supports Timeout and SimEvent branches, got {br!r}"
                )


class Task:
    """A running generator task.

    ``task.done`` is a :class:`SimEvent` fired with the generator's return
    value when it finishes (or failed with its exception).
    """

    __slots__ = ("sim", "gen", "name", "done", "_finished")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "task")
        self.done = SimEvent(sim, name=f"{self.name}.done")
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, send: Callable[[], Any]) -> None:
        try:
            yielded = send()
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(stop.value)
            return
        except StopSimulation:
            raise
        except BaseException as exc:
            self._finished = True
            observed = bool(self.done._callbacks) or self.sim.swallow_task_errors
            self.done.fail(exc)
            if not observed:
                raise
            return
        if not isinstance(yielded, _Waitable):
            raise SimulationError(
                f"task {self.name!r} yielded non-waitable {yielded!r}"
            )
        yielded._subscribe(self.sim, self)

    def _resume(self, value: Any = None) -> None:
        self._step(lambda: self.gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        self._step(lambda: self.gen.throw(exc))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, finished={self._finished})"


class Simulator:
    """Deterministic discrete-event simulator.

    Maintains a priority queue of ``(time, seq, callback)`` entries.  All
    substrate behaviour -- scheduling, networking, RPC progress -- reduces
    to callbacks on this queue.
    """

    def __init__(self, *, swallow_task_errors: bool = False):
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._running = False
        #: If True, a task that dies with an unhandled exception records it
        #: on ``task.done`` instead of aborting the simulation.  Used by the
        #: failure-injection tests.
        self.swallow_task_errors = swallow_task_errors

    # -- scheduling -------------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        heapq.heappush(self._queue, (when, next(self._seq), fn, args))

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` units of simulated time."""
        self.call_at(self.now + delay, fn, *args)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this simulator."""
        return SimEvent(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> Task:
        """Start a generator as a task.  The first step runs at the current
        simulated instant (through the queue, preserving order)."""
        task = Task(self, gen, name=name)
        self.call_at(self.now, task._resume, None)
        return task

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process queued events.

        ``until`` bounds simulated time (inclusive); ``max_events`` bounds
        the number of processed callbacks (a runaway-loop backstop for
        tests).  Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                when, _, fn, args = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                self.now = when
                try:
                    fn(*args)
                except StopSimulation:
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until(
        self,
        predicate: Callable[[], bool],
        limit: float,
        step: float = 5e-3,
    ) -> bool:
        """Advance simulated time in ``step`` increments until
        ``predicate()`` is true or ``limit`` is reached.

        Avoids simulating long idle tails (e.g. progress loops polling
        after a workload finished).  Returns the predicate's final value.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        while not predicate() and self.now < limit:
            self.run(until=min(limit, self.now + step))
        return predicate()

    def peek(self) -> Optional[float]:
        """Timestamp of the next queued event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={len(self._queue)})"
