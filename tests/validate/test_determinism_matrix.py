"""Cross-seed determinism matrix.

Three seeds x two presets, each run twice: the exported artifacts --
Perfetto trace, Prometheus text, CSV time series -- must be
byte-identical between the two runs.  This is the export-level
determinism contract the fuzz runner's double-run check builds on,
pinned as a plain tier-1 test.
"""

import pytest

from repro.validate.workloads import run_workload

SEEDS = (0, 1, 2)
PRESETS = ("fast", "theta")


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_exports_are_byte_identical_across_reruns(seed, preset):
    first = run_workload("echo", seed=seed, preset=preset, strict=True)
    second = run_workload("echo", seed=seed, preset=preset, strict=True)
    # full strings, not digests: a digest mismatch only says "changed",
    # string equality gives pytest's diff on failure
    assert first.perfetto_json == second.perfetto_json
    assert first.prometheus_text == second.prometheus_text
    assert first.series_csv == second.series_csv
    assert first.profile_text == second.profile_text
    assert first.makespan == second.makespan
    assert first.violations == [] and second.violations == []


def test_distinct_seeds_actually_diverge():
    """The matrix above is vacuous if the seed is ignored.  A clean echo
    run consumes no randomness, so probe with a randomized delay plan:
    different seeds must draw different delays and thus different
    traces."""
    from repro.faults import DelayRule, FaultPlan

    plan = FaultPlan(
        name="jitter",
        wire_rules=[
            DelayRule(dst="echo-svr", extra=50e-6, spread=50e-6, probability=1.0)
        ],
    )
    a = run_workload("echo", seed=0, plan=plan)
    b = run_workload("echo", seed=1, plan=plan)
    assert a.violations == [] and b.violations == []
    assert a.digests() != b.digests()
