"""Text exporters for the online telemetry layer.

Two formats, both byte-deterministic for same-seed runs:

* :func:`to_prometheus` -- a Prometheus text-exposition snapshot of a
  :class:`~repro.symbiosys.metrics.MetricsRegistry` (``# HELP`` /
  ``# TYPE`` headers, label sets, ``_bucket``/``_sum``/``_count``
  histogram series).
* :func:`series_to_csv` -- the full ring-buffer time-series of a
  :class:`~repro.symbiosys.metrics.SeriesStore` as CSV rows.

Timestamps are *simulated* seconds; nothing here reads a wall clock.
"""

from __future__ import annotations

import math
from typing import Optional

from ..metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelItems,
    MetricsRegistry,
    SeriesStore,
)

__all__ = ["series_to_csv", "to_prometheus", "write_text"]


def _fmt_value(v) -> str:
    """Canonical numeric rendering: integers without a trailing ``.0``,
    floats via ``repr`` (shortest round-trip form), infinities in
    Prometheus spelling."""
    if isinstance(v, bool):  # guard: bool is an int subclass
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return repr(v)
    return str(v)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelItems, extra: Optional[list] = None) -> str:
    items = list(labels) + (extra or [])
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help, metrics in registry.collect():
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")
        for m in metrics:
            if isinstance(m, (Counter, Gauge)):
                lines.append(
                    f"{name}{_render_labels(m.labels)} {_fmt_value(m.value)}"
                )
            elif isinstance(m, Histogram):
                for bound, cum in m.cumulative():
                    le = _render_labels(m.labels, [("le", _fmt_value(bound))])
                    lines.append(f"{name}_bucket{le} {cum}")
                ls = _render_labels(m.labels)
                lines.append(f"{name}_sum{ls} {_fmt_value(m.total)}")
                lines.append(f"{name}_count{ls} {m.count}")
            else:  # pragma: no cover - registry only creates the above
                raise TypeError(f"unknown metric type {type(m).__name__}")
    return "\n".join(lines) + "\n"


def series_to_csv(store: SeriesStore) -> str:
    """Render every time-series as CSV: ``name,labels,time,value``.

    Series appear in sorted ``(name, labels)`` order, samples in
    chronological order; labels are ``k=v`` pairs joined with ``|``.
    """
    lines = ["name,labels,time,value"]
    for ts in store.all_series():
        labels = "|".join(f"{k}={v}" for k, v in ts.labels)
        for t, v in ts.samples():
            lines.append(f"{ts.name},{labels},{_fmt_value(t)},{_fmt_value(v)}")
    return "\n".join(lines) + "\n"


def write_text(path, text: str) -> None:
    """Write an export with a stable newline convention."""
    with open(path, "w", newline="\n") as f:
        f.write(text)
