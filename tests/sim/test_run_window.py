"""Window-bounded execution: the parallel kernel's simulator hook.

``run_window(end)`` must process exactly the events strictly before
``end``, drain same-instant cascades completely, and leave ``now``
behind the window edge so a later edge-timed injection still heap-
orders with whatever is already queued there.
"""

from repro.sim import Simulator


def test_window_is_half_open():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_at(t, fired.append, t)
    processed = sim.run_window(3.0)
    assert fired == [1.0, 2.0]
    assert processed == 2
    assert sim.peek() == 3.0  # the edge event belongs to the next window


def test_windows_compose_to_a_full_run():
    sim = Simulator()
    fired = []
    for t in (0.5, 1.5, 2.5):
        sim.call_at(t, fired.append, t)
    sim.run_window(1.0)
    sim.run_window(2.0)
    sim.run_window(10.0)
    assert fired == [0.5, 1.5, 2.5]
    assert sim.peek() is None


def test_same_instant_cascade_drains_inside_window():
    # A callback that schedules same-instant work below the edge must
    # see that work run in the same window -- the boundary can never
    # split one instant's events.
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_at(sim.now, lambda: fired.append("second"))

    sim.call_at(1.0, first)
    processed = sim.run_window(1.5)
    assert fired == ["first", "second"]
    assert processed == 2


def test_now_stays_at_last_processed_instant():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    sim.run_window(2.0)
    assert sim.now == 1.0
    # An edge-timed injection after the window still schedules cleanly
    # (now < 2.0, so call_at(2.0) is a normal future event).
    fired = []
    sim.call_at(2.0, fired.append, "edge")
    sim.run_window(2.0 + 1e-9)
    assert fired == ["edge"]


def test_empty_window_processes_nothing():
    sim = Simulator()
    sim.call_at(5.0, lambda: None)
    assert sim.run_window(1.0) == 0
    assert sim.peek() == 5.0
