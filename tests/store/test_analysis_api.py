"""The analysis service: determinism, the planted-slowdown regression
gate, and the query/serve protocol."""

import json

import pytest

from repro.analysis import (
    AnalysisService,
    Query,
    decode_reply,
    encode_query,
    encode_reply,
)
from repro.store import PerfStore, StoreWriter

from .conftest import record_echo_run


def make_ab_store(path, *, slowdown=0.0):
    """Two synthetic runs, base and head; head's latency shifted by
    ``slowdown`` seconds on every sample."""
    store = PerfStore(str(path))
    with StoreWriter(store) as w:
        for name, shift in (("base", 0.0), ("head", slowdown)):
            run = w.begin_run(name, seed=0, tags={"arm": name})
            w.add_series(
                run, "latency_s", {"process": "svr"},
                [(i * 0.1, 1.0 + 0.01 * (i % 7) + shift) for i in range(64)],
            )
            w.add_series(
                run, "queue_depth", {"process": "svr"},
                [(i * 0.1, 4.0 + (i % 3)) for i in range(64)],
            )
    return store


class TestRegression:
    def test_planted_slowdown_is_flagged(self, tmp_path):
        store = make_ab_store(tmp_path / "ab.db", slowdown=0.3)
        try:
            reply = AnalysisService(store).execute(
                Query("regression", {"base": "base", "head": "head"})
            )
        finally:
            store.close()
        assert reply.ok
        rows = {r["metric"]: r for r in reply.result["rows"]}
        lat = rows["latency_s"]
        assert lat["flagged"] is True
        assert lat["ci_lo"] > 0.2, "CI must exclude zero around the +0.3 shift"
        assert lat["ci_hi"] > lat["ci_lo"]
        assert 0.25 < lat["delta"] < 0.35
        # The untouched metric must NOT be flagged.
        assert rows["queue_depth"]["flagged"] is False
        assert reply.result["flagged"] == 1

    def test_no_slowdown_not_flagged(self, tmp_path):
        store = make_ab_store(tmp_path / "ab.db", slowdown=0.0)
        try:
            reply = AnalysisService(store).execute(
                Query("regression", {"base": "base", "head": "head"})
            )
        finally:
            store.close()
        assert reply.ok
        assert reply.result["flagged"] == 0


class TestDeterminism:
    def test_reply_bytes_stable_per_store(self, echo_store):
        store, world = echo_store
        service = AnalysisService(store)
        q = Query("trend", {"metric": "abt_busy_fraction", "stat": "p95"})
        first = encode_reply(service.execute(q))
        second = encode_reply(service.execute(q))
        assert first == second

    def test_same_seed_rebuild_gives_identical_reply(self, tmp_path):
        replies = []
        for sub in ("a", "b"):
            db = tmp_path / sub / "perf.db"
            db.parent.mkdir()
            record_echo_run(db, seed=3, name="det")
            store = PerfStore(str(db))
            try:
                for op, params in (
                    ("runs", {}),
                    ("detectors", {}),
                    ("trend", {"metric": "abt_busy_fraction"}),
                    ("profile", {"run": "det"}),
                ):
                    replies.append(
                        encode_reply(
                            AnalysisService(store).execute(Query(op, params))
                        )
                    )
            finally:
                store.close()
        half = len(replies) // 2
        assert replies[:half] == replies[half:]

    def test_reply_is_canonical_json(self, echo_store):
        store, _ = echo_store
        line = AnalysisService(store).handle_line(
            encode_query(Query("runs", {}))
        )
        parsed = json.loads(line)
        assert line == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        )


class TestErrors:
    def test_unknown_op_is_error_reply(self, echo_store):
        store, _ = echo_store
        reply = AnalysisService(store).execute(Query("nonsense", {}))
        assert not reply.ok
        assert "unknown op" in reply.error

    def test_malformed_line_is_error_reply(self, echo_store):
        store, _ = echo_store
        reply = decode_reply(AnalysisService(store).handle_line("{not json"))
        assert not reply.ok

    def test_missing_run_is_error_reply(self, echo_store):
        store, _ = echo_store
        reply = AnalysisService(store).execute(
            Query("regression", {"base": "ghost", "head": "ghost"})
        )
        assert not reply.ok


class TestOtherOps:
    def test_detectors_summarizes_findings(self, echo_store):
        store, world = echo_store
        reply = AnalysisService(store).execute(Query("detectors", {}))
        assert reply.ok
        (summary,) = reply.result["runs"]
        assert summary["total"] == len(world.cluster.monitor.findings)

    def test_knobs_ranks_varying_tag(self, tmp_path):
        store = PerfStore(str(tmp_path / "knobs.db"))
        with StoreWriter(store) as w:
            for scale, base in ((2, 1.0), (4, 2.0), (8, 4.0)):
                run = w.begin_run(
                    f"s{scale}", seed=0, tags={"scale": str(scale)},
                    config={"constant_knob": "x"},
                )
                w.add_series(
                    run, "latency_s", {},
                    [(i * 0.1, base + 0.01 * i) for i in range(16)],
                )
        try:
            reply = AnalysisService(store).execute(
                Query("knobs", {"metric": "latency_s"})
            )
        finally:
            store.close()
        assert reply.ok
        rows = reply.result["rows"]
        assert rows and rows[0]["knob"] == "scale"
        # A knob that never varies must not appear at all.
        assert all(r["knob"] != "constant_knob" for r in rows)

    def test_trend_by_tag(self, echo_store):
        store, _ = echo_store
        reply = AnalysisService(store).execute(
            Query(
                "trend",
                {"metric": "abt_busy_fraction", "by": "tag:workload"},
            )
        )
        assert reply.ok
        assert [p["x"] for p in reply.result["points"]] == ["echo"]


class TestServer:
    def test_serve_and_remote_query(self, tmp_path):
        import threading

        from repro.analysis import remote_query, serve

        db = tmp_path / "perf.db"
        record_echo_run(db)
        bound = {}
        ready_evt = threading.Event()

        def ready(host, port):
            bound["addr"] = (host, port)
            ready_evt.set()

        thread = threading.Thread(
            target=serve,
            args=(str(db),),
            kwargs={"port": 0, "ready": ready},
            daemon=True,
        )
        thread.start()
        assert ready_evt.wait(10.0), "server did not come up"
        host, port = bound["addr"]
        reply = remote_query(host, port, Query("runs", {}))
        assert reply.ok
        assert reply.result["count"] == 1
