"""Property-based end-to-end RPC tests: arbitrary payloads through the
full simulated stack (serialization sizing, wire transport, eager/RDMA
path selection) must round-trip unchanged."""

from hypothesis import given, settings, strategies as st

from repro.margo import MargoConfig, MargoInstance
from repro.mercury import HGConfig
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**60), 2**60),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
        st.binary(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=16,
)


def echo_roundtrip(payload, eager_size=4096):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(
        sim, fabric, "svr", "n0",
        config=MargoConfig(n_handler_es=1),
        hg_config=HGConfig(eager_size=eager_size),
    )
    client = MargoInstance(
        sim, fabric, "cli", "n1", hg_config=HGConfig(eager_size=eager_size)
    )

    def handler(mi, handle):
        inp = yield from mi.get_input(handle)
        yield from mi.respond(handle, inp)

    server.register("echo", handler)
    client.register("echo")
    out = {}

    def body():
        out["result"] = yield from client.forward("svr", "echo", payload)

    client.client_ult(body())
    assert sim.run_until(lambda: "result" in out, limit=1.0)
    return out["result"]


@given(payloads)
@settings(max_examples=25, deadline=None)
def test_property_arbitrary_payload_roundtrips(payload):
    assert echo_roundtrip(payload) == payload


@given(st.binary(min_size=0, max_size=2000))
@settings(max_examples=15, deadline=None)
def test_property_roundtrip_across_eager_boundary(blob):
    """A tiny eager buffer forces some payloads through the internal
    RDMA path; content must survive either way."""
    assert echo_roundtrip({"blob": blob}, eager_size=256) == {"blob": blob}


@given(st.lists(st.integers(0, 2**32), min_size=0, max_size=64))
@settings(max_examples=15, deadline=None)
def test_property_roundtrip_preserves_list_order(values):
    assert echo_roundtrip(values) == values
