"""Sharded fleet at scale through the conservative parallel kernel.

The serial ``scale`` experiment sweeps churn campaigns (crash, view
change, migration) -- all cross-LP non-goals of the parallel kernel.
This experiment is its static counterpart: the same consistent-hash
fleet and client load, auto-partitioned across LPs with
:meth:`PartitionPlan.from_topology
<repro.sim.parallel.PartitionPlan.from_topology>` -- no hand-written
LP declarations.  Server nodes are weighted by the shards they host
and client nodes by their share of the key traffic, so the greedy
bin-packing mixes servers and clients into load-balanced LPs.  It is
the workload behind ``python -m repro.experiments scale --workers N``,
the CI ``parallel-smoke``/``parallel-1k-smoke`` determinism gates, and
the ``parallel_scale`` / ``parallel_scale_n1024`` macro benchmarks.

The thousand-node cell (:func:`n1024_parallel_cell`) reproduces the
paper's queueing pathologies at fleet scale: many client ULTs hammer a
handful of hot keys against single-ES handler pools with a tight RPC
timeout, so handler queues saturate and timed-out requests are retried
into an already saturated pool -- a timeout storm.  Timeouts, retries,
and giveups are counted deterministically in the LP reports.

The report is deterministic (no wall-clock facts); timing lives in
:meth:`ParallelScaleResult.timing` for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..margo import MargoTimeoutError
from ..net import FabricConfig
from ..sim.parallel import (
    ClusterTopology,
    NodeGroup,
    ParallelRunResult,
    PartitionPlan,
    run_partitioned,
)
from ..symbiosys import Stage
from ..symbiosys.monitor import MonitorConfig
from ..validate.invariants import ValidationConfig

__all__ = [
    "ParallelScaleCell",
    "ParallelScaleResult",
    "build_parallel_scale_plan",
    "build_parallel_scale_topology",
    "n1024_parallel_cell",
    "run_parallel_scale",
    "smoke_parallel_cell",
]

#: Bounded attempts for one logical op under timeout storms; backoff
#: doubles per consecutive timeout so the offered retry load collapses
#: and every storm deterministically drains.  Exhausting the budget is
#: a loud deterministic failure, never a silent drop.
_RETRY_BUDGET = 64
_RETRY_BACKOFF = 50e-6
_RETRY_BACKOFF_CAP = 3.2e-3


@dataclass(frozen=True)
class ParallelScaleCell:
    """One shape of the partitioned fleet."""

    n_servers: int
    server_lps: int
    n_clients: int
    keys_per_client: int
    #: Concurrent driver ULTs per client process (closed-loop each).
    ults_per_client: int = 1
    #: Shared hot-key range every ULT hammers after its unique phase
    #: (0 disables the storm phase).
    hot_keys: int = 0
    #: Hot puts per ULT into that range.
    hot_puts: int = 0
    #: Router RPC deadline; tighten it against a saturated handler
    #: pool to reproduce timeout storms.
    rpc_timeout: float = 2e-3
    n_handler_es: int = 2
    #: Bounded-jitter fabric: lognormal wire-time jitter truncated at
    #: ``latency - jitter_bound`` (must be declared together; see
    #: :meth:`FabricConfig.min_cross_node_latency`).
    jitter_sigma: float = 0.0
    jitter_bound: float = 0.0
    monitor_interval: float = 50e-6
    limit: float = 5.0
    #: Acceptance: this cell must deterministically produce forward
    #: timeouts (the storm actually happened).
    expect_storm: bool = False

    @property
    def name(self) -> str:
        base = (
            f"par-{self.n_servers}s-{self.server_lps}lp"
            f"-{self.n_clients}c-{self.keys_per_client}k"
        )
        if self.ults_per_client != 1:
            base += f"-u{self.ults_per_client}"
        if self.hot_puts:
            base += f"-hot{self.hot_keys}x{self.hot_puts}"
        if self.jitter_sigma:
            base += "-jit"
        return base

    @property
    def total_unique_ops(self) -> int:
        """Put+get pairs over unique keys (must all succeed)."""
        return (
            2 * self.n_clients * self.ults_per_client * self.keys_per_client
        )

    @property
    def total_hot_ops(self) -> int:
        return self.n_clients * self.ults_per_client * self.hot_puts


def smoke_parallel_cell() -> ParallelScaleCell:
    """The CI smoke shape: the 32-server fleet over 4 server LPs."""
    return ParallelScaleCell(
        n_servers=32, server_lps=4, n_clients=4, keys_per_client=25
    )


def n1024_parallel_cell(*, smoke: bool = False) -> ParallelScaleCell:
    """The thousand-node cell: 1024 server nodes + 8 client nodes.

    Single-ES handler pools, dozens of concurrent ULTs per client, a
    4-key hot range, and a 100 us RPC deadline: the hot owners'
    handler queues grow past the deadline, timed-out requests are
    retried into the backlog, and the storm sustains itself until the
    hot phase drains.  ``smoke`` shrinks the per-ULT op counts (CI
    wall-clock), not the fleet.
    """
    return ParallelScaleCell(
        n_servers=1024,
        server_lps=4,
        n_clients=8,
        keys_per_client=2 if smoke else 6,
        ults_per_client=12 if smoke else 16,
        hot_keys=4,
        hot_puts=8 if smoke else 16,
        rpc_timeout=100e-6,
        n_handler_es=1,
        monitor_interval=500e-6,
        expect_storm=True,
    )


# -- automatic partitioning ------------------------------------------------


def build_parallel_scale_topology(
    cell: ParallelScaleCell, *, seed: int = 0
) -> ClusterTopology:
    """The deployed shape of one cell, ready for ``from_topology``.

    Server nodes are weighted by the shards the consistent-hash
    placement puts on them at ``seed``; each client node's weight is
    its share of the total key traffic (the whole client side weighs
    as much as the whole shard space), so the greedy bin-packing
    spreads clients first and balances server nodes around them.
    """
    from ..shard import ShardedKVService

    n_shards = 2 * cell.n_servers
    groups = list(
        ShardedKVService.topology_groups(cell.n_servers, seed=seed)
    )
    client_weight = n_shards / cell.n_clients
    groups += [
        NodeGroup(f"cnode{c:02d}", weight=client_weight)
        for c in range(cell.n_clients)
    ]
    return ClusterTopology(
        groups=tuple(groups),
        builder=_topology_builder(cell),
        name=f"parallel_scale:{cell.name}",
    )


def _topology_builder(cell: ParallelScaleCell):
    """One builder for any LP: deploys whatever node groups the
    bin-packing assigned -- a server slice, client processes, or a mix
    (clients colocated with servers route to local endpoints without
    any boundary traffic)."""

    def build(ctx, local_names: list[str]) -> None:
        from ..shard import ShardedKVService

        server_nodes = [n for n in local_names if n.startswith("snode")]
        local_clients = sorted(
            int(n[5:]) for n in local_names if n.startswith("cnode")
        )
        local_client_set = set(local_clients)
        # Every LP knows where the other side's processes live: server
        # responses target client addrs, and the router forwards to
        # server addrs (deploy_partition/make_partition_router declare
        # the server side; both declarations are idempotent).
        for c in range(cell.n_clients):
            if c not in local_client_set:
                ctx.register_remote(f"scli{c:02d}", f"cnode{c:02d}")
        if server_nodes:
            indices = ShardedKVService.servers_on_nodes(
                cell.n_servers, server_nodes
            )
            ShardedKVService.deploy_partition(
                ctx,
                cell.n_servers,
                indices,
                n_handler_es=cell.n_handler_es,
            )
        if local_clients:
            _build_clients(ctx, cell, local_clients)

    return build


def _build_clients(ctx, cell: ParallelScaleCell, client_ids: list[int]):
    from ..shard import ShardedKVService

    sim = ctx.cluster.sim
    done = sim.event("parallel-scale-done")
    ctx.set_done(done)
    n_bodies = len(client_ids) * cell.ults_per_client
    state = {
        "remaining": n_bodies,
        "rpcs_ok": 0,
        "hot_ok": 0,
        "timeouts": 0,
        "retries": 0,
    }

    def attempt(mi, op, *args):
        """Run one router op, absorbing timeout storms with bounded
        exponential-backoff retries (counted, never silent)."""
        backoff = _RETRY_BACKOFF
        for _ in range(_RETRY_BUDGET):
            try:
                out = yield from op(*args)
                return out
            except MargoTimeoutError:
                state["timeouts"] += 1
                state["retries"] += 1
                yield from mi.rt.sleep(backoff)
                backoff = min(backoff * 2.0, _RETRY_BACKOFF_CAP)
        raise AssertionError(
            f"op {args[:1]} still timing out after {_RETRY_BUDGET} attempts"
        )

    for c in client_ids:
        mi = ctx.process(f"scli{c:02d}", f"cnode{c:02d}")
        router = ShardedKVService.make_partition_router(
            ctx, mi, cell.n_servers, rpc_timeout=cell.rpc_timeout
        )

        for u in range(cell.ults_per_client):

            def body(c=c, u=u, mi=mi, router=router):
                for i in range(cell.keys_per_client):
                    key = f"c{c:02d}u{u:02d}k{i:03d}"
                    yield from attempt(mi, router.put, key, f"v{c}:{u}:{i}")
                    state["rpcs_ok"] += 1
                for i in range(cell.keys_per_client):
                    key = f"c{c:02d}u{u:02d}k{i:03d}"
                    value = yield from attempt(mi, router.get, key)
                    assert value == f"v{c}:{u}:{i}"
                    state["rpcs_ok"] += 1
                for i in range(cell.hot_puts):
                    key = f"hot{i % cell.hot_keys:03d}"
                    yield from attempt(
                        mi, router.put, key, f"h{c}:{u}:{i}"
                    )
                    state["hot_ok"] += 1
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    ctx.report["rpcs_ok"] = state["rpcs_ok"]
                    ctx.report["hot_ok"] = state["hot_ok"]
                    ctx.report["rpc_timeouts"] = state["timeouts"]
                    ctx.report["rpc_retries"] = state["retries"]
                    done.succeed(sim.now)

            mi.client_ult(body(), name=f"par-scale-{c:02d}-{u:02d}")


def build_parallel_scale_plan(
    cell: ParallelScaleCell, *, seed: int = 0, collect: bool = True
) -> PartitionPlan:
    """Derive the partitioned plan for ``cell`` -- automatic topology
    partitioning into ``cell.server_lps + 1`` LPs.  The LP count is a
    cell property, not a run-time worker count, so the same plan (and
    therefore the same digests) executes under any ``--workers``."""
    topology = build_parallel_scale_topology(cell, seed=seed)
    return PartitionPlan.from_topology(
        topology,
        cell.server_lps + 1,
        seed=seed,
        fabric_config=FabricConfig(
            jitter_sigma=cell.jitter_sigma, jitter_bound=cell.jitter_bound
        ),
        limit=cell.limit,
        cluster_kw=dict(
            stage=Stage.FULL,
            monitoring=MonitorConfig(interval=cell.monitor_interval),
            validate=ValidationConfig(strict=True),
        ),
        collect=collect,
    )


@dataclass
class ParallelScaleResult:
    cell: ParallelScaleCell
    seed: int
    workers: int
    result: ParallelRunResult

    def report(self) -> str:
        """Deterministic cell card: kernel schedule + digests, no
        wall-clock facts (CI diffs this across runs and workers)."""
        lines = [
            f"cell {self.cell.name} seed={self.seed}",
            self.result.report(),
            "digests:",
        ]
        for key, digest in sorted(self.result.digests().items()):
            lines.append(f"  {key:<40} {digest}")
        return "\n".join(lines)

    def timing(self) -> dict[str, float]:
        return self.result.timing()

    def _sum_extra(self, key: str) -> int:
        return sum(r["extra"].get(key, 0) for r in self.result.lp_reports)

    def check_invariants(self) -> None:
        """Acceptance gate: the workload finished, every RPC landed,
        nothing leaked, no boundary event was stranded -- and, for
        storm cells, the timeout storm deterministically happened."""
        problems = []
        if not self.result.done:
            problems.append("workload did not complete")
        rpcs = self._sum_extra("rpcs_ok")
        if rpcs != self.cell.total_unique_ops:
            problems.append(
                f"rpcs_ok {rpcs} != expected {self.cell.total_unique_ops}"
            )
        hot = self._sum_extra("hot_ok")
        if hot != self.cell.total_hot_ops:
            problems.append(
                f"hot_ok {hot} != expected {self.cell.total_hot_ops}"
            )
        if self.cell.expect_storm and self._sum_extra("rpc_timeouts") == 0:
            problems.append(
                "expected a timeout storm, saw zero forward timeouts"
            )
        for r in self.result.lp_reports:
            if r["violations"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['violations']} invariant violation(s)"
                )
            if r["leaked_events"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['leaked_events']} leaked event(s)"
                )
            if r["stranded_boundary"]:
                problems.append(
                    f"lp{r['lp_id']} {r['name']}: "
                    f"{r['stranded_boundary']} stranded boundary event(s)"
                )
        if problems:
            raise AssertionError(
                "parallel scale invariants failed:\n  " + "\n  ".join(problems)
            )


def run_parallel_scale(
    cell: Optional[ParallelScaleCell] = None,
    *,
    seed: int = 0,
    workers: int = 1,
    verify: bool = False,
    collect: bool = True,
    store=None,
) -> ParallelScaleResult:
    """Execute one partitioned scale cell.

    ``verify=True`` additionally runs the serial reference and fails
    on any digest mismatch.  ``store`` archives the run (kernel
    metrics + per-LP summaries) into a performance store.
    """
    cell = cell if cell is not None else smoke_parallel_cell()
    plan = build_parallel_scale_plan(cell, seed=seed, collect=collect)
    result = run_partitioned(plan, workers=workers, verify=verify)
    scale_result = ParallelScaleResult(
        cell=cell, seed=seed, workers=workers, result=result
    )
    if store is not None:
        from ..store import record_parallel_run

        record_parallel_run(
            store,
            result,
            name=f"parallel-scale-{cell.name}-seed{seed}",
            tags={"cell": cell.name, "workers": str(workers)},
        )
    return scale_result
