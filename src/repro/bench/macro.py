"""Macro benchmarks: the paper harnesses end to end.

Where the kernel suite isolates mechanisms, these measure what a PR
actually buys at the experiment level: the Sonata ``store_multi_json``
run (Figure 7's harness), the HEPnOS data loader on a Table IV shape
(Figures 9-12's harness), and the same loader with the online monitor
attached -- so a telemetry-layer regression shows up as the gap between
the last two.

``parallel_scale_w1`` / ``parallel_scale_w4`` run the identical
32-server partitioned sharded workload through the parallel kernel at
one and four worker processes; their same-run median ratio is the
kernel's speedup claim, gated in CI with
``--max-ratio parallel_scale_w4/parallel_scale_w1=...`` on runners with
enough cores (on a single-core machine the w4 arm measures pure
synchronization overhead -- still worth tracking, never worth gating).
``parallel_scale_n1024_w1`` / ``parallel_scale_n1024_w4`` repeat the
pair on the thousand-node capacity cell (1024 server nodes, single-ES
handler pools, hot-key timeout storms) -- the shape the batched
boundary channels and the flattened O(nodes) hot paths exist for.
"""

from __future__ import annotations

from typing import Callable

from .harness import BenchResult, SuiteResult, time_bench

__all__ = ["MACRO_BENCHMARKS", "run_macro_benchmarks"]


def bench_sonata(n_records: int, batch_size: int) -> tuple[int, str]:
    from ..experiments.sonata import run_sonata_experiment

    result = run_sonata_experiment(n_records=n_records, batch_size=batch_size)
    assert result.makespan > 0
    return n_records, "records"


def _hepnos(events_per_client: int, monitored: bool) -> tuple[int, str]:
    from ..experiments.configs import TABLE_IV
    from ..experiments.hepnos import run_hepnos_experiment
    from ..symbiosys.monitor import MonitorConfig

    result = run_hepnos_experiment(
        TABLE_IV["C1"],
        events_per_client=events_per_client,
        monitoring=MonitorConfig() if monitored else None,
    )
    return result.events_stored, "events"


def bench_hepnos(events_per_client: int) -> tuple[int, str]:
    return _hepnos(events_per_client, monitored=False)


def bench_hepnos_monitor(events_per_client: int) -> tuple[int, str]:
    return _hepnos(events_per_client, monitored=True)


def bench_parallel_scale(workers: int, smoke: bool) -> tuple[int, str]:
    """The 32-server partitioned sharded workload through the parallel
    kernel.  Both worker counts execute the same simulation (digests are
    byte-identical), so the w4/w1 wall-clock ratio isolates what the
    extra processes buy."""
    from ..experiments.parallel_scale import (
        ParallelScaleCell,
        run_parallel_scale,
        smoke_parallel_cell,
    )

    cell = (
        smoke_parallel_cell()
        if smoke
        else ParallelScaleCell(
            n_servers=32, server_lps=4, n_clients=8, keys_per_client=100
        )
    )
    run = run_parallel_scale(cell, workers=workers, collect=False)
    run.check_invariants()
    return run.result.events_processed, "events"


def bench_parallel_scale_n1024(workers: int, smoke: bool) -> tuple[int, str]:
    """The 1024-server capacity cell (handler-pool saturation + hot-key
    timeout storms) through the parallel kernel; ``smoke`` shrinks the
    per-ULT op counts, never the fleet."""
    from ..experiments.parallel_scale import (
        n1024_parallel_cell,
        run_parallel_scale,
    )

    cell = n1024_parallel_cell(smoke=smoke)
    run = run_parallel_scale(cell, workers=workers, collect=False)
    run.check_invariants()
    return run.result.events_processed, "events"


#: name -> (full-scale thunk, smoke-scale thunk)
MACRO_BENCHMARKS: dict[str, tuple[Callable, Callable]] = {
    "sonata": (
        lambda: bench_sonata(10_000, 1_000),
        lambda: bench_sonata(1_000, 200),
    ),
    "hepnos": (
        lambda: bench_hepnos(192),
        lambda: bench_hepnos(32),
    ),
    "hepnos_monitor": (
        lambda: bench_hepnos_monitor(192),
        lambda: bench_hepnos_monitor(32),
    ),
    "parallel_scale_w1": (
        lambda: bench_parallel_scale(1, smoke=False),
        lambda: bench_parallel_scale(1, smoke=True),
    ),
    "parallel_scale_w4": (
        lambda: bench_parallel_scale(4, smoke=False),
        lambda: bench_parallel_scale(4, smoke=True),
    ),
    "parallel_scale_n1024_w1": (
        lambda: bench_parallel_scale_n1024(1, smoke=False),
        lambda: bench_parallel_scale_n1024(1, smoke=True),
    ),
    "parallel_scale_n1024_w4": (
        lambda: bench_parallel_scale_n1024(4, smoke=False),
        lambda: bench_parallel_scale_n1024(4, smoke=True),
    ),
}


def run_macro_benchmarks(
    *,
    repeats: int = 3,
    smoke: bool = False,
    log: Callable[[str], None] = lambda s: None,
) -> SuiteResult:
    results: list[BenchResult] = []
    for name, (full, small) in MACRO_BENCHMARKS.items():
        log(f"macro/{name}:")
        results.append(time_bench(name, small if smoke else full, repeats, log))
    return SuiteResult(suite="macro", results=results)
