"""Simulated Mercury: RPC core, progress engine, and PVAR export.

The implementation drives the exact t1..t14 event timeline of Figure 2:

====  =======================================================================
t1    origin generates the RPC request (``forward`` entered)
t2-3  input serialized (CPU on the origin ULT) and sent eagerly
t3-4  eager-buffer overflow pulled through an *internal RDMA* transfer
t4    request-arrival callback runs on the target (Margo spawns the ULT)
t5    handler ULT starts executing
t6-7  input deserialized (``get_input``)
t8    handler issues the response (``respond`` entered)
t9-10 output serialized
t11   response reaches the origin's network layer (endpoint CQ)
t12   origin progress loop moves the completion callback to the HG queue
t13   target's response-sent callback triggers
t14   origin completion callback runs
====  =======================================================================

Mercury never blocks a caller: ``forward``/``respond`` register callbacks
which the progress/trigger loop invokes.  Margo layers the blocking
semantics (eventuals) on top.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..argobots import AbtRuntime, Compute
from ..config import Replaceable
from ..net import CQEntry, CQKind, Endpoint, Fabric, Message
from ..sim import Simulator
from .pvar import PvarBinding, PvarClass, PvarDef, PvarError, PvarRegistry, PvarSession
from .serialization import SerializationModel, estimate_size

__all__ = [
    "HGConfig",
    "HGCore",
    "HGHandle",
    "RESILIENCE_PVARS",
    "RequestWire",
    "ResponseWire",
]

# Cookies are allocated per HGCore instance (see __init__), not from a
# module-global counter: a cookie only ever routes within its origin
# (``_posted`` lives on the origin core), so per-instance uniqueness
# suffices -- and instance-local allocation keeps cookie sequences
# identical whether logical processes share one interpreter or run in
# separate OS processes (the parallel kernel's workers=1 vs workers=N
# byte-identity depends on this).

#: The degraded-mode gauges of the resilience layer, in report order.
RESILIENCE_PVARS = (
    "num_forward_timeouts",
    "num_forward_retries",
    "num_failed_over_forwards",
    "num_late_responses_dropped",
)


@dataclass(frozen=True, kw_only=True)
class HGConfig(Replaceable):
    """Tunable Mercury parameters.

    ``ofi_max_events`` is the paper's ``OFI_max_events``: the most
    completion entries one progress iteration will read (default 16, as in
    Mercury).  ``eager_size`` bounds the metadata that travels inline with
    the request; anything larger goes through the internal RDMA path.
    """

    eager_size: int = 4096
    ofi_max_events: int = 16
    rpc_header_size: int = 64
    post_cost: float = 0.4e-6  # CPU to post a send descriptor
    callback_cost: float = 0.25e-6  # CPU per triggered callback

    def __post_init__(self) -> None:
        if self.eager_size < 0:
            raise ValueError("eager_size must be non-negative")
        if self.ofi_max_events < 1:
            raise ValueError("ofi_max_events must be at least 1")
        if self.post_cost < 0 or self.callback_cost < 0:
            raise ValueError("costs must be non-negative")


@dataclass
class RequestWire:
    """What travels from origin to target for one RPC."""

    cookie: int
    rpc_name: str
    header: dict
    payload: Any
    input_size: int
    needs_rdma: bool
    rdma_size: int
    origin: str


@dataclass
class ResponseWire:
    cookie: int
    payload: Any
    output_size: int
    #: Metadata riding back with the response (Margo's Lamport clock etc.).
    header: dict = field(default_factory=dict)


class HGHandle:
    """Per-RPC state on either side of the wire.

    HANDLE-bound PVAR values live here and are lost when the handle is
    destroyed -- per the paper, tools must sample them while the RPC is
    still in scope.
    """

    __slots__ = (
        "cookie",
        "rpc_name",
        "origin_addr",
        "target_addr",
        "is_origin",
        "header",
        "input",
        "input_size",
        "output",
        "output_size",
        "_pvars",
        "_t12",
        "marks",
    )

    def __init__(
        self,
        cookie: int,
        rpc_name: str,
        origin_addr: str,
        target_addr: str,
        is_origin: bool,
    ):
        self.cookie = cookie
        self.rpc_name = rpc_name
        self.origin_addr = origin_addr
        self.target_addr = target_addr
        self.is_origin = is_origin
        self.header: dict = {}
        self.input: Any = None
        self.input_size = 0
        self.output: Any = None
        self.output_size = 0
        self._pvars: dict[str, Any] = {}
        self._t12: Optional[float] = None
        #: Free-form timestamps recorded by Margo/SYMBIOSYS (t1, t4, ...).
        self.marks: dict[str, float] = {}

    def pvar_set(self, name: str, value: Any) -> None:
        self._pvars[name] = value

    def pvar_get(self, name: str) -> Any:
        try:
            return self._pvars[name]
        except KeyError:
            raise PvarError(
                f"PVAR {name!r} has no recorded value on handle "
                f"{self.cookie} ({self.rpc_name})"
            ) from None

    def pvar_get_or(self, name: str, default: Any = 0.0) -> Any:
        return self._pvars.get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        side = "origin" if self.is_origin else "target"
        return f"HGHandle({self.rpc_name!r}, cookie={self.cookie}, {side})"


class HGCore:
    """One Mercury instance (one per simulated process)."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        endpoint: Endpoint,
        abt: AbtRuntime,
        *,
        serialization: Optional[SerializationModel] = None,
        config: Optional[HGConfig] = None,
        pvars_enabled: bool = False,
    ):
        self.sim = sim
        self.fabric = fabric
        self.endpoint = endpoint
        self.abt = abt
        self.serialization = serialization or SerializationModel()
        self.config = config or HGConfig()
        #: "Mercury PVAR profiling" switch (Stage 2 vs Full Support in the
        #: overhead study).
        self.pvars_enabled = pvars_enabled

        #: Live OFI read cap; starts at the configured value and may be
        #: raised at runtime (the dynamic-reconfiguration extension).
        self.ofi_max_events = self.config.ofi_max_events
        self._cookies = itertools.count(1)
        self._rpcs: dict[str, Optional[Callable[[HGHandle], None]]] = {}
        self._posted: dict[int, tuple[HGHandle, Callable]] = {}
        self._cancelled: set[int] = set()
        self._completion_queue: deque = deque()
        #: Progress observers (duck-typed; the online monitor and the
        #: invariant checker): each is called ``observer(now,
        #: n_events_read)`` after every progress iteration, including
        #: empty ones, in subscription order.
        self._progress_observers: list = []
        self.pvars = PvarRegistry()
        self._define_pvars()
        # Interned slots for every PVAR the data path updates per RPC /
        # per progress iteration: name resolution and protocol checks
        # happen once, here, not per update.
        pv = self.pvars
        self._pv_rpcs_invoked = pv.bind_update("num_rpcs_invoked")
        self._pv_eager_overflow = pv.bind_update("eager_overflow_count")
        self._pv_ofi_read = pv.bind_update("num_ofi_events_read")
        self._pv_ofi_read_max = pv.bind_update("max_ofi_events_read")
        self._pv_ofi_read_min = pv.bind_update("min_ofi_events_read")
        self._pv_late_drops = pv.bind_update("num_late_responses_dropped")
        self._pv_fwd_timeouts = pv.bind_update("num_forward_timeouts")
        self._pv_fwd_retries = pv.bind_update("num_forward_retries")
        self._pv_failed_over = pv.bind_update("num_failed_over_forwards")

    @property
    def progress_observer(self):
        """The first subscribed progress observer (None when empty).
        Assigning replaces the whole list; :meth:`add_progress_observer`
        stacks observers instead."""
        return self._progress_observers[0] if self._progress_observers else None

    @progress_observer.setter
    def progress_observer(self, observer) -> None:
        self._progress_observers = [] if observer is None else [observer]

    def add_progress_observer(self, observer) -> None:
        """Subscribe an additional progress observer."""
        if observer in self._progress_observers:
            raise ValueError("progress observer already subscribed")
        self._progress_observers.append(observer)

    def remove_progress_observer(self, observer) -> None:
        self._progress_observers.remove(observer)

    @property
    def addr(self) -> str:
        return self.endpoint.addr

    # -- PVAR definitions (Table II plus extras covering every class) -------------

    def _define_pvars(self) -> None:
        P, B = PvarClass, PvarBinding
        defs = [
            PvarDef(
                "num_posted_handles",
                P.LEVEL,
                B.NO_OBJECT,
                "Number of currently posted RPC handles",
                getter=lambda: len(self._posted),
            ),
            PvarDef(
                "completion_queue_size",
                P.STATE,
                B.NO_OBJECT,
                "Number of events in Mercury's completion queue",
                getter=lambda: len(self._completion_queue),
            ),
            PvarDef(
                "num_ofi_events_read",
                P.LEVEL,
                B.NO_OBJECT,
                "Number of OFI completion events last read",
            ),
            PvarDef(
                "num_rpcs_invoked",
                P.COUNTER,
                B.NO_OBJECT,
                "Number of RPCs invoked by instance",
            ),
            PvarDef(
                "internal_rdma_transfer_time",
                P.TIMER,
                B.HANDLE,
                "Time taken to transfer additional RPC metadata through RDMA",
            ),
            PvarDef(
                "input_serialization_time",
                P.TIMER,
                B.HANDLE,
                "Time taken to serialize input on origin",
            ),
            PvarDef(
                "input_deserialization_time",
                P.TIMER,
                B.HANDLE,
                "Time taken to de-serialize input on target",
            ),
            PvarDef(
                "output_serialization_time",
                P.TIMER,
                B.HANDLE,
                "Time taken to serialize output on target",
            ),
            PvarDef(
                "origin_completion_callback_time",
                P.TIMER,
                B.HANDLE,
                "Delay between arrival of RPC response and invocation of "
                "completion callback",
            ),
            PvarDef(
                "bulk_transfer_time",
                P.TIMER,
                B.HANDLE,
                "Time taken by a bulk (RDMA) data transfer for this RPC",
            ),
            PvarDef(
                "eager_buffer_size",
                P.SIZE,
                B.NO_OBJECT,
                "Size of the eager metadata buffer",
                getter=lambda: self.config.eager_size,
            ),
            PvarDef(
                "ofi_cq_high_watermark",
                P.HIGHWATERMARK,
                B.NO_OBJECT,
                "Deepest observed OFI completion-queue backlog",
                getter=lambda: self.endpoint.cq_high_watermark,
            ),
            PvarDef(
                "max_ofi_events_read",
                P.HIGHWATERMARK,
                B.NO_OBJECT,
                "Most OFI events read in one progress iteration",
            ),
            PvarDef(
                "min_ofi_events_read",
                P.LOWWATERMARK,
                B.NO_OBJECT,
                "Fewest OFI events read in one non-empty progress iteration",
            ),
            PvarDef(
                "eager_overflow_count",
                P.COUNTER,
                B.NO_OBJECT,
                "RPCs whose metadata overflowed the eager buffer",
            ),
            # Resilience gauges: degraded-mode behaviour under faults.
            # Updated by the Margo retry/timeout layer and the response
            # path unconditionally (not gated on pvars_enabled) -- they
            # cost one integer add and resilience reports need them even
            # in Baseline runs.
            PvarDef(
                "num_forward_timeouts",
                P.COUNTER,
                B.NO_OBJECT,
                "Forwards that hit their timeout and were cancelled",
            ),
            PvarDef(
                "num_forward_retries",
                P.COUNTER,
                B.NO_OBJECT,
                "Forwards re-issued by a retry policy after a failure",
            ),
            PvarDef(
                "num_failed_over_forwards",
                P.COUNTER,
                B.NO_OBJECT,
                "Forward attempts redirected to a failover target",
            ),
            PvarDef(
                "num_late_responses_dropped",
                P.COUNTER,
                B.NO_OBJECT,
                "Responses dropped on arrival: handle cancelled, already "
                "completed, or duplicated on the wire",
            ),
        ]
        for d in defs:
            self.pvars.define(d)

    def pvar_session_init(self) -> PvarSession:
        """Entry point of the external-tool interface (Section IV-B-2)."""
        return PvarSession(self.pvars)

    def resilience_counters(self) -> dict[str, int]:
        """Current values of the degraded-mode gauges (always live)."""
        return {name: self.pvars.raw_value(name) for name in RESILIENCE_PVARS}

    # -- registration -----------------------------------------------------------

    def register(self, rpc_name: str, rpc_cb: Optional[Callable] = None) -> str:
        """Register an RPC by name.

        ``rpc_cb(handle)`` is the request-arrival callback (Margo's ULT
        spawner); it runs at t4 in the progress ULT context.  Clients may
        register with no callback purely to create handles.
        """
        if rpc_cb is not None:
            existing = self._rpcs.get(rpc_name)
            if existing is not None:
                raise ValueError(f"RPC {rpc_name!r} already has a handler")
            self._rpcs[rpc_name] = rpc_cb
        else:
            self._rpcs.setdefault(rpc_name, None)
        return rpc_name

    @property
    def registered_rpcs(self) -> list[str]:
        return list(self._rpcs)

    # -- origin side -------------------------------------------------------------

    def create(self, target_addr: str, rpc_name: str) -> HGHandle:
        if rpc_name not in self._rpcs:
            raise ValueError(f"RPC {rpc_name!r} is not registered")
        return HGHandle(
            cookie=next(self._cookies),
            rpc_name=rpc_name,
            origin_addr=self.addr,
            target_addr=target_addr,
            is_origin=True,
        )

    def forward(self, handle: HGHandle, payload: Any, complete_cb: Callable):
        """Post the RPC (generator; runs in the caller's ULT).

        ``complete_cb(handle)`` fires from the origin trigger loop at t14.
        """
        if not handle.is_origin:
            raise ValueError("forward requires an origin handle")
        input_size = estimate_size(payload)
        handle.input = payload
        handle.input_size = input_size

        ser_t = self.serialization.ser_time(input_size)
        if ser_t > 0:
            yield Compute(ser_t)  # t2 -> t3
        if self.pvars_enabled:
            handle.pvar_set("input_serialization_time", ser_t)
            self.pvars.add_at(self._pv_rpcs_invoked, 1)
        if self.config.post_cost > 0:
            yield Compute(self.config.post_cost)

        self._posted[handle.cookie] = (handle, complete_cb)

        eager_part = min(input_size, self.config.eager_size)
        needs_rdma = input_size > self.config.eager_size
        rdma_size = input_size - eager_part
        if needs_rdma and self.pvars_enabled:
            self.pvars.add_at(self._pv_eager_overflow, 1)

        wire = RequestWire(
            cookie=handle.cookie,
            rpc_name=handle.rpc_name,
            header=dict(handle.header),
            payload=payload,
            input_size=input_size,
            needs_rdma=needs_rdma,
            rdma_size=rdma_size,
            origin=self.addr,
        )
        self.fabric.send(
            Message(
                src=self.addr,
                dst=handle.target_addr,
                size_bytes=self.config.rpc_header_size + eager_part,
                payload=wire,
                kind="rpc_request",
            )
        )

    # -- target side --------------------------------------------------------------

    def get_input(self, handle: HGHandle):
        """Deserialize the input (generator; handler ULT, t6 -> t7)."""
        deser_t = self.serialization.deser_time(handle.input_size)
        if deser_t > 0:
            yield Compute(deser_t)
        if self.pvars_enabled:
            handle.pvar_set("input_deserialization_time", deser_t)
        return handle.input

    def respond(self, handle: HGHandle, payload: Any, complete_cb: Callable):
        """Send the response (generator; handler ULT, t8 onward).

        ``complete_cb(handle)`` fires from the *target* trigger loop at
        t13, once the response has been injected.
        """
        if handle.is_origin:
            raise ValueError("respond requires a target handle")
        output_size = estimate_size(payload)
        handle.output = payload
        handle.output_size = output_size

        ser_t = self.serialization.ser_time(output_size)
        if ser_t > 0:
            yield Compute(ser_t)  # t9 -> t10
        if self.pvars_enabled:
            handle.pvar_set("output_serialization_time", ser_t)
        if self.config.post_cost > 0:
            yield Compute(self.config.post_cost)

        wire = ResponseWire(
            cookie=handle.cookie,
            payload=payload,
            output_size=output_size,
            header=dict(handle.header),
        )

        def _sent() -> None:
            self.endpoint.push(
                CQEntry(
                    kind=CQKind.SEND_COMPLETE,
                    payload=lambda: complete_cb(handle),
                    enqueued_at=self.sim.now,
                )
            )

        self.fabric.send(
            Message(
                src=self.addr,
                dst=handle.origin_addr,
                size_bytes=self.config.rpc_header_size + output_size,
                payload=wire,
                kind="rpc_response",
            ),
            on_local_complete=_sent,
        )

    def bulk_pull(self, handle: HGHandle, size_bytes: int):
        """Pull ``size_bytes`` of bulk data from the RPC's origin
        (generator; handler ULT).  Models Mercury's bulk interface over
        RDMA; returns the transfer duration."""
        if size_bytes < 0:
            raise ValueError("bulk size must be non-negative")
        ev = self.abt.eventual(f"bulk:{handle.cookie}")
        start = self.sim.now
        self.fabric.rdma_get(
            initiator=self.addr,
            remote=handle.origin_addr,
            size_bytes=size_bytes,
            payload=("bulk", ev),
        )
        yield from ev.wait()
        elapsed = self.sim.now - start
        if self.pvars_enabled:
            handle.pvar_set("bulk_transfer_time", elapsed)
        return elapsed

    # -- progress engine ------------------------------------------------------------

    @property
    def has_pending_completions(self) -> bool:
        return bool(self._completion_queue)

    def progress(self, timeout: float = 0.0):
        """One progress iteration (generator; progress ULT).

        Reads up to ``ofi_max_events`` entries from the OFI completion
        queue and converts them into Mercury completion callbacks.  If the
        CQ is empty and ``timeout`` is positive, blocks (as a ULT) until
        an entry arrives or the timeout elapses.  Returns the number of
        OFI events read.
        """
        ep = self.endpoint
        if ep.cq_depth == 0:
            if timeout <= 0:
                self._note_progress(0)
                return 0
            ev = self.abt.eventual("hg.progress")
            disarm = ep.arm(ev.signal)
            ok, _ = yield from ev.wait(timeout=timeout)
            if not ok:
                disarm()
                self._note_progress(0)
                return 0
        entries = ep.cq_read(self.ofi_max_events)
        n = len(entries)
        if n and self.pvars_enabled:
            pv = self.pvars
            pv.set_at(self._pv_ofi_read, n)
            pv.hiwater_at(self._pv_ofi_read_max, n)
            pv.lowater_at(self._pv_ofi_read_min, n)
        for entry in entries:
            self._dispatch(entry)
        self._note_progress(n)
        return n

    def _note_progress(self, n: int) -> None:
        for observer in self._progress_observers:
            observer(self.sim.now, n)

    def set_ofi_max_events(self, n: int) -> None:
        """Adjust the per-iteration OFI read cap at runtime."""
        if n < 1:
            raise ValueError("ofi_max_events must be at least 1")
        self.ofi_max_events = n

    def trigger(self, max_count: Optional[int] = None):
        """Run queued completion callbacks (generator; progress ULT).
        Returns the number executed."""
        n = 0
        while self._completion_queue and (max_count is None or n < max_count):
            cb = self._completion_queue.popleft()
            if self.config.callback_cost > 0:
                yield Compute(self.config.callback_cost)
            cb()
            n += 1
        return n

    # -- internal dispatch -------------------------------------------------------

    def _dispatch(self, entry: CQEntry) -> None:
        if entry.kind is CQKind.RECV:
            wire = entry.payload.payload
            if isinstance(wire, RequestWire):
                self._on_request(wire, entry.enqueued_at)
            elif isinstance(wire, ResponseWire):
                self._on_response(wire, entry.enqueued_at)
            else:
                raise TypeError(f"unexpected wire payload {wire!r}")
        elif entry.kind is CQKind.SEND_COMPLETE:
            self._completion_queue.append(entry.payload)
        elif entry.kind is CQKind.RDMA_COMPLETE:
            tag = entry.payload
            if isinstance(tag, tuple) and tag and tag[0] == "bulk":
                _, ev = tag
                self._completion_queue.append(lambda: ev.signal())
            elif isinstance(tag, tuple) and tag and tag[0] == "int_rdma":
                _, handle, started = tag
                if self.pvars_enabled:
                    handle.pvar_set(
                        "internal_rdma_transfer_time", self.sim.now - started
                    )
                self._completion_queue.append(
                    lambda: self._deliver_request(handle)
                )
            else:
                raise TypeError(f"unexpected RDMA completion tag {tag!r}")

    def _on_request(
        self, wire: RequestWire, arrived_at: Optional[float] = None
    ) -> None:
        handle = HGHandle(
            cookie=wire.cookie,
            rpc_name=wire.rpc_name,
            origin_addr=wire.origin,
            target_addr=self.addr,
            is_origin=False,
        )
        handle.header = dict(wire.header)
        handle.input = wire.payload
        handle.input_size = wire.input_size
        handle.marks["t3"] = self.sim.now
        # When the request hit the target's endpoint CQ: the window
        # [t_arrival, t3] is OFI backlog / progress starvation, not wire
        # transit, and the critical-path engine splits on it.
        handle.marks["t_arrival"] = (
            self.sim.now if arrived_at is None else arrived_at
        )
        if wire.needs_rdma:
            # Pull the overflowed metadata before handing the request up
            # (t3 -> t4); progress keeps running meanwhile.
            self.fabric.rdma_get(
                initiator=self.addr,
                remote=wire.origin,
                size_bytes=wire.rdma_size,
                payload=("int_rdma", handle, self.sim.now),
            )
        else:
            if self.pvars_enabled:
                handle.pvar_set("internal_rdma_transfer_time", 0.0)
            self._completion_queue.append(lambda: self._deliver_request(handle))

    def _deliver_request(self, handle: HGHandle) -> None:
        cb = self._rpcs.get(handle.rpc_name)
        if cb is None:
            raise RuntimeError(
                f"request for RPC {handle.rpc_name!r} with no handler at "
                f"{self.addr!r}"
            )
        handle.marks["t4"] = self.sim.now
        cb(handle)

    def cancel(self, handle: HGHandle) -> bool:
        """Withdraw a posted RPC: its response (if any) will be dropped.
        Returns True if the handle was still pending."""
        if self._posted.pop(handle.cookie, None) is not None:
            self._cancelled.add(handle.cookie)
            return True
        return False

    def _on_response(
        self, wire: ResponseWire, arrived_at: Optional[float] = None
    ) -> None:
        if wire.cookie in self._cancelled:
            self._cancelled.discard(wire.cookie)
            self.pvars.add_at(self._pv_late_drops, 1)
            return
        try:
            handle, cb = self._posted.pop(wire.cookie)
        except KeyError:
            # Not (or no longer) posted: a response that raced a timeout
            # cancellation, or a wire-level duplicate of one already
            # consumed.  Real Mercury ignores stale completions; we count
            # them as a resilience gauge.
            self.pvars.add_at(self._pv_late_drops, 1)
            return
        handle.output = wire.payload
        handle.output_size = wire.output_size
        handle.header.update(wire.header)
        handle._t12 = self.sim.now  # completion moved to HG queue
        # t11: response reached the origin endpoint CQ; t12: this
        # progress iteration moved it to the HG completion queue.
        handle.marks["t11"] = (
            self.sim.now if arrived_at is None else arrived_at
        )
        handle.marks["t12"] = self.sim.now

        def _complete() -> None:
            if self.pvars_enabled:
                handle.pvar_set(
                    "origin_completion_callback_time",
                    self.sim.now - handle._t12,
                )
            cb(handle)

        self._completion_queue.append(_complete)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HGCore({self.addr!r}, posted={len(self._posted)}, "
            f"cq={len(self._completion_queue)})"
        )
