"""Execution streams: the schedulers that run ULTs.

An execution stream (ES) is a kernel task bound to one pool.  It pops
READY ULTs and interprets their effects; while a ULT computes the ES is
busy, and when a ULT blocks the ES immediately picks up the next one.
ESs with an empty pool park until the next push.

This is the lower level of the two-level scheduling hierarchy; all the
queueing behaviour the paper measures (target handler time, progress-ULT
starvation) comes out of this loop.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..sim import AnyOf, SimulationError, Timeout
from .pool import Pool
from .ult import ULT, Compute, UltState, WaitEventual, YieldNow

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import AbtRuntime

__all__ = ["ExecutionStream"]


class ExecutionStream:
    """A simulated OS thread executing ULTs from one pool."""

    def __init__(self, runtime: "AbtRuntime", pool: Pool, name: str = "es"):
        self.runtime = runtime
        self.pool = pool
        self.name = name
        self.current: Optional[ULT] = None
        #: Cumulative simulated seconds spent computing (incl. switch cost).
        self.busy_time = 0.0
        self._task = runtime.sim.spawn(self._main(), name=f"{name}.main")

    # -- main loop ---------------------------------------------------------

    def _main(self):
        rt = self.runtime
        while not rt.shutting_down:
            ult = self.pool.pop()
            if ult is None:
                work = self.pool.work_event()
                idx, _ = yield AnyOf([work, rt.shutdown_event])
                if idx == 1:
                    self.pool.cancel_wait(work)
                    return
                continue
            yield from self._run_ult(ult)

    def _run_ult(self, ult: ULT):
        rt = self.runtime
        sim = rt.sim
        slice_start = sim.now
        if rt.ctx_switch_cost > 0:
            yield Timeout(rt.ctx_switch_cost)
            self.busy_time += rt.ctx_switch_cost
        if ult.started_at is None:
            ult.started_at = sim.now
        ult.state = UltState.RUNNING
        self.current = ult
        try:
            while True:
                rt._current_ult = ult
                try:
                    if ult._throw_exc is not None:
                        exc, ult._throw_exc = ult._throw_exc, None
                        effect = ult.gen.throw(exc)
                    else:
                        effect = ult.gen.send(ult._send_value)
                except StopIteration as stop:
                    rt._finish_ult(ult, stop.value, None)
                    return
                except BaseException as exc:
                    rt._finish_ult(ult, None, exc)
                    if not rt.swallow_ult_errors:
                        raise
                    return
                finally:
                    rt._current_ult = None
                ult._send_value = None

                if isinstance(effect, Compute):
                    if effect.duration > 0:
                        yield Timeout(effect.duration)
                        self.busy_time += effect.duration
                elif isinstance(effect, WaitEventual):
                    ev = effect.eventual
                    if ev.is_set:
                        ult._send_value = (
                            (True, ev.value) if effect.timeout is not None else ev.value
                        )
                        continue
                    ult.state = UltState.BLOCKED
                    ult._wait_wrap = effect.timeout is not None
                    rt.num_blocked += 1
                    ev._add_waiter(ult)
                    if effect.timeout is not None:
                        sim.call_after(effect.timeout, rt._wait_timeout, ult, ev)
                    return
                elif isinstance(effect, YieldNow):
                    ult.state = UltState.READY
                    ult.pool.push(ult)
                    return
                else:
                    raise SimulationError(
                        f"ULT {ult.name!r} yielded non-ABT effect {effect!r}"
                    )
        finally:
            self.current = None
            for obs in rt._sched_observers:
                obs.on_slice(self, ult, slice_start, sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.current.name if self.current else None
        return f"ExecutionStream({self.name!r}, running={running!r})"
