"""Conservative time-windowed parallel discrete-event kernel.

One simulation is partitioned into *logical processes* (LPs), one per
simulated node or node group, each running its own
:class:`~repro.sim.Simulator` (wrapped in a full
:class:`~repro.cluster.Cluster`).  LPs synchronize conservatively: the
fabric's minimum cross-node latency
(:meth:`~repro.net.FabricConfig.min_cross_node_latency`) is the
*lookahead*, every LP executes the bounded window ``[T, T +
lookahead)``, boundary events are exchanged at a barrier, and the
global clock floor advances -- no rollback, no speculation, so all
existing instrumentation (columnar trace buffers, PVAR slots, monitor
sampling, invariant checking) runs unmodified inside each LP.

Entry points:

* :func:`run_partitioned` -- execute a :class:`PartitionPlan` with
  ``workers`` OS processes (``workers=1`` runs the identical window
  schedule in-process; single-LP plans always fall back to it).
* :meth:`PartitionPlan.from_topology` -- derive the LP partition
  automatically from a :class:`ClusterTopology` via traffic-weighted
  greedy bin-packing; hand-written :class:`LPSpec` lists remain the
  explicit override.
* ``verify=True`` -- run the serial reference and the parallel
  execution of the same plan and assert byte-identical digests.

See ``docs/performance.md`` (section 7) for the partitioning rules,
the lookahead derivation, and the non-goals.
"""

from .channel import BoundaryBatch, BoundaryEvent, inbound_order
from .kernel import (
    KernelError,
    ParallelRunResult,
    ParallelVerifyError,
    run_partitioned,
)
from .lp import LPContext, LPRuntime
from .partition import LPSpec, PartitionPlan
from .topology import ClusterTopology, NodeGroup, greedy_assign

__all__ = [
    "BoundaryBatch",
    "BoundaryEvent",
    "ClusterTopology",
    "KernelError",
    "LPContext",
    "LPRuntime",
    "LPSpec",
    "NodeGroup",
    "ParallelRunResult",
    "ParallelVerifyError",
    "PartitionPlan",
    "greedy_assign",
    "inbound_order",
    "run_partitioned",
]
