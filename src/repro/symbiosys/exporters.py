"""Deprecated alias for :mod:`repro.symbiosys.export`.

The text exporters moved into the unified export package; import
:func:`to_prometheus`, :func:`series_to_csv`, and :func:`write_text`
from ``repro.symbiosys.export`` instead.  This shim keeps historical
imports working and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from .export.text import series_to_csv, to_prometheus, write_text

__all__ = ["series_to_csv", "to_prometheus", "write_text"]

warnings.warn(
    "repro.symbiosys.exporters is deprecated; "
    "import from repro.symbiosys.export instead",
    DeprecationWarning,
    stacklevel=2,
)
