"""Fault-test harness: a tiny echo service under a Cluster."""

from types import SimpleNamespace

from repro.cluster import Cluster


def echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"echo": inp})


def make_echo_cluster(*, plan=None, seed=0, retry=None, stage=None, **cluster_kw):
    """One server + one client on separate nodes, echo RPC registered."""
    cluster = Cluster(
        seed=seed, stage=stage, fault_plan=plan, retry=retry, **cluster_kw
    )
    server = cluster.process("svr", "nA", n_handler_es=1)
    client = cluster.process("cli", "nB")
    server.register("echo", echo_handler)
    client.register("echo")
    return SimpleNamespace(
        cluster=cluster,
        sim=cluster.sim,
        server=server,
        client=client,
        injector=cluster.injector,
    )
