"""Instrumentation microbenchmarks: the measurement hot paths.

The observation layer's pitch is *near-zero overhead*, so its three hot
paths are regression-gated alongside the kernel suite:

* ``trace_append`` -- columnar :meth:`TraceBuffer.append_event` scalar
  records (the t1/t5/t8/t14 hook cost), with the t14 PVAR fusion tuple
  on every origin-complete record.
* ``pvar_update`` -- slot-interned PVAR counter/level/watermark updates
  plus a bound reader (the per-RPC and per-progress-iteration cost).
* ``monitor_tick`` -- one full :meth:`Monitor.sample` over a two-process
  cluster (PVAR rows, tasking gauges, fabric, detectors).

These run inside :func:`repro.bench.kernel.run_kernel_benchmarks`, so
their results land in ``BENCH_kernel.json`` and the existing ``--check``
gate covers them.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["INSTR_BENCHMARKS"]


def bench_trace_append(n_events: int) -> tuple[int, str]:
    from ..symbiosys.tracing import TraceBuffer

    buf = TraceBuffer("bench-proc")
    rpc_names = ("sdskv_put", "bake_create_write_persist", "sdskv_get", "bake_read")
    pvars = (3, 2, 1, 0, 0, 0, 0, 1.5e-6, 2.5e-7)
    t = 0.0
    for i in range(n_events):
        kind = i & 3
        t += 1e-6
        buf.append_event(
            kind,
            f"cli0-{i >> 2}",
            i & 3,
            i,
            t,
            t,
            rpc_names[kind],
            (i & 0xFFFF) | 1,
            i + 1,
            i if i & 1 else None,
            0,
            2,
            1,
            1,
            0.5,
            1 << 20,
            1e-6,
            2e-6,
            3e-6,
            4e-6,
            pvars=pvars if kind == 1 else None,
        )
    assert len(buf) == n_events
    return n_events, "events"


def bench_pvar_update(n_rounds: int) -> tuple[int, str]:
    from ..mercury.pvar import PvarBinding, PvarClass, PvarDef, PvarRegistry

    reg = PvarRegistry()
    b = PvarBinding.NO_OBJECT
    reg.define(PvarDef("bench_counter", PvarClass.COUNTER, b, "bench"))
    reg.define(PvarDef("bench_level", PvarClass.LEVEL, b, "bench"))
    reg.define(PvarDef("bench_hi", PvarClass.HIGHWATERMARK, b, "bench"))
    reg.define(PvarDef("bench_lo", PvarClass.LOWWATERMARK, b, "bench"))
    counter = reg.bind_update("bench_counter")
    level = reg.bind_update("bench_level")
    hi = reg.bind_update("bench_hi")
    lo = reg.bind_update("bench_lo")
    read_level = reg.reader("bench_level")
    for i in range(n_rounds):
        n = i & 7
        reg.add_at(counter, 1)
        reg.set_at(level, n)
        reg.hiwater_at(hi, n)
        reg.lowater_at(lo, n)
        read_level()
    assert reg.raw_value("bench_counter") == n_rounds
    return 5 * n_rounds, "updates"


def bench_monitor_tick(n_ticks: int) -> tuple[int, str]:
    from ..cluster import Cluster
    from ..symbiosys.monitor import Monitor, MonitorConfig

    with Cluster(stage=None) as cluster:
        processes = [
            cluster.process(f"p{i}", f"node{i}", n_handler_es=1)
            for i in range(2)
        ]
        monitor = Monitor(cluster.sim, MonitorConfig(), fabric=cluster.fabric)
        for mi in processes:
            monitor.attach(mi)
        # Drive the sampler body directly (no simulation run): this
        # isolates the per-tick snapshot cost itself.
        interval = 1e-4
        for k in range(1, n_ticks + 1):
            monitor.sample(k * interval)
    return n_ticks, "ticks"


#: name -> (full-scale thunk, smoke-scale thunk)
INSTR_BENCHMARKS: dict[str, tuple[Callable, Callable]] = {
    "instr_trace_append": (
        lambda: bench_trace_append(200_000),
        lambda: bench_trace_append(20_000),
    ),
    "instr_pvar_update": (
        lambda: bench_pvar_update(100_000),
        lambda: bench_pvar_update(10_000),
    ),
    "instr_monitor_tick": (
        lambda: bench_monitor_tick(2_000),
        lambda: bench_monitor_tick(200),
    ),
}
