"""Synchronization primitives for ULTs (eventuals, mutexes, barriers).

These mirror the Argobots objects Mochi uses: ``ABT_eventual`` for
completion notification (Margo blocks RPC-issuing ULTs on one until the
response callback fires) and ``ABT_mutex`` for backend serialization
(the SDSKV ``map`` backend's insert lock -- the Figure 10 mechanism).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional, TYPE_CHECKING

from .ult import ULT, UltState, WaitEventual

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import AbtRuntime

__all__ = ["Eventual", "AbtMutex", "AbtBarrier"]


class Eventual:
    """One-shot signal ULTs can block on (``ABT_eventual``).

    Waiting is done by yielding ``WaitEventual(eventual)`` from a ULT body
    (use the :meth:`wait` helper).  Signaling moves every blocked waiter
    back to its home pool at the current simulated instant.
    """

    __slots__ = ("runtime", "name", "_set", "_value", "_waiters")

    def __init__(self, runtime: "AbtRuntime", name: str = "eventual"):
        self.runtime = runtime
        self.name = name
        self._set = False
        self._value: Any = None
        self._waiters: list[ULT] = []

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def value(self) -> Any:
        return self._value

    def signal(self, value: Any = None) -> None:
        """Signal the eventual, waking all blocked waiters."""
        if self._set:
            raise RuntimeError(f"eventual {self.name!r} signaled twice")
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for ult in waiters:
            self.runtime._unblock(ult, value)

    def wait(self, timeout: Optional[float] = None) -> Generator:
        """ULT-side wait helper: ``value = yield from ev.wait()``.

        With a timeout the result is ``(ok, value)``.
        """
        result = yield WaitEventual(self, timeout)
        return result

    # -- hooks used by the execution stream interpreter -------------------

    def _add_waiter(self, ult: ULT) -> None:
        self._waiters.append(ult)

    def _remove_waiter(self, ult: ULT) -> bool:
        try:
            self._waiters.remove(ult)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Eventual({self.name!r}, set={self._set})"


class AbtMutex:
    """FIFO mutex for ULTs (``ABT_mutex``).

    Lock handoff is direct: ``unlock`` transfers ownership to the oldest
    waiter, which resumes already holding the mutex.
    """

    def __init__(self, runtime: "AbtRuntime", name: str = "abt_mutex"):
        self.runtime = runtime
        self.name = name
        self._locked = False
        self._owner: Optional[ULT] = None
        self._waiters: deque[tuple[ULT, Eventual]] = deque()
        #: Peak number of ULTs queued on this mutex (saturation metric).
        self.contention_high_watermark = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def lock(self) -> Generator:
        """``yield from mutex.lock()`` from a ULT body."""
        me = self.runtime.self_ult()
        if not self._locked:
            self._locked = True
            self._owner = me
            return
        ev = Eventual(self.runtime, f"{self.name}.lock")
        self._waiters.append((me, ev))
        if len(self._waiters) > self.contention_high_watermark:
            self.contention_high_watermark = len(self._waiters)
        yield WaitEventual(ev, None)
        # Resumed by unlock(); ownership was transferred to us.

    def unlock(self) -> None:
        if not self._locked:
            raise RuntimeError(f"{self.name}: unlock of unlocked mutex")
        me = self.runtime.self_ult()
        if self._owner is not None and me is not None and self._owner is not me:
            raise RuntimeError(f"{self.name}: unlock by non-owner ULT")
        if self._waiters:
            ult, ev = self._waiters.popleft()
            self._owner = ult
            ev.signal()
        else:
            self._locked = False
            self._owner = None


class AbtBarrier:
    """Reusable barrier for a fixed party of ULTs (``ABT_barrier``)."""

    def __init__(self, runtime: "AbtRuntime", parties: int, name: str = "abt_barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.runtime = runtime
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._generation = 0
        self._gate = Eventual(runtime, f"{name}.gen0")

    def wait(self) -> Generator:
        """``yield from barrier.wait()``; the last arrival releases all."""
        self._arrived += 1
        if self._arrived == self.parties:
            gate = self._gate
            self._generation += 1
            self._arrived = 0
            self._gate = Eventual(self.runtime, f"{self.name}.gen{self._generation}")
            gate.signal(self._generation)
            return self._generation
            yield  # pragma: no cover - makes this function a generator
        gen = yield WaitEventual(self._gate, None)
        return gen
