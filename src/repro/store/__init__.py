"""Persistent performance store: SQLite-backed, versioned, queryable.

The collect -> persist -> analyze workflow of the paper, with the
persist step upgraded from one-shot export files to a durable cross-run
store.  One ``.db`` file accumulates monitored cluster runs, overhead
studies, and bench suites; :mod:`repro.analysis` serves analytical
queries (regression, trends, knob importance, detector summaries) over
it, and :class:`~repro.store.archive.ArchivedRun` feeds archived runs
back through the same ``repro.symbiosys.analysis`` code paths that
consume live collectors.

Entry points::

    from repro.store import PerfStore, StoreWriter

    with PerfStore("perf.db") as store:
        with StoreWriter(store) as w:
            run = w.begin_run("my-run", seed=7)
            w.add_series(run, "latency_s", {"process": "svr"}, samples)
        print(store.runs())

    # Or let the cluster do it:
    with Cluster(seed=7, monitoring=True, store="perf.db") as cluster:
        ...

See ``docs/analysis-service.md`` for the schema and query protocol.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Optional, Union

from .schema import SCHEMA_VERSION, ensure_schema, schema_version
from .writer import (
    StoreWriter,
    git_rev,
    labels_to_text,
    normalized_machine,
    record_bench_suite,
    record_cluster_run,
    record_overhead_study,
    record_parallel_run,
)

__all__ = [
    "PerfStore",
    "SCHEMA_VERSION",
    "StoreWriter",
    "ensure_schema",
    "git_rev",
    "labels_to_text",
    "normalized_machine",
    "open_store",
    "record_bench_suite",
    "record_cluster_run",
    "record_overhead_study",
    "record_parallel_run",
    "schema_version",
]


class PerfStore:
    """One performance-store database and its read API.

    Writes go through :class:`StoreWriter`; everything here is a pure
    read (deterministically ordered, so serialized query replies are
    byte-stable for identical stores).
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        # check_same_thread=False: the analysis server executes queries
        # from handler threads; AnalysisService serializes access with a
        # lock, so the connection is never used concurrently.
        self.conn = sqlite3.connect(path, check_same_thread=False)
        self.conn.row_factory = sqlite3.Row
        ensure_schema(self.conn)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "PerfStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- runs ---------------------------------------------------------------

    def runs(self, kind: Optional[str] = None) -> list[dict]:
        """All runs (optionally of one kind), oldest first."""
        sql = (
            "SELECT run_id, name, kind, seed, config, tags, created"
            " FROM runs"
        )
        params: tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        sql += " ORDER BY run_id"
        return [
            {
                "run_id": r["run_id"],
                "name": r["name"],
                "kind": r["kind"],
                "seed": r["seed"],
                "config": json.loads(r["config"]),
                "tags": json.loads(r["tags"]),
                "created": r["created"],
            }
            for r in self.conn.execute(sql, params)
        ]

    def run(self, ref: Union[int, str]) -> dict:
        """One run by id, or by name (the most recent of that name)."""
        run_id = self.resolve_run(ref)
        row = self.conn.execute(
            "SELECT run_id, name, kind, seed, config, tags, extra, created"
            " FROM runs WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        if row is None:  # pragma: no cover - resolve_run already checks
            raise KeyError(f"no run {ref!r}")
        return {
            "run_id": row["run_id"],
            "name": row["name"],
            "kind": row["kind"],
            "seed": row["seed"],
            "config": json.loads(row["config"]),
            "tags": json.loads(row["tags"]),
            "extra": json.loads(row["extra"]),
            "created": row["created"],
        }

    def resolve_run(self, ref: Union[int, str]) -> int:
        """Map a run reference (id, numeric string, or name) to its id;
        names resolve to the most recent matching run."""
        if isinstance(ref, int):
            candidate = ref
        elif isinstance(ref, str) and ref.isdigit():
            candidate = int(ref)
        else:
            row = self.conn.execute(
                "SELECT MAX(run_id) FROM runs WHERE name = ?", (ref,)
            ).fetchone()
            if row is None or row[0] is None:
                raise KeyError(f"no run named {ref!r}")
            return row[0]
        row = self.conn.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (candidate,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {candidate}")
        return candidate

    # -- metrics ------------------------------------------------------------

    def metric_names(self, run: Union[int, str]) -> list[str]:
        run_id = self.resolve_run(run)
        return [
            r[0]
            for r in self.conn.execute(
                "SELECT DISTINCT name FROM metrics WHERE run_id = ?"
                " ORDER BY name",
                (run_id,),
            )
        ]

    def series_keys(self, run: Union[int, str]) -> list[tuple[str, str]]:
        """Sorted ``(name, labels)`` pairs of every series in a run."""
        run_id = self.resolve_run(run)
        return [
            (r[0], r[1])
            for r in self.conn.execute(
                "SELECT name, labels FROM metrics WHERE run_id = ?"
                " ORDER BY name, labels",
                (run_id,),
            )
        ]

    def samples(
        self,
        run: Union[int, str],
        name: str,
        labels: Optional[Union[str, dict]] = None,
    ) -> list[tuple[float, float]]:
        """Chronological ``(t, value)`` samples of one series; with
        ``labels=None``, samples of every series of that name merged in
        (labels, t) order."""
        run_id = self.resolve_run(run)
        sql = (
            "SELECT s.t, s.value FROM metrics m"
            " JOIN samples s ON s.metric_id = m.metric_id"
            " WHERE m.run_id = ? AND m.name = ?"
        )
        params: list = [run_id, name]
        if labels is not None:
            sql += " AND m.labels = ?"
            params.append(labels_to_text(labels)
                          if isinstance(labels, dict) else labels)
        sql += " ORDER BY m.labels, s.rowid"
        return [(r[0], r[1]) for r in self.conn.execute(sql, params)]

    def metric_values(self, run: Union[int, str], name: str) -> list[float]:
        """Just the values of :meth:`samples` (analysis convenience)."""
        return [v for _, v in self.samples(run, name)]

    def pvar_samples(
        self, run: Union[int, str], name: Optional[str] = None
    ) -> list[tuple[str, str, float, float]]:
        """Rows of the ``pvar_samples`` view: ``(name, labels, t,
        value)`` for the PVAR-derived series only."""
        run_id = self.resolve_run(run)
        sql = (
            "SELECT name, labels, t, value FROM pvar_samples"
            " WHERE run_id = ?"
        )
        params: list = [run_id]
        if name is not None:
            sql += " AND name = ?"
            params.append(name)
        sql += " ORDER BY name, labels, t"
        return [tuple(r) for r in self.conn.execute(sql, params)]

    # -- traces, slices, findings, profiles ---------------------------------

    def trace_event_rows(self, run: Union[int, str]) -> list[sqlite3.Row]:
        run_id = self.resolve_run(run)
        return self.conn.execute(
            "SELECT * FROM trace_events WHERE run_id = ? ORDER BY seq",
            (run_id,),
        ).fetchall()

    def sched_slice_rows(self, run: Union[int, str]) -> list[sqlite3.Row]:
        run_id = self.resolve_run(run)
        return self.conn.execute(
            "SELECT * FROM sched_slices WHERE run_id = ? ORDER BY seq",
            (run_id,),
        ).fetchall()

    def findings(self, run: Union[int, str]) -> list[dict]:
        run_id = self.resolve_run(run)
        return [
            {
                "time": r["time"],
                "detector": r["detector"],
                "process": r["process"],
                "message": r["message"],
                "value": r["value"],
                "wait_state": r["wait_state"],
            }
            for r in self.conn.execute(
                "SELECT * FROM findings WHERE run_id = ? ORDER BY seq",
                (run_id,),
            )
        ]

    def retry_records(self, run: Union[int, str]) -> list[dict]:
        """Retry/timeout episodes of one run, in recording order."""
        run_id = self.resolve_run(run)
        return [
            {
                "time": r["time"],
                "process": r["process"],
                "request_id": r["request_id"],
                "rpc_name": r["rpc_name"],
                "attempt": r["attempt"],
                "delay": r["delay"],
                "target": r["target"],
                "kind": r["kind"],
            }
            for r in self.conn.execute(
                "SELECT * FROM retry_records WHERE run_id = ? ORDER BY seq",
                (run_id,),
            )
        ]

    def breakdown_rows(self, run: Union[int, str]) -> list[dict]:
        """Stored per-request critical-path decompositions (JSON fields
        decoded), in recording order -- empty for pre-v2 runs, which the
        analysis ops fall back to recomputing via the engine."""
        run_id = self.resolve_run(run)
        return [
            {
                "request_id": r["request_id"],
                "span_id": r["span_id"],
                "rpc_name": r["rpc_name"],
                "origin": r["origin"],
                "target": r["target"],
                "start_ps": r["start_ps"],
                "total_ps": r["total_ps"],
                "start_true": r["start_true"],
                "end_true": r["end_true"],
                "n_faults": r["n_faults"],
                "categories": json.loads(r["categories"]),
                "segments": json.loads(r["segments"]),
                "blame": json.loads(r["blame"]),
            }
            for r in self.conn.execute(
                "SELECT * FROM breakdowns WHERE run_id = ? ORDER BY seq",
                (run_id,),
            )
        ]

    def profile_rows(
        self, run: Union[int, str], side: str = "origin"
    ) -> list[dict]:
        run_id = self.resolve_run(run)
        return [
            {
                "callpath": r["callpath"],
                "callpath_name": r["callpath_name"],
                "origin": r["origin"],
                "target": r["target"],
                "interval": r["interval"],
                "count": r["count"],
                "total": r["total"],
                "min": r["min"],
                "max": r["max"],
                "reservoir": json.loads(r["reservoir"]),
            }
            for r in self.conn.execute(
                "SELECT * FROM profiles WHERE run_id = ? AND side = ?"
                " ORDER BY rowid",
                (run_id, side),
            )
        ]

    def callpath_names(self, run: Union[int, str]) -> dict[int, str]:
        run_id = self.resolve_run(run)
        return {
            r[0]: r[1]
            for r in self.conn.execute(
                "SELECT component, name FROM callpath_names"
                " WHERE run_id = ? ORDER BY component",
                (run_id,),
            )
        }

    # -- bench --------------------------------------------------------------

    def bench_suites(self) -> list[str]:
        return [
            r[0]
            for r in self.conn.execute(
                "SELECT DISTINCT suite FROM bench_results ORDER BY suite"
            )
        ]

    def bench_results(self, suite: str, run: Optional[int] = None) -> dict:
        """The ``results`` mapping of one bench suite run (default: the
        most recent run of that suite)."""
        if run is None:
            row = self.conn.execute(
                "SELECT MAX(run_id) FROM bench_results WHERE suite = ?",
                (suite,),
            ).fetchone()
            if row is None or row[0] is None:
                return {}
            run = row[0]
        return {
            r["benchmark"]: {
                "median_s": r["median_s"],
                "runs_s": json.loads(r["runs_s"]),
                "units": r["units"],
                "unit_name": r["unit_name"],
                "rate_per_s": r["rate_per_s"],
            }
            for r in self.conn.execute(
                "SELECT * FROM bench_results WHERE suite = ? AND run_id = ?"
                " ORDER BY benchmark",
                (suite, run),
            )
        }

    def bench_calibration(self, suite: str, run: Optional[int] = None):
        sql = "SELECT calibration_s FROM bench_results WHERE suite = ?"
        params: list = [suite]
        if run is not None:
            sql += " AND run_id = ?"
            params.append(run)
        sql += " ORDER BY run_id DESC LIMIT 1"
        row = self.conn.execute(sql, params).fetchone()
        return row[0] if row is not None else None

    def bench_baseline(self) -> dict:
        """The latest run of every suite, in the bundle shape
        ``python -m repro.bench --check`` consumes (so a ``.db`` works
        anywhere a committed BENCH JSON did)."""
        bundle = {}
        for suite in self.bench_suites():
            bundle[suite] = {
                "suite": suite,
                "meta": {"calibration_s": self.bench_calibration(suite)},
                "results": self.bench_results(suite),
            }
        return bundle

    def bench_history(self, suite: str) -> list[dict]:
        """The dated trajectory of one suite, oldest first."""
        return [
            {
                "date": r["date"],
                "machine": r["machine"],
                "git_rev": r["git_rev"],
                "calibration_s": r["calibration_s"],
                "results": json.loads(r["results"]),
            }
            for r in self.conn.execute(
                "SELECT * FROM bench_history WHERE suite = ?"
                " ORDER BY date, machine, git_rev",
                (suite,),
            )
        ]


def open_store(path: str) -> PerfStore:
    """Open (creating if needed) the store at ``path``."""
    return PerfStore(path)
