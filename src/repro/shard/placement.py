"""Immutable shard -> owner placement snapshots.

The keyspace is first folded onto a fixed number of *shards*
(``shard_of(key) = h64(key) % n_shards``); the ring then places each
shard on a node.  Fixing the shard count makes migration tractable —
membership changes move whole shards, never individual keys — and the
consistent ring keeps the number of moved shards near K/N on a single
node change.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ring import HashRing, h64

__all__ = ["ShardMap", "ShardMove", "shard_of"]


def shard_of(key: str, n_shards: int) -> int:
    return h64(key) % n_shards


@dataclass(frozen=True)
class ShardMove:
    """One shard changing owner between two placement versions."""

    shard: int
    src: str
    dst: str


@dataclass(frozen=True)
class ShardMap:
    """Placement snapshot: shard index -> owner address, at a version.

    ``version`` mirrors the SSG view epoch the map was derived from, so
    routers can tell which of two maps is newer.
    """

    version: int
    n_shards: int
    owners: tuple[str, ...]

    @classmethod
    def build(cls, ring: HashRing, n_shards: int, version: int = 0) -> "ShardMap":
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        owners = tuple(ring.node_for(f"shard:{i}") for i in range(n_shards))
        return cls(version=version, n_shards=n_shards, owners=owners)

    def shard_of(self, key: str) -> int:
        return shard_of(key, self.n_shards)

    def owner_of_shard(self, shard: int) -> str:
        return self.owners[shard]

    def owner_of_key(self, key: str) -> str:
        return self.owners[self.shard_of(key)]

    def shards_on(self, addr: str) -> list[int]:
        return [i for i, o in enumerate(self.owners) if o == addr]

    def diff(self, new: "ShardMap") -> list[ShardMove]:
        """Shard moves from ``self`` to ``new`` (sorted by shard)."""
        if new.n_shards != self.n_shards:
            raise ValueError("cannot diff maps with different shard counts")
        return [
            ShardMove(shard=i, src=a, dst=b)
            for i, (a, b) in enumerate(zip(self.owners, new.owners))
            if a != b
        ]
