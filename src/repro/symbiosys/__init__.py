"""SYMBIOSYS: integrated performance instrumentation, measurement, and
analysis for HPC microservices (the paper's core contribution).

Public surface:

* :class:`SymbiosysCollector` -- create per-process instrumentation and
  consolidate profiles/traces at the end of a run.
* :class:`Stage` -- Baseline / Stage 1 / Stage 2 / Full Support.
* :mod:`repro.symbiosys.analysis` -- the three analysis scripts.
* :mod:`repro.symbiosys.zipkin` -- Zipkin JSON trace export.
* :class:`Monitor` / :class:`MonitorConfig` -- always-on online
  telemetry: periodic sampling into ring-buffer time-series, scheduler
  slice recording, and anomaly detection.
* :mod:`repro.symbiosys.export` -- the unified export surface
  (Prometheus text, CSV time-series, profile CSV, trace JSON,
  Perfetto, and the persistent performance store) behind one
  ``Exporter`` registry.
"""

from .callpath import MAX_DEPTH, CallpathRegistry, components, depth, hash16, push
from .collector import SymbiosysCollector
from .export import series_to_csv, to_prometheus
from .instrument import SymbiosysInstrumentation
from .metrics import MetricsRegistry, SeriesStore, TimeSeries
from .monitor import AnomalyDetector, Finding, Monitor, MonitorConfig
from .perfetto import chrome_trace_json, to_chrome_trace, write_chrome_trace
from .policy import (
    DedicateProgressES,
    GrowHandlerPool,
    MetricSample,
    Policy,
    PolicyAction,
    PolicyEngine,
    RaiseOfiMaxEvents,
)
from .profiling import INTERVALS, IntervalStats, ProfileKey, ProfileStore
from .stages import Stage
from .tracing import (
    EventKind,
    FaultAnnotation,
    SpanIdAllocator,
    TraceBuffer,
    TraceEvent,
)

__all__ = [
    "AnomalyDetector",
    "CallpathRegistry",
    "DedicateProgressES",
    "EventKind",
    "FaultAnnotation",
    "Finding",
    "GrowHandlerPool",
    "MetricSample",
    "MetricsRegistry",
    "Monitor",
    "MonitorConfig",
    "Policy",
    "PolicyAction",
    "PolicyEngine",
    "RaiseOfiMaxEvents",
    "INTERVALS",
    "IntervalStats",
    "MAX_DEPTH",
    "ProfileKey",
    "ProfileStore",
    "SeriesStore",
    "SpanIdAllocator",
    "Stage",
    "SymbiosysCollector",
    "SymbiosysInstrumentation",
    "TimeSeries",
    "TraceBuffer",
    "TraceEvent",
    "chrome_trace_json",
    "components",
    "depth",
    "hash16",
    "push",
    "series_to_csv",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
]
