"""Figure 7: Sonata -- mapping execution time to individual steps.

One origin and one target on separate nodes; the benchmark stores a
fixed-length JSON record array in batches via sonata_store_multi_json
(paper: 50,000 records, batch 5,000 -- scaled 5x down here, same ratio).
The JSON travels as RPC metadata, overflowing the eager buffer, so the
breakdown shows a visible input-deserialization share (~27% in the
paper) and a comparatively low internal-RDMA share.
"""

from repro.experiments import ascii_table, format_seconds, run_sonata_experiment
from .conftest import run_once

N_RECORDS = 10_000
BATCH = 1_000  # 50_000 / 5_000 in the paper; same 10:1 ratio


def _run():
    return run_sonata_experiment(n_records=N_RECORDS, batch_size=BATCH)


def test_fig7_sonata_breakdown(benchmark, report):
    result = run_once(benchmark, _run)
    breakdown = result.target_execution_breakdown()
    total = (
        breakdown["target_execution_time"]
        + breakdown["internal_rdma_transfer_time"]
    )
    rows = [
        {
            "step": name,
            "cumulative": format_seconds(value),
            "share": f"{100 * value / total:.1f}%",
        }
        for name, value in breakdown.items()
        if name != "target_execution_time"
    ]
    report.append(
        f"Figure 7: cumulative target execution breakdown "
        f"({N_RECORDS} records, batch {BATCH})"
    )
    report.append(ascii_table(rows))

    deser_frac = result.deserialization_fraction
    rdma_frac = breakdown["internal_rdma_transfer_time"] / total
    # Shape: deserialization is a substantial share (paper: 27%), while
    # the internal RDMA transfer is comparatively low.
    assert 0.15 <= deser_frac <= 0.40, f"deser fraction {deser_frac:.3f}"
    assert rdma_frac < deser_frac / 2
    # The store work itself is the largest single component.
    assert breakdown["document_store_time"] > breakdown["input_deserialization_time"]
    benchmark.extra_info["deser_fraction"] = round(deser_frac, 4)
    benchmark.extra_info["rdma_fraction"] = round(rdma_frac, 4)
