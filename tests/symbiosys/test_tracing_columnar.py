"""Columnar TraceBuffer: the scalar hot path must materialize events
indistinguishable from the old per-event dataclass construction --
same values, same dict key orders, same int/float types -- and
``by_request`` must order deterministically on ``(true_ts, seq)``."""

from repro.symbiosys.tracing import (
    _KIND_CODE,
    TRACE_DATA_KEYS,
    TRACE_PVAR_FLOAT_KEYS,
    TRACE_PVAR_INT_KEYS,
    EventKind,
    TraceBuffer,
    TraceEvent,
)

_PVARS = (5, 3, 2, 1, 0, 0, 4, 1.5e-6, 2.5e-7)


def _scalar_kwargs(**overrides):
    kw = dict(
        kind_code=_KIND_CODE[EventKind.ORIGIN_COMPLETE],
        request_id="cli0-7",
        order=3,
        lamport=41,
        local_ts=1.25e-3,
        true_ts=1.3e-3,
        rpc_name="sdskv_put",
        callpath=0xDEADBEEF,
        span_id=9,
        parent_span_id=8,
        provider_id=1,
        num_blocked=2,
        num_ready=1,
        num_running=1,
        cpu_util=0.75,
        memory_bytes=1 << 20,
        d0=2.0e-6,
        d1=9.0e-6,
        pvars=_PVARS,
    )
    kw.update(overrides)
    return kw


def _equivalent_event(process="p0", **overrides):
    kw = _scalar_kwargs(**overrides)
    code = kw["kind_code"]
    keys = TRACE_DATA_KEYS[code]
    data = dict(zip(keys, (kw["d0"], kw["d1"], kw["d2"] if "d2" in kw else 0.0)))
    pvars = {}
    if kw["pvars"] is not None:
        pvars = dict(
            zip(TRACE_PVAR_INT_KEYS + TRACE_PVAR_FLOAT_KEYS, kw["pvars"])
        )
    return TraceEvent(
        kind=EventKind.ORIGIN_COMPLETE,
        request_id=kw["request_id"],
        order=kw["order"],
        lamport=kw["lamport"],
        process=process,
        local_ts=kw["local_ts"],
        true_ts=kw["true_ts"],
        rpc_name=kw["rpc_name"],
        callpath=kw["callpath"],
        span_id=kw["span_id"],
        parent_span_id=kw["parent_span_id"],
        provider_id=kw["provider_id"],
        data=data,
        pvars=pvars,
        sysstats={
            "num_blocked": kw["num_blocked"],
            "num_ready": kw["num_ready"],
            "num_running": kw["num_running"],
            "cpu_util": kw["cpu_util"],
            "memory_bytes": kw["memory_bytes"],
        },
    )


def test_scalar_append_materializes_equal_event():
    buf = TraceBuffer("p0")
    buf.append_event(**_scalar_kwargs())
    assert len(buf) == 1
    assert buf.events[0] == _equivalent_event()


def test_materialized_dict_key_orders_are_canonical():
    """Exports serialize these dicts in insertion order, so the orders
    are part of the byte-identical-output contract."""
    buf = TraceBuffer("p0")
    buf.append_event(**_scalar_kwargs())
    ev = buf.events[0]
    assert tuple(ev.data) == TRACE_DATA_KEYS[_KIND_CODE[ev.kind]]
    assert tuple(ev.pvars) == TRACE_PVAR_INT_KEYS + TRACE_PVAR_FLOAT_KEYS
    assert tuple(ev.sysstats) == (
        "num_blocked",
        "num_ready",
        "num_running",
        "cpu_util",
        "memory_bytes",
    )


def test_materialized_value_types_survive_columns():
    """``json.dumps`` and the Zipkin tag renderer print ints and floats
    differently, so the columns must preserve the original types."""
    buf = TraceBuffer("p0")
    buf.append_event(**_scalar_kwargs())
    ev = buf.events[0]
    for name in TRACE_PVAR_INT_KEYS:
        assert type(ev.pvars[name]) is int, name
    for name in TRACE_PVAR_FLOAT_KEYS:
        assert type(ev.pvars[name]) is float, name
    assert type(ev.sysstats["memory_bytes"]) is int
    assert type(ev.sysstats["cpu_util"]) is float
    assert type(ev.order) is int
    assert type(ev.local_ts) is float


def test_parent_none_and_no_pvars_round_trip():
    buf = TraceBuffer("p0")
    buf.append_event(
        **_scalar_kwargs(
            kind_code=_KIND_CODE[EventKind.ORIGIN_FORWARD],
            parent_span_id=None,
            pvars=None,
            d0=0.0,
            d1=0.0,
        )
    )
    ev = buf.events[0]
    assert ev.kind is EventKind.ORIGIN_FORWARD
    assert ev.parent_span_id is None
    assert ev.data == {}
    assert ev.pvars == {}


def test_generic_append_preserves_object_identity():
    """Replay tooling appends pre-built events with arbitrary payloads;
    the buffer must hand back the very same objects."""
    buf = TraceBuffer("p0")
    buf.append_event(**_scalar_kwargs())
    custom = _equivalent_event()
    custom.data = {"weird_key": "not-a-float"}
    buf.append(custom)
    assert len(buf) == 2
    assert buf.events[1] is custom
    assert buf.events[1].data == {"weird_key": "not-a-float"}


def test_events_are_materialized_once():
    buf = TraceBuffer("p0")
    buf.append_event(**_scalar_kwargs())
    first = buf.events[0]
    buf.append_event(**_scalar_kwargs(request_id="cli0-8", true_ts=2e-3))
    assert buf.events[0] is first  # cache survives later appends
    assert buf.events[0] is buf.events[0]


def test_by_request_orders_by_true_ts_then_sequence():
    """Events landing at the *same* true timestamp (common when several
    collectors snapshot one instant) must keep append order, and an
    event appended late with an earlier timestamp must sort first."""
    buf = TraceBuffer("p0")
    # Three same-timestamp events for request A, interleaved with B.
    buf.append_event(**_scalar_kwargs(request_id="A", order=0, true_ts=5e-3))
    buf.append_event(**_scalar_kwargs(request_id="B", order=0, true_ts=5e-3))
    buf.append_event(**_scalar_kwargs(request_id="A", order=1, true_ts=5e-3))
    buf.append_event(**_scalar_kwargs(request_id="A", order=2, true_ts=5e-3))
    # Appended last but happened first: must lead its group.
    buf.append_event(
        **_scalar_kwargs(request_id="A", order=9, true_ts=1e-3, local_ts=9.0)
    )
    groups = buf.by_request()
    assert list(groups) == ["A", "B"]  # first-seen order of sorted stream
    assert [ev.order for ev in groups["A"]] == [9, 0, 1, 2]
    assert [ev.order for ev in groups["B"]] == [0]


def test_by_request_sorts_on_true_ts_not_local_ts():
    buf = TraceBuffer("p0")
    # Drifted local clock says the opposite order of simulator truth.
    buf.append_event(
        **_scalar_kwargs(request_id="A", order=0, true_ts=2e-3, local_ts=1.0)
    )
    buf.append_event(
        **_scalar_kwargs(request_id="A", order=1, true_ts=1e-3, local_ts=2.0)
    )
    assert [ev.order for ev in buf.by_request()["A"]] == [1, 0]
