"""Tests for runtime reconfiguration: handler-ES growth, progress-ULT
migration, live OFI cap changes, and the ULT sleep primitive."""

import pytest

import repro.argobots as abt
from repro.argobots import AbtRuntime
from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from .conftest import echo_handler, make_pair, run_client_calls


def test_rt_sleep_blocks_for_duration():
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    rt.create_xstream(pool)
    out = []

    def body():
        yield from rt.sleep(1.5)
        out.append(sim.now)

    rt.spawn(body(), pool)
    sim.run(until=5.0)
    assert out == [1.5]


def test_rt_sleep_frees_es():
    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    rt.create_xstream(pool)
    out = []

    def sleeper():
        yield from rt.sleep(10.0)
        out.append(("sleeper", sim.now))

    def worker():
        yield abt.Compute(1.0)
        out.append(("worker", sim.now))

    rt.spawn(sleeper(), pool)
    rt.spawn(worker(), pool)
    sim.run(until=20.0)
    # The worker ran while the sleeper was blocked on the single ES.
    assert out == [("worker", 1.0), ("sleeper", 10.0)]


def test_rt_sleep_rejects_negative():
    sim = Simulator()
    rt = AbtRuntime(sim)
    gen = rt.sleep(-1.0)
    with pytest.raises(ValueError):
        next(gen)


def test_set_ofi_max_events_runtime():
    world = make_pair()
    assert world.client.hg.ofi_max_events == 16
    world.client.set_ofi_max_events(64)
    assert world.client.hg.ofi_max_events == 64
    with pytest.raises(ValueError):
        world.client.set_ofi_max_events(0)


def test_add_handler_es_grows_pool():
    world = make_pair()  # server starts with 2 handler ESs
    before = len(world.server.rt.xstreams)
    world.server.add_handler_es()
    assert len(world.server.rt.xstreams) == before + 1
    # New ES serves the handler pool.
    new_es = world.server.rt.xstreams[-1]
    assert new_es.pool is world.server.handler_pool


def test_add_handler_es_promotes_primary_dispatch():
    """A server running handlers on the primary pool gets a dedicated
    handler pool on first growth, and RPCs still work."""
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    server = MargoInstance(sim, fabric, "svr", "n0")  # no handler ESs
    client = MargoInstance(sim, fabric, "cli", "n1")
    assert server.handler_pool is server.primary_pool
    server.add_handler_es()
    assert server.handler_pool is not server.primary_pool

    server.register("echo", echo_handler)
    client.register("echo")
    results = []

    def body():
        out = yield from client.forward("svr", "echo", {"x": 1})
        results.append(out)

    client.client_ult(body())
    sim.run_until(lambda: results, limit=1.0)
    assert results == [{"echo": {"x": 1}}]


def test_enable_progress_thread_migrates_loop():
    world = make_pair()
    client = world.client
    assert client.progress_pool is client.primary_pool
    migrated = client.enable_progress_thread()
    assert migrated
    assert client.progress_pool is not client.primary_pool
    # Second call is a no-op.
    assert not client.enable_progress_thread()

    # RPCs still complete after the migration.
    world.server.register("echo", echo_handler)
    client.register("echo")
    results = run_client_calls(world, [("echo", {"i": i}) for i in range(5)])
    world.sim.run_until(lambda: len(results) == 5, limit=1.0)
    assert len(results) == 5


def test_progress_migration_midstream():
    """Migrating while RPCs are in flight loses nothing."""
    world = make_pair()
    world.server.register("echo", echo_handler)
    world.client.register("echo")
    results = run_client_calls(world, [("echo", {"i": i}) for i in range(20)])
    # Let a few complete, then migrate mid-run.
    world.sim.run_until(lambda: len(results) >= 3, limit=1.0)
    world.client.enable_progress_thread()
    world.sim.run_until(lambda: len(results) == 20, limit=2.0)
    assert sorted(r["echo"]["i"] for r in results) == list(range(20))
