"""Kernel microbenchmarks: the simulator's per-event hot paths.

Each benchmark isolates one kernel mechanism the stack leans on:

* ``event_churn`` -- heap-ordered timer chains at mixed delays (the
  fabric / progress-loop pattern).
* ``fast_lane`` -- same-instant ``call_at(sim.now, ...)`` cascades (the
  event-fire / task-resume / spawn pattern, the dominant case).
* ``spawn_resume`` -- generator tasks stepping through zero-delay
  yields (the ULT dispatch pattern).
* ``anyof`` -- first-of-several waits with a losing timeout branch (the
  pool-wait / shutdown-race pattern).
* ``rpc_round_trip`` -- a full Margo echo RPC through fabric, Mercury,
  and Argobots; the whole-stack per-RPC wall cost.
* ``parallel_window_sync`` -- the same echo RPC split across two
  logical processes of the conservative parallel kernel
  (:mod:`repro.sim.parallel`), one window per lookahead interval; the
  per-window cost of the coordinator loop, boundary-event routing, and
  pickle transport that every parallel run pays.
* ``boundary_batch`` -- the boundary channels' wire format in
  isolation: seq-stamped events grouped into columnar
  :class:`~repro.sim.parallel.BoundaryBatch` objects, round-tripped
  through pickle, and expanded back into canonical injection order --
  the per-message cost every cross-LP byte pays at the barrier.

Every benchmark builds a fresh world per repeat and returns the number
of processed work units, so results read as events/sec or RPCs/sec.
"""

from __future__ import annotations

from typing import Callable

from ..sim import AnyOf, Simulator, Timeout
from .harness import BenchResult, SuiteResult, time_bench
from .instr import INSTR_BENCHMARKS

__all__ = ["KERNEL_BENCHMARKS", "run_kernel_benchmarks"]


def bench_event_churn(n_events: int) -> tuple[int, str]:
    sim = Simulator()
    count = [0]

    def tick(delay: float) -> None:
        count[0] += 1
        if count[0] < n_events:
            sim.call_after(delay, tick, delay)

    # Four interleaved chains at co-prime delays keep the heap busy.
    for delay in (1e-6, 3e-6, 7e-6, 13e-6):
        sim.call_after(delay, tick, delay)
    sim.run()
    return count[0], "events"


def bench_fast_lane(n_events: int) -> tuple[int, str]:
    sim = Simulator()
    remaining = [n_events]

    def hop() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_at(sim.now, hop)

    sim.call_at(0.0, hop)
    sim.run()
    return n_events, "events"


def bench_spawn_resume(n_tasks: int, n_steps: int) -> tuple[int, str]:
    sim = Simulator()

    def body():
        for _ in range(n_steps):
            yield Timeout(0.0)

    for _ in range(n_tasks):
        sim.spawn(body())
    sim.run()
    return n_tasks * n_steps, "resumes"


def bench_anyof(n_waits: int) -> tuple[int, str]:
    sim = Simulator()

    def body():
        for i in range(n_waits):
            ev = sim.event()
            sim.call_after(1e-6, ev.succeed, i)
            # The event wins; the Timeout branch stays queued and fires
            # later as a loser no-op.
            idx, _ = yield AnyOf([ev, Timeout(5e-6)])
            assert idx == 0

    sim.spawn(body())
    sim.run()
    return n_waits, "waits"


def _echo_handler(mi, handle):
    inp = yield from mi.get_input(handle)
    yield from mi.respond(handle, {"n": inp["n"]})


def bench_rpc_round_trip(n_rpcs: int) -> tuple[int, str]:
    from ..cluster import Cluster

    with Cluster(stage=None) as cluster:
        server = cluster.process("svr", "nodeS", n_handler_es=1)
        server.register("echo", _echo_handler)
        client = cluster.process("cli", "nodeC")
        client.register("echo")
        done = cluster.sim.event("bench-done")

        def body():
            for i in range(n_rpcs):
                yield from client.forward("svr", "echo", {"n": i})
            done.succeed(cluster.sim.now)

        client.client_ult(body(), name="bench-rpc")
        if not _wait(cluster, done, limit=600.0):
            raise RuntimeError("rpc benchmark did not finish")
    return n_rpcs, "rpcs"


def _window_server(ctx) -> None:
    mi = ctx.process("wsvr", "wnodeS", n_handler_es=1)
    mi.register("echo", _echo_handler)
    ctx.register_remote("wcli", "wnodeC")


def _window_client(ctx, n_rpcs: int) -> None:
    mi = ctx.process("wcli", "wnodeC")
    mi.register("echo")
    ctx.register_remote("wsvr", "wnodeS")
    done = ctx.cluster.sim.event("window-bench-done")

    def body():
        for i in range(n_rpcs):
            yield from mi.forward("wsvr", "echo", {"n": i})
        done.succeed(ctx.cluster.sim.now)

    mi.client_ult(body(), name="bench-window")
    ctx.set_done(done)


def bench_parallel_window_sync(n_rpcs: int) -> tuple[int, str]:
    """Sequential cross-LP echo RPCs: every round trip spans several
    lookahead windows, so the wall cost is dominated by the kernel's
    window loop rather than the RPC work itself.  Reported in windows
    executed per second."""
    from functools import partial

    from ..sim.parallel import LPSpec, PartitionPlan, run_partitioned

    plan = PartitionPlan(
        lps=[
            LPSpec("server", _window_server),
            LPSpec("client", partial(_window_client, n_rpcs=n_rpcs)),
        ],
        cluster_kw={"stage": None},
        collect=False,
        name="bench_window_sync",
    )
    result = run_partitioned(plan, workers=1)
    if not result.done:
        raise RuntimeError("window-sync benchmark did not finish")
    return result.windows_executed, "windows"


def bench_boundary_batch(n_events: int, n_channels: int) -> tuple[int, str]:
    """The batched boundary-channel transport, no kernel attached:
    group ``n_events`` seq-stamped events into per-channel columnar
    batches, pickle the batch list across a process boundary (in
    memory), and expand the result back into the canonical ``(recv_ts,
    src_lp, seq)`` injection order."""
    from ..net import Message
    from ..sim.parallel.channel import (
        BoundaryBatch,
        BoundaryEvent,
        inbound_order,
        pickle_roundtrip,
    )

    lookahead = 1.5e-6
    per_channel: list[list] = [[] for _ in range(n_channels)]
    for seq in range(n_events):
        src = seq % n_channels
        send_ts = 1e-7 * seq
        per_channel[src].append(
            BoundaryEvent(
                src_lp=src,
                dst_lp=n_channels,
                seq=seq,
                send_ts=send_ts,
                recv_ts=send_ts + lookahead,
                msg=Message(
                    src=f"p{src}",
                    dst="sink",
                    size_bytes=128,
                    payload={"seq": seq},
                    kind="bench",
                ),
            )
        )
    batches = [BoundaryBatch.from_events(evs) for evs in per_channel if evs]
    wire = pickle_roundtrip(batches)
    ordered = inbound_order(wire)
    if len(ordered) != n_events:
        raise RuntimeError("boundary batch expansion lost events")
    return n_events, "events"


def _wait(cluster, event, limit: float) -> bool:
    """Event-driven wait, falling back to the predicate API on kernels
    that predate ``run_until_event`` (keeps the suite runnable against
    older revisions for trajectory comparisons)."""
    waiter = getattr(cluster, "run_until_event", None)
    if waiter is not None:
        return waiter(event, limit)
    return cluster.run_until(lambda: event.fired, limit)


#: name -> (full-scale thunk, smoke-scale thunk)
KERNEL_BENCHMARKS: dict[str, tuple[Callable, Callable]] = {
    "event_churn": (
        lambda: bench_event_churn(200_000),
        lambda: bench_event_churn(20_000),
    ),
    "fast_lane": (
        lambda: bench_fast_lane(200_000),
        lambda: bench_fast_lane(20_000),
    ),
    "spawn_resume": (
        lambda: bench_spawn_resume(2_000, 50),
        lambda: bench_spawn_resume(400, 25),
    ),
    "anyof": (
        lambda: bench_anyof(50_000),
        lambda: bench_anyof(5_000),
    ),
    "rpc_round_trip": (
        lambda: bench_rpc_round_trip(2_000),
        lambda: bench_rpc_round_trip(200),
    ),
    "parallel_window_sync": (
        lambda: bench_parallel_window_sync(400),
        lambda: bench_parallel_window_sync(50),
    ),
    "boundary_batch": (
        lambda: bench_boundary_batch(100_000, 8),
        lambda: bench_boundary_batch(10_000, 8),
    ),
    # The instrumentation hot paths ride along in this suite so their
    # results land in BENCH_kernel.json and the same --check gate.
    **INSTR_BENCHMARKS,
}


def run_kernel_benchmarks(
    *,
    repeats: int = 5,
    smoke: bool = False,
    log: Callable[[str], None] = lambda s: None,
) -> SuiteResult:
    results: list[BenchResult] = []
    for name, (full, small) in KERNEL_BENCHMARKS.items():
        log(f"kernel/{name}:")
        results.append(time_bench(name, small if smoke else full, repeats, log))
    return SuiteResult(suite="kernel", results=results)
