"""Failure injection: message loss on the fabric, survived via the Margo
timeout + retry pattern."""

import pytest

from repro.margo import MargoConfig, MargoInstance, MargoTimeoutError
from repro.net import Fabric, FabricConfig
from repro.sim import RngRegistry, Simulator


def make_lossy_world(drop_rate, seed=11):
    sim = Simulator()
    rng = RngRegistry(seed).stream("fabric")
    fabric = Fabric(sim, FabricConfig(drop_rate=drop_rate), rng=rng)
    server = MargoInstance(
        sim, fabric, "svr", "n0", config=MargoConfig(n_handler_es=2)
    )
    client = MargoInstance(sim, fabric, "cli", "n1")

    def echo(mi, handle):
        inp = yield from mi.get_input(handle)
        yield from mi.respond(handle, inp)

    server.register("echo", echo)
    client.register("echo")
    return sim, fabric, server, client


def test_drop_rate_validation():
    with pytest.raises(ValueError):
        FabricConfig(drop_rate=1.0)
    with pytest.raises(ValueError):
        FabricConfig(drop_rate=-0.1)
    sim = Simulator()
    with pytest.raises(ValueError, match="requires an RNG"):
        Fabric(sim, FabricConfig(drop_rate=0.5))


def test_lossless_fabric_drops_nothing():
    sim, fabric, server, client = make_lossy_world(0.0)
    done = []

    def body():
        for i in range(10):
            out = yield from client.forward("svr", "echo", {"i": i})
            done.append(out["i"])

    client.client_ult(body())
    sim.run_until(lambda: len(done) == 10, limit=1.0)
    assert done == list(range(10))
    assert fabric.total_dropped == 0


def test_lossy_fabric_without_timeout_hangs_request():
    """A dropped request with no timeout leaves the caller blocked --
    exactly why production clients use margo_forward_timed."""
    sim, fabric, server, client = make_lossy_world(0.9, seed=3)
    done = []

    def body():
        out = yield from client.forward("svr", "echo", {"x": 1})
        done.append(out)

    client.client_ult(body())
    sim.run(until=0.05)
    # With 90% loss the first message almost surely vanished (seeded:
    # deterministic) and the call never completes.
    assert fabric.total_dropped >= 1
    assert done == []


def test_retry_loop_survives_heavy_loss():
    sim, fabric, server, client = make_lossy_world(0.5, seed=7)
    outcome = []

    def body():
        for i in range(5):
            for attempt in range(50):
                try:
                    out = yield from client.forward(
                        "svr", "echo", {"i": i}, timeout=2e-3
                    )
                    outcome.append((out["i"], attempt))
                    break
                except MargoTimeoutError:
                    continue
            else:
                outcome.append((i, "gave-up"))

    client.client_ult(body())
    sim.run_until(lambda: len(outcome) == 5, limit=5.0)
    assert [i for i, _ in outcome] == list(range(5))
    assert all(a != "gave-up" for _, a in outcome)
    # The fabric really did lose traffic along the way.
    assert fabric.total_dropped > 0


def test_loss_is_deterministic_per_seed():
    drops = []
    for _ in range(2):
        sim, fabric, server, client = make_lossy_world(0.5, seed=21)
        done = []

        def body():
            for i in range(10):
                try:
                    yield from client.forward("svr", "echo", {}, timeout=1e-3)
                    done.append(True)
                except MargoTimeoutError:
                    done.append(False)

        client.client_ult(body())
        sim.run_until(lambda: len(done) == 10, limit=1.0)
        drops.append((fabric.total_dropped, tuple(done)))
    assert drops[0] == drops[1]


def test_response_loss_also_covered():
    """Losses can hit the response leg; the retry pattern still
    converges and the server tolerates duplicate executions."""
    sim, fabric, server, client = make_lossy_world(0.4, seed=5)
    results = []

    def body():
        for attempt in range(100):
            try:
                out = yield from client.forward(
                    "svr", "echo", {"v": 7}, timeout=2e-3
                )
                results.append((out, attempt))
                return
            except MargoTimeoutError:
                continue

    client.client_ult(body())
    sim.run_until(lambda: results, limit=5.0)
    (out, attempt) = results[0]
    assert out == {"v": 7}
