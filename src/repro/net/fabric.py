"""The simulated RDMA fabric.

A :class:`Fabric` connects named :class:`~repro.net.endpoint.Endpoint`
objects.  Transfer time follows a latency + size/bandwidth model with
optional lognormal jitter; transfers between endpoints on the same node
use the (faster) intra-node parameters, which matters for the colocated
ior+Mobject case study.

The fabric also implements one-sided RDMA reads: Mercury's bulk interface
and the internal-RDMA metadata overflow path (t3-t4 in Figure 2) are
RDMA gets issued by the target against origin memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..config import Replaceable
from ..sim import Simulator
from .endpoint import Endpoint
from .message import CQEntry, CQKind, Message

__all__ = ["Fabric", "FabricConfig", "RemotePeer", "WireFault"]


class RemotePeer:
    """Registry entry for an endpoint living in another logical process.

    Quacks like an :class:`~repro.net.endpoint.Endpoint` for the two
    attributes the fault hooks inspect (``addr``, ``node``) plus the
    liveness flag the send/RDMA paths check.  The conservative kernel
    (:mod:`repro.sim.parallel`) installs one per cross-LP address; the
    fabric then ships matching transfers through the boundary outbox
    instead of a local delivery event.
    """

    __slots__ = ("addr", "node", "closed")

    def __init__(self, addr: str, node: str):
        self.addr = addr
        self.node = node
        #: Remote liveness as last communicated by the kernel.  Static
        #: partitioned deployments never flip this; cross-LP crash
        #: propagation is an explicit non-goal (see docs/performance.md).
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemotePeer({self.addr!r}, node={self.node!r})"


@dataclass
class WireFault:
    """A fault verdict for one transfer, produced by a fault hook
    (:class:`repro.faults.FaultInjector`) and consumed by the fabric."""

    #: Lose the message entirely (local injection still completes).
    drop: bool = False
    #: Deliver this many *extra* copies (at-least-once hazard).
    copies: int = 0
    #: Latency spike added to the wire time, seconds.
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        # A negative spike would let a wire time undercut the configured
        # latency floor -- the lookahead the conservative parallel kernel
        # derives from :meth:`FabricConfig.min_cross_node_latency` -- so
        # it is rejected at construction, not discovered as a causality
        # violation mid-run.
        if self.extra_delay < 0:
            raise ValueError(
                f"WireFault.extra_delay must be non-negative, got "
                f"{self.extra_delay!r} (a negative spike would undercut "
                f"the fabric's cross-node latency floor)"
            )
        if self.copies < 0:
            raise ValueError("WireFault.copies must be non-negative")


@dataclass(frozen=True, kw_only=True)
class FabricConfig(Replaceable):
    """Latency/bandwidth parameters of the interconnect.

    Defaults approximate a Cray Aries-class HPC fabric; intra-node values
    approximate shared-memory transport.
    """

    latency: float = 1.5e-6  # one-way, seconds
    bandwidth: float = 8e9  # bytes/second
    intra_node_latency: float = 0.4e-6
    intra_node_bandwidth: float = 24e9
    #: Lognormal jitter applied multiplicatively to the latency term;
    #: 0 disables jitter (fully deterministic wire times).
    jitter_sigma: float = 0.0
    #: Bounded-jitter floor: with ``jitter_bound > 0`` the sampled
    #: jitter can never shave more than this many seconds off a
    #: latency term (truncated sampling, ``max(lat - bound, lat * m)``),
    #: which restores a positive cross-node wire-time lower bound
    #: ``latency - jitter_bound`` -- the lookahead the conservative
    #: parallel kernel needs.  0 leaves the jitter unbounded below
    #: (the classic lognormal model), which partitioned runs reject.
    jitter_bound: float = 0.0
    #: Probability that a two-sided message is silently dropped (failure
    #: injection; requires an RNG).  RDMA operations are not dropped --
    #: hardware reliable transport.
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.intra_node_latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0 or self.intra_node_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if self.jitter_bound < 0:
            raise ValueError("jitter_bound must be non-negative")
        if self.jitter_bound > 0 and self.jitter_bound >= self.latency:
            raise ValueError(
                f"jitter_bound={self.jitter_bound} must stay below the "
                f"cross-node latency ({self.latency}); the truncated floor "
                "latency - jitter_bound must remain positive"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")

    def min_cross_node_latency(self) -> float:
        """The guaranteed lower bound on any *cross-node* wire time.

        This is the lookahead of the conservative parallel kernel
        (:mod:`repro.sim.parallel`): a message sent at ``t`` between
        nodes in different logical processes cannot arrive before
        ``t + min_cross_node_latency()``, so every LP may safely
        execute the window ``[T, T + lookahead)`` without hearing from
        its peers.

        With ``jitter_sigma > 0`` a floor only exists when a
        ``jitter_bound`` is declared: the lognormal multiplier alone has
        no positive lower bound, but truncated sampling clamps every
        jittered latency at ``latency - jitter_bound``, so that
        difference is the lookahead.  Raises :class:`ValueError` for a
        jittered config without a bound, or when the floor would be
        zero, which would make conservative windows unable to advance
        time at all.
        """
        if self.jitter_sigma > 0:
            if self.jitter_bound <= 0:
                raise ValueError(
                    f"jitter_sigma={self.jitter_sigma} admits wire times "
                    "below the latency floor (the lognormal multiplier has "
                    "no positive lower bound); declare a jitter_bound > 0 "
                    "(truncated sampling) or disable jitter for "
                    "partitioned runs"
                )
            # __post_init__ guarantees jitter_bound < latency, so the
            # truncated floor is positive by construction.
            return self.latency - self.jitter_bound
        if self.latency <= 0:
            raise ValueError(
                "latency must be positive to derive a conservative "
                "lookahead (a zero floor cannot advance a bounded window)"
            )
        return self.latency


class Fabric:
    """Message transport between registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[FabricConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.config = config or FabricConfig()
        self._rng = rng
        if self.config.drop_rate > 0 and rng is None:
            raise ValueError("drop_rate requires an RNG")
        self._endpoints: dict[str, Endpoint] = {}
        #: Optional fault-injection hook (duck-typed; see
        #: :class:`repro.faults.FaultInjector`).  Consulted per transfer:
        #: ``on_message(msg, src_ep, dst_ep) -> Optional[WireFault]`` and
        #: ``on_rdma(ini_ep, rem_ep) -> bool`` (True severs the op).
        self.fault_hook = None
        #: Totals for the system-statistics summary.
        self.total_messages = 0
        self.total_bytes = 0
        self.total_dropped = 0
        self.total_duplicated = 0
        #: Byte-level conservation ledger (checked by the validation
        #: layer):  ``total_bytes + duplicated_bytes == delivered_bytes +
        #: dropped_bytes + discarded_bytes + inflight_bytes`` holds at
        #: every instant between event callbacks.
        self.delivered_bytes = 0
        self.dropped_bytes = 0
        #: Bytes delivered to a closed (crashed) endpoint and lost there.
        self.discarded_bytes = 0
        self.duplicated_bytes = 0
        #: Retained for backward compatibility: in-flight accounting used
        #: to be opt-in (it needed an extra event per delivery); it now
        #: rides the delivery callback and is always on.
        self.track_inflight = False
        #: Bytes currently on the wire (sent but not yet delivered).
        self.inflight_bytes = 0
        #: Cross-LP extension of the ledger (zero for monolithic runs):
        #: bytes handed to another logical process through the boundary
        #: outbox, and bytes injected here on behalf of a remote sender.
        #: The per-fabric identity becomes ``total + duplicated +
        #: imported == delivered + dropped + discarded + inflight +
        #: exported``.
        self.exported_bytes = 0
        self.imported_bytes = 0
        #: Addresses owned by other logical processes: addr ->
        #: :class:`RemotePeer`.  Empty for monolithic simulations.
        self.remote_peers: dict[str, RemotePeer] = {}
        #: Outbound boundary transfers of the current window, appended in
        #: send order as ``(send_ts, recv_ts, msg)`` and drained by the
        #: LP runtime at the window barrier.
        self.boundary_outbox: list[tuple[float, float, Message]] = []

    # -- endpoint registry --------------------------------------------------

    def register(self, endpoint: Endpoint) -> None:
        if endpoint.addr in self._endpoints:
            raise ValueError(f"duplicate endpoint address {endpoint.addr!r}")
        self._endpoints[endpoint.addr] = endpoint

    def endpoint(self, addr: str) -> Endpoint:
        try:
            return self._endpoints[addr]
        except KeyError:
            raise KeyError(f"no endpoint registered at {addr!r}") from None

    def create_endpoint(self, addr: str, node: str = "") -> Endpoint:
        ep = Endpoint(self.sim, addr, node=node)
        self.register(ep)
        return ep

    def register_remote(self, addr: str, node: str) -> RemotePeer:
        """Declare ``addr`` as living in another logical process on
        ``node``.  Sends to it are routed through the boundary outbox;
        RDMA reads against it are computed locally (the simulated
        transfer is timing-only -- the initiator already holds the
        payload object)."""
        if addr in self._endpoints:
            raise ValueError(f"{addr!r} is a local endpoint, not remote")
        if addr in self.remote_peers:
            raise ValueError(f"duplicate remote peer {addr!r}")
        peer = RemotePeer(addr, node)
        self.remote_peers[addr] = peer
        return peer

    # -- timing model ---------------------------------------------------------

    def wire_time(self, src_node: str, dst_node: str, size_bytes: int) -> float:
        """One-way transfer time for ``size_bytes`` between two nodes."""
        same = bool(src_node) and src_node == dst_node
        lat = self.config.intra_node_latency if same else self.config.latency
        bw = self.config.intra_node_bandwidth if same else self.config.bandwidth
        if self.config.jitter_sigma > 0 and self._rng is not None:
            jittered = lat * float(
                np.exp(self._rng.normal(0.0, self.config.jitter_sigma))
            )
            if self.config.jitter_bound > 0:
                # Truncated sampling: the fast tail is clamped at
                # lat - jitter_bound (the conservative lookahead floor);
                # the slow tail stays unbounded.  The RNG draw happens
                # either way, so jitter_bound only changes wire times it
                # actually clips.
                jittered = max(lat - self.config.jitter_bound, jittered)
            lat = jittered
        return lat + size_bytes / bw

    # -- two-sided send ---------------------------------------------------------

    def send(
        self,
        msg: Message,
        on_local_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Inject ``msg`` toward its destination endpoint.

        A RECV entry appears in the destination CQ after the wire time.
        ``on_local_complete`` (if given) fires when the message has been
        fully injected locally -- the hook the target response path uses
        for its completion callback (t13).  Returns the delivery time.
        """
        src_ep = self.endpoint(msg.src)
        dst_ep = self._endpoints.get(msg.dst)
        if dst_ep is None:
            peer = self.remote_peers.get(msg.dst)
            if peer is None:
                self.endpoint(msg.dst)  # raises the canonical KeyError
            return self._send_remote(msg, src_ep, peer, on_local_complete)
        self.total_messages += 1
        self.total_bytes += msg.size_bytes

        if src_ep.closed:
            # A crashed process cannot inject anything: no delivery and
            # no local completion either.
            self.total_dropped += 1
            self.dropped_bytes += msg.size_bytes
            return float("inf")

        fault: Optional[WireFault] = None
        if self.fault_hook is not None:
            fault = self.fault_hook.on_message(msg, src_ep, dst_ep)

        dropped = fault is not None and fault.drop
        if (
            not dropped
            and self.config.drop_rate > 0
            and self._rng is not None
            and self._rng.random() < self.config.drop_rate
        ):
            dropped = True
        if dropped:
            # Silently lost on the wire: the local send still "completes"
            # (no ack in this transport), but nothing is delivered.
            self.total_dropped += 1
            self.dropped_bytes += msg.size_bytes
            if on_local_complete is not None:
                inject = msg.size_bytes / self.config.bandwidth
                self.sim.call_after(inject, on_local_complete)
            return float("inf")

        inject_time = msg.size_bytes / (
            self.config.intra_node_bandwidth
            if src_ep.node and src_ep.node == dst_ep.node
            else self.config.bandwidth
        )
        if on_local_complete is not None:
            self.sim.call_after(inject_time, on_local_complete)

        extra_delay = fault.extra_delay if fault is not None else 0.0
        copies = 1 + (fault.copies if fault is not None else 0)
        self.total_duplicated += copies - 1
        self.duplicated_bytes += (copies - 1) * msg.size_bytes
        deliver_at = float("inf")
        for _ in range(copies):
            delay = (
                self.wire_time(src_ep.node, dst_ep.node, msg.size_bytes)
                + extra_delay
            )
            at = self.sim.now + delay
            self.inflight_bytes += msg.size_bytes
            self.sim.call_at(
                at,
                self._deliver,
                dst_ep,
                CQEntry(kind=CQKind.RECV, payload=msg, enqueued_at=at),
                msg.size_bytes,
            )
            deliver_at = min(deliver_at, at)
        return deliver_at

    def _send_remote(
        self,
        msg: Message,
        src_ep: Endpoint,
        peer: RemotePeer,
        on_local_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Ship ``msg`` toward an endpoint owned by another LP.

        The wire time is computed *here*, on the sender's fabric RNG
        (deterministic given the LP's event schedule, which the kernel
        pins across worker counts), and the message rides the boundary
        outbox with its precomputed arrival instant; the receiving LP
        injects it with :meth:`inject_remote`.  Cross-LP links are
        always inter-node (the partitioner never splits a node), so the
        inter-node latency -- truncated at ``latency - jitter_bound``
        under bounded jitter, i.e. the kernel's lookahead -- bounds
        ``recv_ts - send_ts`` from below even under fault-rule delay
        spikes (validated non-negative).
        """
        self.total_messages += 1
        self.total_bytes += msg.size_bytes
        if src_ep.closed:
            self.total_dropped += 1
            self.dropped_bytes += msg.size_bytes
            return float("inf")

        fault: Optional[WireFault] = None
        if self.fault_hook is not None:
            fault = self.fault_hook.on_message(msg, src_ep, peer)

        dropped = (fault is not None and fault.drop) or peer.closed
        if (
            not dropped
            and self.config.drop_rate > 0
            and self._rng is not None
            and self._rng.random() < self.config.drop_rate
        ):
            dropped = True
        if dropped:
            self.total_dropped += 1
            self.dropped_bytes += msg.size_bytes
            if on_local_complete is not None:
                inject = msg.size_bytes / self.config.bandwidth
                self.sim.call_after(inject, on_local_complete)
            return float("inf")

        inject_time = msg.size_bytes / self.config.bandwidth
        if on_local_complete is not None:
            self.sim.call_after(inject_time, on_local_complete)

        extra_delay = fault.extra_delay if fault is not None else 0.0
        copies = 1 + (fault.copies if fault is not None else 0)
        self.total_duplicated += copies - 1
        self.duplicated_bytes += (copies - 1) * msg.size_bytes
        now = self.sim.now
        delay = (
            self.wire_time(src_ep.node, peer.node, msg.size_bytes)
            + extra_delay
        )
        recv_at = now + delay
        for _ in range(copies):
            self.exported_bytes += msg.size_bytes
            self.boundary_outbox.append((now, recv_at, msg))
        return recv_at

    def inject_remote(self, msg: Message, recv_ts: float) -> None:
        """Land one boundary transfer shipped by a peer LP's
        :meth:`_send_remote`.

        Called by the LP runtime at a window barrier, before the window
        containing ``recv_ts`` executes; the imported and in-flight
        credits move together so the extended conservation identity
        holds at every observable instant.
        """
        dst_ep = self.endpoint(msg.dst)
        self.imported_bytes += msg.size_bytes
        self.inflight_bytes += msg.size_bytes
        self.sim.call_at(
            recv_ts,
            self._deliver,
            dst_ep,
            CQEntry(kind=CQKind.RECV, payload=msg, enqueued_at=recv_ts),
            msg.size_bytes,
        )

    def _deliver(self, dst_ep: Endpoint, entry: CQEntry, nbytes: int) -> None:
        """Land one wire transfer.

        Decrementing in-flight bytes and crediting the delivered (or
        discarded, if the endpoint died while the bytes were on the wire)
        ledger happens in the same event as the CQ push, so the byte
        conservation identity holds at every observable instant.
        """
        self.inflight_bytes -= nbytes
        if dst_ep.closed:
            self.discarded_bytes += nbytes
        else:
            self.delivered_bytes += nbytes
        dst_ep.push(entry)

    # -- one-sided RDMA ------------------------------------------------------------

    def rdma_get(
        self,
        initiator: str,
        remote: str,
        size_bytes: int,
        payload: object = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """One-sided read of ``size_bytes`` from ``remote`` into ``initiator``.

        The initiator's CQ receives an RDMA_COMPLETE entry after one
        round-trip latency plus the payload transfer time.  ``on_complete``
        (if given) also fires at that moment, bypassing the CQ -- used by
        the internal-RDMA metadata path, which Mercury handles inline.
        Returns the completion time.
        """
        ini_ep = self.endpoint(initiator)
        rem_ep = self._endpoints.get(remote)
        if rem_ep is None:
            # A cross-LP read is timing-only: the initiator already holds
            # the payload object, so the transfer completes locally using
            # the peer's node for the inter-node cost model.  No boundary
            # event is generated -- nothing arrives at the remote LP --
            # which also means RDMA never constrains the lookahead.
            rem_ep = self.remote_peers.get(remote)
            if rem_ep is None:
                self.endpoint(remote)  # raises the canonical KeyError
        self.total_messages += 1
        self.total_bytes += size_bytes

        severed = ini_ep.closed or rem_ep.closed
        if not severed and self.fault_hook is not None:
            severed = self.fault_hook.on_rdma(ini_ep, rem_ep)
        if severed:
            # Reliable transport cannot cross a partition or reach a dead
            # process: the operation simply never completes.
            self.total_dropped += 1
            self.dropped_bytes += size_bytes
            return float("inf")

        same = bool(ini_ep.node) and ini_ep.node == rem_ep.node
        lat = (
            self.config.intra_node_latency if same else self.config.latency
        )
        bw = self.config.intra_node_bandwidth if same else self.config.bandwidth
        # Request travels one way, data comes back: 2x latency + payload.
        delay = 2 * lat + size_bytes / bw
        if self.config.jitter_sigma > 0 and self._rng is not None:
            jittered = delay * float(
                np.exp(self._rng.normal(0.0, self.config.jitter_sigma))
            )
            if self.config.jitter_bound > 0:
                # Same truncated model as wire_time (RDMA never
                # constrains the lookahead -- no boundary event -- but
                # the sampling model stays uniform across paths).
                jittered = max(delay - self.config.jitter_bound, jittered)
            delay = jittered
        done_at = self.sim.now + delay
        self.inflight_bytes += size_bytes
        if on_complete is not None:
            self.sim.call_at(done_at, self._complete_rdma, on_complete, size_bytes)
        else:
            self.sim.call_at(
                done_at,
                self._deliver,
                ini_ep,
                CQEntry(kind=CQKind.RDMA_COMPLETE, payload=payload, enqueued_at=done_at),
                size_bytes,
            )
        return done_at

    def _complete_rdma(
        self, on_complete: Callable[[], None], nbytes: int
    ) -> None:
        # Inline (non-CQ) RDMA completion: the callback fires regardless of
        # endpoint state, so the bytes always count as delivered.
        self.inflight_bytes -= nbytes
        self.delivered_bytes += nbytes
        on_complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fabric(endpoints={len(self._endpoints)}, msgs={self.total_messages})"
