"""Instrumentation stages, matching the overhead study (Figure 13)."""

from __future__ import annotations

import enum

__all__ = ["Stage"]


class Stage(enum.IntEnum):
    """How much of SYMBIOSYS is active.

    * ``OFF``    -- Baseline: instrumentation and measurement disabled.
    * ``STAGE1`` -- callpath / trace ID metadata added to RPC requests,
      but no measurements are made.
    * ``STAGE2`` -- callpath profiling, tracing, and system-statistic
      sampling enabled; Mercury PVAR collection disabled.
    * ``FULL``   -- everything, with PVAR data integrated on the fly.
    """

    OFF = 0
    STAGE1 = 1
    STAGE2 = 2
    FULL = 3
