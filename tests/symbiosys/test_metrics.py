"""Unit tests for the metrics primitives and text exporters."""

import math

import pytest

from repro.symbiosys.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SeriesStore,
    TimeSeries,
)
from repro.symbiosys.export import series_to_csv, to_prometheus


# ------------------------------------------------------------ primitives


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(2)
    assert c.value == 3
    c.set_total(10)
    assert c.value == 10
    with pytest.raises(ValueError):
        c.set_total(5)


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3


def test_histogram_buckets_and_cumulative():
    h = Histogram("h", bounds=(1, 10, 100))
    for v in (0.5, 5, 50, 500):
        h.observe(v)
    cum = dict(h.cumulative())
    assert cum[1] == 1
    assert cum[10] == 2
    assert cum[100] == 3
    assert cum[math.inf] == 4
    assert h.count == 4
    assert h.total == 555.5


def test_registry_get_or_create_and_kind_conflicts():
    reg = MetricsRegistry()
    a = reg.counter("x", "help", labels={"p": "1"})
    b = reg.counter("x", "help", labels={"p": "1"})
    assert a is b
    assert reg.counter("x", "help", labels={"p": "2"}) is not a
    with pytest.raises(ValueError):
        reg.gauge("x", "help")  # same family name, different kind


def test_registry_collect_sorted():
    reg = MetricsRegistry()
    reg.gauge("zeta", "")
    reg.counter("alpha", "")
    names = [name for name, _, _, _ in reg.collect()]
    assert names == ["alpha", "zeta"]


# ------------------------------------------------------------ time-series


def test_ring_buffer_evicts_oldest():
    ts = TimeSeries("s", capacity=3)
    for i in range(5):
        ts.append(float(i), i * 10.0)
    assert ts.dropped == 2
    assert ts.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert ts.latest() == (4.0, 40.0)


def test_series_store_keys_and_totals():
    store = SeriesStore(capacity=8)
    store.series("a", {"p": "x"}).append(0.0, 1.0)
    store.series("a", {"p": "x"}).append(1.0, 2.0)
    store.series("b").append(0.0, 3.0)
    assert len(store) == 2
    assert store.total_samples == 3
    names = [s.name for s in store.all_series()]
    assert names == ["a", "b"]


# ------------------------------------------------------------ exporters


def test_prometheus_format():
    reg = MetricsRegistry()
    reg.counter("reqs_total", "Total requests", labels={"process": "svr"}).inc(7)
    reg.gauge("depth", "Queue depth").set(2.5)
    h = reg.histogram("lat", "Latency", labels={"p": "a"}, bounds=(1, 2))
    h.observe(0.5)
    h.observe(3)
    text = to_prometheus(reg)
    lines = text.splitlines()
    assert "# TYPE reqs_total counter" in lines
    assert '# HELP reqs_total Total requests' in lines
    assert 'reqs_total{process="svr"} 7' in lines
    assert "depth 2.5" in lines
    assert 'lat_bucket{p="a",le="1"} 1' in lines
    assert 'lat_bucket{p="a",le="+Inf"} 2' in lines
    assert 'lat_sum{p="a"} 3.5' in lines
    assert 'lat_count{p="a"} 2' in lines
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.gauge("g", "", labels={"k": 'a"b\\c'}).set(1)
    text = to_prometheus(reg)
    assert 'k="a\\"b\\\\c"' in text


def test_series_csv_shape():
    store = SeriesStore()
    store.series("m", {"p": "x"}).append(0.001, 4)
    store.series("m", {"p": "x"}).append(0.002, 5.5)
    text = series_to_csv(store)
    lines = text.strip().splitlines()
    assert lines[0] == "name,labels,time,value"
    assert lines[1] == "m,p=x,0.001,4"
    assert lines[2] == "m,p=x,0.002,5.5"
