"""Macro benchmarks: the paper harnesses end to end.

Where the kernel suite isolates mechanisms, these measure what a PR
actually buys at the experiment level: the Sonata ``store_multi_json``
run (Figure 7's harness), the HEPnOS data loader on a Table IV shape
(Figures 9-12's harness), and the same loader with the online monitor
attached -- so a telemetry-layer regression shows up as the gap between
the last two.
"""

from __future__ import annotations

from typing import Callable

from .harness import BenchResult, SuiteResult, time_bench

__all__ = ["MACRO_BENCHMARKS", "run_macro_benchmarks"]


def bench_sonata(n_records: int, batch_size: int) -> tuple[int, str]:
    from ..experiments.sonata import run_sonata_experiment

    result = run_sonata_experiment(n_records=n_records, batch_size=batch_size)
    assert result.makespan > 0
    return n_records, "records"


def _hepnos(events_per_client: int, monitored: bool) -> tuple[int, str]:
    from ..experiments.configs import TABLE_IV
    from ..experiments.hepnos import run_hepnos_experiment
    from ..symbiosys.monitor import MonitorConfig

    result = run_hepnos_experiment(
        TABLE_IV["C1"],
        events_per_client=events_per_client,
        monitoring=MonitorConfig() if monitored else None,
    )
    return result.events_stored, "events"


def bench_hepnos(events_per_client: int) -> tuple[int, str]:
    return _hepnos(events_per_client, monitored=False)


def bench_hepnos_monitor(events_per_client: int) -> tuple[int, str]:
    return _hepnos(events_per_client, monitored=True)


#: name -> (full-scale thunk, smoke-scale thunk)
MACRO_BENCHMARKS: dict[str, tuple[Callable, Callable]] = {
    "sonata": (
        lambda: bench_sonata(10_000, 1_000),
        lambda: bench_sonata(1_000, 200),
    ),
    "hepnos": (
        lambda: bench_hepnos(192),
        lambda: bench_hepnos(32),
    ),
    "hepnos_monitor": (
        lambda: bench_hepnos_monitor(192),
        lambda: bench_hepnos_monitor(32),
    ),
}


def run_macro_benchmarks(
    *,
    repeats: int = 3,
    smoke: bool = False,
    log: Callable[[str], None] = lambda s: None,
) -> SuiteResult:
    results: list[BenchResult] = []
    for name, (full, small) in MACRO_BENCHMARKS.items():
        log(f"macro/{name}:")
        results.append(time_bench(name, small if smoke else full, repeats, log))
    return SuiteResult(suite="macro", results=results)
