"""Deterministic statistics for the analysis service.

The muBench replication's ``STATISTICAL_ANALYSIS_NOTES.md`` sets the
reporting bar this module meets: never a bare median -- every reported
statistic carries a bootstrap confidence interval.  Everything is
seeded and wall-clock-free, so a query's reply bytes are a pure
function of (store contents, query parameters).
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

__all__ = [
    "bootstrap_ci",
    "bootstrap_delta_ci",
    "mean",
    "percentile",
    "round9",
    "subsample",
]

#: Cap on values fed to the bootstrap; larger inputs are strided down
#: deterministically so cross-run queries stay fast at any store size.
MAX_BOOTSTRAP_VALUES = 512


def round9(x: float) -> float:
    """Canonical rounding for reply payloads (stable reply bytes even
    if an intermediate is recomputed in a different association order)."""
    return round(float(x), 9)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on a sorted copy (q in [0, 100])."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 100:
        return ordered[-1]
    return ordered[min(len(ordered) - 1, int(q / 100.0 * len(ordered)))]


def subsample(values: Sequence[float], cap: int = MAX_BOOTSTRAP_VALUES) -> list:
    """Deterministic stride-based subsample preserving order."""
    n = len(values)
    if n <= cap:
        return list(values)
    stride = n / cap
    return [values[int(i * stride)] for i in range(cap)]


def _resample(rng: random.Random, values: Sequence[float]) -> list[float]:
    n = len(values)
    return [values[rng.randrange(n)] for _ in range(n)]


def bootstrap_ci(
    values: Sequence[float],
    stat: Optional[Callable[[Sequence[float]], float]] = None,
    *,
    n_boot: int = 200,
    seed: int = 0,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile-bootstrap ``(lo, hi)`` CI of ``stat`` over ``values``.

    Seeded, so identical inputs give identical intervals.  ``stat``
    defaults to the mean.
    """
    if not values:
        return (0.0, 0.0)
    stat = stat or mean
    values = subsample(values)
    rng = random.Random(seed)
    draws = sorted(stat(_resample(rng, values)) for _ in range(n_boot))
    lo = draws[int((alpha / 2) * n_boot)]
    hi = draws[min(n_boot - 1, int((1 - alpha / 2) * n_boot))]
    return (round9(lo), round9(hi))


def bootstrap_delta_ci(
    base: Sequence[float],
    head: Sequence[float],
    stat: Optional[Callable[[Sequence[float]], float]] = None,
    *,
    n_boot: int = 200,
    seed: int = 0,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """CI of ``stat(head) - stat(base)`` by independent resampling of
    both sample sets (the two-run regression question)."""
    if not base or not head:
        return (0.0, 0.0)
    stat = stat or mean
    base = subsample(base)
    head = subsample(head)
    rng = random.Random(seed)
    draws = sorted(
        stat(_resample(rng, head)) - stat(_resample(rng, base))
        for _ in range(n_boot)
    )
    lo = draws[int((alpha / 2) * n_boot)]
    hi = draws[min(n_boot - 1, int((1 - alpha / 2) * n_boot))]
    return (round9(lo), round9(hi))
