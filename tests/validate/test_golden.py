"""Golden-trace corpus: the checked-in entries must reproduce, and a
corrupted corpus must produce a readable diff."""

import json

import pytest

from repro.validate.golden import (
    GOLDEN_SEED,
    check_golden,
    corpus_path,
    golden_run,
    golden_services,
    load_corpus,
    regen_golden,
)


def test_corpus_is_checked_in_and_complete():
    corpus = load_corpus()
    assert sorted(corpus) == sorted(golden_services())
    assert golden_services() == [
        "sdskv",
        "bake",
        "sonata",
        "hepnos",
        "sharded",
        "parallel_sdskv",
        "parallel_bake",
        "parallel_hepnos",
        "parallel_sharded",
    ]
    for service, entry in corpus.items():
        assert set(entry) == {"digests", "summary"}
        assert set(entry["digests"]) == {
            "perfetto",
            "profile",
            "prometheus",
            "series_csv",
        }
        for digest in entry["digests"].values():
            assert len(digest) == 16
        assert service in entry["summary"]


def test_checked_in_sdskv_entry_reproduces():
    assert check_golden(services=["sdskv"]) == []


def test_all_golden_services_reproduce():
    """Every service's digests must match the checked-in corpus.  The
    corpus predates the columnar trace-buffer storage, so a clean pass
    here proves the Perfetto / Prometheus / CSV / profile outputs are
    byte-identical across the storage rewrite."""
    assert check_golden() == []


def test_golden_runs_are_strictly_validated():
    artifacts = golden_run("sdskv")
    assert artifacts.violations == []
    assert artifacts.seed == GOLDEN_SEED
    assert artifacts.rpcs_ok == 16
    assert artifacts.leaked_events == 0


def test_unknown_service_is_rejected():
    with pytest.raises(ValueError, match="unknown golden service"):
        golden_run("nope")


def test_missing_corpus_points_at_regen(tmp_path):
    with pytest.raises(FileNotFoundError, match="--regen"):
        load_corpus(tmp_path / "absent.json")


def test_corrupted_corpus_yields_readable_diff(tmp_path):
    corpus = load_corpus()
    entry = corpus["sdskv"]
    entry["digests"]["perfetto"] = "0" * 16
    entry["summary"] = entry["summary"].replace(
        "sdskv", "sdskv (tampered)", 1
    )
    path = tmp_path / "corpus.json"
    path.write_text(json.dumps(corpus))

    (mismatch,) = check_golden(path, services=["sdskv"])
    assert mismatch.service == "sdskv"
    assert "perfetto" in mismatch.changed
    rendered = mismatch.render()
    assert "--- sdskv/golden" in rendered
    assert "+++ sdskv/current" in rendered
    assert "tampered" in rendered  # the diff shows *what* moved


def test_absent_service_is_reported(tmp_path):
    path = tmp_path / "corpus.json"
    path.write_text("{}")
    (mismatch,) = check_golden(path, services=["sdskv"])
    assert mismatch.changed == ["missing from corpus"]


def test_regen_writes_a_matching_corpus(tmp_path):
    path = tmp_path / "corpus.json"
    regen_golden(path, services=["bake"])
    assert check_golden(path, services=["bake"]) == []
    # regen is additive: a second service lands next to the first
    regen_golden(path, services=["sdskv"])
    assert sorted(load_corpus(path)) == ["bake", "sdskv"]


def test_checked_in_corpus_matches_regen_format():
    """The file on disk is exactly what regen_golden writes (sorted
    keys, trailing newline) so regen never produces whitespace churn."""
    raw = corpus_path().read_text()
    assert raw.endswith("\n")
    assert raw == json.dumps(json.loads(raw), indent=2, sort_keys=True) + "\n"
