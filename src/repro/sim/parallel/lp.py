"""One logical process: a private Cluster executed in bounded windows.

An :class:`LPRuntime` wraps a full :class:`~repro.cluster.Cluster`
(simulator, fabric, collector, monitor, validator -- all the existing
machinery, unmodified) and drives it window by window on behalf of the
kernel:

1. inject the inbound boundary batch in canonical ``(recv_ts,
   src_lp, seq)`` order via :meth:`Fabric.inject_remote`,
2. execute every local event strictly before the window end
   (:meth:`Simulator.run_window`),
3. drain the fabric's ``boundary_outbox`` into seq-numbered events
   grouped as per-destination
   :class:`~repro.sim.parallel.channel.BoundaryBatch` objects, and
4. report the next local event time and the done flag, so the kernel
   can pick the next window floor.

Builders see an :class:`LPContext`, a thin veneer over the cluster
that additionally records node ownership (for the no-node-spans-two-
LPs check), registers remote peers, and collects the workload's done
event and report counters.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...cluster import Cluster
from .channel import BoundaryBatch, BoundaryEvent, inbound_order
from .partition import PartitionPlan

__all__ = ["LPContext", "LPRuntime"]


class KernelInvariantError(RuntimeError):
    """A conservative-synchronization invariant was violated."""


class LPContext:
    """What an LP builder gets to work with."""

    def __init__(self, runtime: "LPRuntime"):
        self._rt = runtime
        #: Builder-owned report fields (RPC counters, per-LP tallies);
        #: must stay picklable -- they travel back in the finish report.
        self.report: dict[str, Any] = {}

    @property
    def cluster(self) -> Cluster:
        return self._rt.cluster

    @property
    def lp_id(self) -> int:
        return self._rt.lp_id

    @property
    def lp_name(self) -> str:
        return self._rt.name

    @property
    def n_lps(self) -> int:
        return self._rt.n_lps

    def process(self, addr: str, node: Optional[str] = None, **kw: Any):
        """Create a local Mochi process (see :meth:`Cluster.process`)
        and record its node as owned by this LP."""
        mi = self._rt.cluster.process(addr, node, **kw)
        ep = self._rt.cluster.fabric.endpoint(addr)
        self._rt.local_nodes[ep.node] = None
        self._rt.local_addrs[addr] = ep.node
        return mi

    def register_remote(self, addr: str, node: str) -> None:
        """Declare a process living in another LP.  Messages to
        ``addr`` become boundary events; RDMA against it completes
        locally on wire timing alone.  Idempotent, so independent
        builders sharing an LP may declare the same peer."""
        known = self._rt.remote_addrs.get(addr)
        if known is not None:
            if known != node:
                raise ValueError(
                    f"remote {addr!r} re-declared on node {node!r}, "
                    f"was {known!r}"
                )
            return
        self._rt.cluster.fabric.register_remote(addr, node)
        self._rt.remote_addrs[addr] = node

    def set_done(self, event) -> None:
        """Hand the kernel this LP's workload-complete SimEvent."""
        self._rt.done_event = event

    @property
    def local_addrs(self) -> dict[str, str]:
        """Addresses created in this LP so far (addr -> node).  Lets a
        builder that deploys a mixed node set (e.g. an auto-partitioned
        LP holding both servers and clients) tell local processes apart
        from the remote peers it still has to register."""
        return dict(self._rt.local_addrs)

    def spawn(self, fn: Callable, *args: Any):
        return self._rt.cluster.sim.spawn(fn, *args)


class LPRuntime:
    """Executes one LP for the kernel (in-process or inside a worker)."""

    def __init__(self, plan: PartitionPlan, lp_id: int):
        self.plan = plan
        self.lp_id = lp_id
        self.name = plan.lps[lp_id].name
        self.n_lps = plan.n_lps
        self.lookahead = plan.lookahead()
        self.cluster = Cluster(
            seed=plan.seed,
            fabric_config=plan.fabric_config,
            **plan.cluster_kw,
        )
        self.local_nodes: dict[str, None] = {}
        self.local_addrs: dict[str, str] = {}
        self.remote_addrs: dict[str, str] = {}
        self.done_event = None
        self._addr_to_lp: Optional[dict[str, int]] = None
        self._next_seq = 0
        self._finished = False
        self.ctx = LPContext(self)
        plan.lps[lp_id].builder(self.ctx)

    # -- kernel protocol ----------------------------------------------------

    def init_info(self) -> dict:
        """Topology declaration, sent to the kernel before round 0."""
        return {
            "name": self.name,
            "local_addrs": dict(self.local_addrs),
            "local_nodes": sorted(self.local_nodes),
            "remote_addrs": dict(self.remote_addrs),
            "has_done": self.done_event is not None,
            "next_ts": self.cluster.sim.peek(),
        }

    def bind(self, addr_to_lp: dict[str, int]) -> None:
        """Install the global address->LP map (for outbound routing)
        after the kernel validated the partition."""
        self._addr_to_lp = addr_to_lp

    def window(self, start: float, end: float, inbound: list) -> dict:
        """Execute ``[start, end)``: inject, run, drain the outbox.

        ``inbound`` may hold loose :class:`BoundaryEvent` objects,
        :class:`BoundaryBatch` channel batches (the kernel's wire
        format), or a mix; batches expand to their exact event
        sequence before the canonical-order sort, so the injection
        schedule is independent of how the transport framed them.
        """
        sim = self.cluster.sim
        fabric = self.cluster.fabric
        for ev in inbound_order(inbound):
            if ev.recv_ts < start:
                raise KernelInvariantError(
                    f"LP {self.lp_id}: inbound event at {ev.recv_ts!r} "
                    f"before window start {start!r}"
                )
            if ev.recv_ts < ev.send_ts + self.lookahead:
                raise KernelInvariantError(
                    f"LP {self.lp_id}: boundary event delivered "
                    f"{ev.recv_ts - ev.send_ts!r}s after send, below the "
                    f"lookahead floor {self.lookahead!r}"
                )
            fabric.inject_remote(ev.msg, ev.recv_ts)
        processed = sim.run_window(end)
        return {
            "outbound": self._drain_outbox(),
            "next_ts": sim.peek(),
            "done": self.done_event is not None and self.done_event.fired,
            "events": processed,
        }

    def _drain_outbox(self) -> list[BoundaryBatch]:
        """Drain the window's boundary traffic into per-destination
        channel batches.

        Sequence numbers are assigned in global send order (exactly as
        the per-event drain did), then events are grouped by
        destination LP -- one columnar batch per (window, src->dst)
        channel, emitted in ascending destination order.  Receivers
        re-sort into canonical ``(recv_ts, src_lp, seq)`` order, so
        the grouping is pure transport framing.
        """
        fabric = self.cluster.fabric
        per_dst: dict[int, list[BoundaryEvent]] = {}
        for send_ts, recv_ts, msg in fabric.boundary_outbox:
            dst_lp = self._addr_to_lp[msg.dst]
            per_dst.setdefault(dst_lp, []).append(
                BoundaryEvent(
                    src_lp=self.lp_id,
                    dst_lp=dst_lp,
                    seq=self._next_seq,
                    send_ts=send_ts,
                    recv_ts=recv_ts,
                    msg=msg,
                )
            )
            self._next_seq += 1
        fabric.boundary_outbox.clear()
        return [
            BoundaryBatch.from_events(per_dst[dst])
            for dst in sorted(per_dst)
        ]

    def finish(self) -> dict:
        """Shut the cluster down (full drain) and assemble the LP
        report: counters, merge rows, and -- when the plan collects --
        the per-LP export artifacts."""
        if self._finished:
            raise KernelInvariantError(f"LP {self.lp_id} finished twice")
        self._finished = True
        c = self.cluster
        c.shutdown(drain=True)
        # Sends attempted during the drain have no barrier left to
        # carry them; they are counted, never silently dropped.
        stranded = len(c.fabric.boundary_outbox)
        stranded_bytes = sum(
            msg.size_bytes for _, _, msg in c.fabric.boundary_outbox
        )
        report: dict[str, Any] = {
            "lp_id": self.lp_id,
            "name": self.name,
            "processes": sorted(c.processes),
            "nodes": sorted(self.local_nodes),
            "events_processed": c.sim.events_processed,
            "leaked_events": c.leaked_events,
            "stranded_boundary": stranded,
            "stranded_bytes": stranded_bytes,
            "exported_bytes": c.fabric.exported_bytes,
            "imported_bytes": c.fabric.imported_bytes,
            "violations": (
                len(c.validator.violations) if c.validator is not None else 0
            ),
            "makespan": (
                self.done_event.value
                if self.done_event is not None and self.done_event.fired
                else None
            ),
            "extra": dict(self.ctx.report),
            "trace_rows": self._trace_rows(),
            "series_rows": self._series_rows(),
        }
        if self.plan.collect:
            report["artifacts"] = self._artifacts()
        return report

    # -- report assembly ----------------------------------------------------

    def _trace_rows(self) -> list[tuple]:
        """Merge-ready trace rows: ``(true_ts, process, order, kind,
        rpc_name, request_id)`` -- the kernel prefixes ``lp_id``."""
        collector = self.cluster.collector
        if collector is None:
            return []
        rows = []
        for process, events in sorted(collector.events_by_process().items()):
            for ev in events:
                rows.append(
                    (
                        ev.true_ts,
                        process,
                        ev.order,
                        ev.kind.name,
                        ev.rpc_name or "",
                        ev.request_id,
                    )
                )
        return rows

    def _series_rows(self) -> list[tuple]:
        """Merge-ready monitor samples: ``(t, name, labels_text, v)``."""
        monitor = self.cluster.monitor
        if monitor is None:
            return []
        rows = []
        for ts in monitor.store.all_series():
            labels_text = "|".join(f"{k}={v}" for k, v in ts.labels)
            for t, v in ts.samples():
                rows.append((t, ts.name, labels_text, v))
        return rows

    def _artifacts(self) -> dict[str, str]:
        # Lazy imports: the export surface must not load for
        # collect=False benchmark runs.
        from ...symbiosys.analysis import profile_summary
        from ...symbiosys.export import series_to_csv, to_prometheus
        from ...symbiosys.perfetto import chrome_trace_json

        c = self.cluster
        arts: dict[str, str] = {}
        if c.monitor is not None:
            arts["prometheus"] = to_prometheus(c.monitor.registry)
            arts["series_csv"] = series_to_csv(c.monitor.store)
        if c.collector is not None:
            arts["perfetto"] = chrome_trace_json(
                monitor=c.monitor,
                collector=c.collector,
                fault_events=c.fault_events(),
            )
            arts["profile"] = profile_summary(c.collector).render()
        return arts
