"""Shared Mercury test harness: two processes wired through a fabric, each
with an Argobots runtime, an HG instance, and a minimal progress loop.

The Margo layer provides the production version of this wiring; these
fixtures keep Mercury's unit tests independent of it.
"""

from types import SimpleNamespace

import pytest

from repro.argobots import AbtRuntime, YieldNow
from repro.mercury import HGConfig, HGCore
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator


def _progress_loop(side):
    while True:
        yield from side.hg.progress(timeout=50e-6)
        yield from side.hg.trigger()
        yield YieldNow()


def make_world(
    *,
    pvars=True,
    hg_config=None,
    fabric_config=None,
    names=(("cli", "n0"), ("svr", "n1")),
    handler_es=1,
):
    """Build a small Mercury world; returns (sim, {name: side})."""
    sim = Simulator()
    fabric = Fabric(sim, fabric_config or FabricConfig())
    world = {}
    for name, node in names:
        ep = fabric.create_endpoint(name, node=node)
        rt = AbtRuntime(sim, name)
        primary = rt.create_pool(f"{name}.primary")
        rt.create_xstream(primary, f"{name}.es0")
        handler_pool = rt.create_pool(f"{name}.handlers")
        for i in range(handler_es):
            rt.create_xstream(handler_pool, f"{name}.hes{i}")
        hg = HGCore(
            sim,
            fabric,
            ep,
            rt,
            config=hg_config or HGConfig(),
            pvars_enabled=pvars,
        )
        side = SimpleNamespace(
            name=name, ep=ep, rt=rt, primary=primary, handlers=handler_pool, hg=hg
        )
        rt.spawn(_progress_loop(side), primary, name=f"{name}.progress")
        world[name] = side
    return sim, world


def serve_echo(side, work_time=0.0, rpc_name="echo"):
    """Register an echo RPC whose handler optionally computes for a while.
    Returns a list collecting the target-side handles (for PVAR checks)."""
    from repro.argobots import Compute

    seen = []

    def on_arrival(handle):
        def handler():
            seen.append(handle)
            inp = yield from side.hg.get_input(handle)
            if work_time > 0:
                yield Compute(work_time)
            ev = side.rt.eventual()
            yield from side.hg.respond(handle, {"echo": inp}, lambda h: ev.signal())
            yield from ev.wait()

        side.rt.spawn(handler(), side.handlers, name=f"{rpc_name}.handler")

    side.hg.register(rpc_name, on_arrival)
    return seen


def call_rpc(side, target, rpc_name, payload, results):
    """Spawn a client ULT that forwards one RPC and appends
    (output, origin_handle, completion_time) to ``results``."""

    def body():
        side.hg.register(rpc_name)
        h = side.hg.create(target, rpc_name)
        ev = side.rt.eventual()
        yield from side.hg.forward(h, payload, lambda hh: ev.signal(hh))
        hh = yield from ev.wait()
        results.append((hh.output, hh, side.rt.sim.now))

    return side.rt.spawn(body(), side.primary, name=f"call:{rpc_name}")


@pytest.fixture
def world():
    sim, sides = make_world()
    return SimpleNamespace(sim=sim, cli=sides["cli"], svr=sides["svr"])
