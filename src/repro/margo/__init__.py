"""Simulated Margo layer (DESIGN.md §2 item 5)."""

from .errors import MargoError, MargoTimeoutError, RemoteRpcError
from .hooks import NullInstrumentation
from .instance import MargoConfig, MargoInstance, ProcessStats

__all__ = [
    "MargoConfig",
    "MargoError",
    "MargoInstance",
    "MargoTimeoutError",
    "NullInstrumentation",
    "ProcessStats",
    "RemoteRpcError",
]
