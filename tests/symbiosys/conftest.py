"""Instrumented Mochi worlds for SYMBIOSYS integration tests."""

from types import SimpleNamespace

import repro.argobots as abt
from repro.margo import MargoConfig, MargoInstance
from repro.net import Fabric, FabricConfig
from repro.sim import LocalClock, Simulator
from repro.symbiosys import Stage, SymbiosysCollector


def make_instrumented_world(
    stage=Stage.FULL,
    *,
    clocks=None,
    server_config=None,
    client_config=None,
    hg_config=None,
):
    """client -> front -> back chain, fully instrumented.

    ``clocks`` maps process name to a LocalClock for skew experiments.
    """
    clocks = clocks or {}
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    collector = SymbiosysCollector(stage)

    def mk(addr, node, config):
        return MargoInstance(
            sim,
            fabric,
            addr,
            node,
            config=config,
            hg_config=hg_config,
            clock=clocks.get(addr, LocalClock()),
            instrumentation=collector.create_instrumentation(),
        )

    front = mk("front", "n0", server_config or MargoConfig(n_handler_es=2))
    back = mk("back", "n1", server_config or MargoConfig(n_handler_es=2))
    client = mk("cli", "n2", client_config or MargoConfig())

    # back: leaf service doing real work
    def leaf_handler(mi, handle):
        inp = yield from mi.get_input(handle)
        yield abt.Compute(200e-6)
        yield from mi.respond(handle, {"leaf": inp})

    back.register("leaf_op", leaf_handler)

    # front: fans out to back twice per request
    def front_handler(mi, handle):
        inp = yield from mi.get_input(handle)
        r1 = yield from mi.forward("back", "leaf_op", {"part": 1})
        r2 = yield from mi.forward("back", "leaf_op", {"part": 2})
        yield abt.Compute(50e-6)
        yield from mi.respond(handle, {"front": inp, "r1": r1, "r2": r2})

    front.register("front_op", front_handler)
    front.register("leaf_op")  # client-side registration for forwarding
    client.register("front_op")

    return SimpleNamespace(
        sim=sim,
        fabric=fabric,
        collector=collector,
        client=client,
        front=front,
        back=back,
    )


def drive_requests(world, n_requests, payload=None):
    """Issue ``n_requests`` front_op calls from the client; returns the
    results list (filled as the simulation runs)."""
    results = []

    def body(i):
        out = yield from world.client.forward(
            "front", "front_op", payload or {"req": i}
        )
        results.append(out)

    for i in range(n_requests):
        world.client.client_ult(body(i), name=f"req{i}")
    return results
