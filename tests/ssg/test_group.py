"""Tests for SSG group membership."""

import pytest
from hypothesis import given, strategies as st

from repro.ssg import SSGError, SSGGroup


def test_create_with_members_assigns_ranks_in_order():
    g = SSGGroup("svc", ["a", "b", "c"])
    assert g.size == 3
    assert g.rank_of("a") == 0
    assert g.rank_of("c") == 2
    assert g.address_of(1) == "b"
    assert g.members == ["a", "b", "c"]


def test_group_ids_unique():
    assert SSGGroup("x").group_id != SSGGroup("x").group_id


def test_join_returns_rank():
    g = SSGGroup("svc")
    assert g.join("a") == 0
    assert g.join("b") == 1
    assert "a" in g and "z" not in g


def test_duplicate_join_rejected():
    g = SSGGroup("svc", ["a"])
    with pytest.raises(SSGError):
        g.join("a")


def test_leave_compacts_ranks():
    g = SSGGroup("svc", ["a", "b", "c"])
    g.leave("b")
    assert g.members == ["a", "c"]
    assert g.rank_of("c") == 1


def test_leave_unknown_rejected():
    g = SSGGroup("svc", ["a"])
    with pytest.raises(SSGError):
        g.leave("z")


def test_lookup_errors():
    g = SSGGroup("svc", ["a"])
    with pytest.raises(SSGError):
        g.rank_of("z")
    with pytest.raises(SSGError):
        g.address_of(5)
    with pytest.raises(SSGError):
        g.address_of(-1)


def test_member_for_key_is_stable_and_in_group():
    g = SSGGroup("svc", [f"m{i}" for i in range(5)])
    picks = {g.member_for_key(f"key{i}") for i in range(100)}
    assert picks <= set(g.members)
    assert len(picks) > 1  # keys spread over members
    assert g.member_for_key("key1") == g.member_for_key("key1")


def test_member_for_key_empty_group():
    with pytest.raises(SSGError):
        SSGGroup("svc").member_for_key("k")


def test_observers_notified_on_changes():
    g = SSGGroup("svc")
    log = []
    g.observe(lambda change, addr, rank: log.append((change, addr, rank)))
    g.join("a")
    g.join("b")
    g.leave("a")
    assert log == [("join", "a", 0), ("join", "b", 1), ("leave", "a", 0)]


def test_hepnos_service_exposes_group():
    from repro.net import Fabric, FabricConfig
    from repro.services.hepnos import HEPnOSService
    from repro.sim import Simulator

    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    service = HEPnOSService.deploy(
        sim, fabric, n_servers=3, servers_per_node=1,
        n_handler_es=1, n_databases=1,
    )
    assert service.group.size == 3
    assert service.group.members == ["hepnos0", "hepnos1", "hepnos2"]
    assert service.group.rank_of("hepnos2") == 2


@given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=12,
                unique=True))
def test_property_rank_address_roundtrip(addrs):
    g = SSGGroup("p", addrs)
    for rank, addr in enumerate(addrs):
        assert g.rank_of(addr) == rank
        assert g.address_of(rank) == addr


@given(
    st.lists(st.text(min_size=1, max_size=8), min_size=2, max_size=12,
             unique=True),
    st.data(),
)
def test_property_leave_preserves_relative_order(addrs, data):
    g = SSGGroup("p", addrs)
    victim = data.draw(st.sampled_from(addrs))
    g.leave(victim)
    expected = [a for a in addrs if a != victim]
    assert g.members == expected
