"""Every knob dataclass is keyword-only, frozen, and replace()-able."""

import dataclasses

import pytest

from repro.margo import MargoConfig, RetryPolicy
from repro.mercury import HGConfig, SerializationModel
from repro.net import FabricConfig

KNOBS = [MargoConfig, HGConfig, SerializationModel, FabricConfig, RetryPolicy]


@pytest.mark.parametrize("cls", KNOBS, ids=lambda c: c.__name__)
def test_positional_construction_is_rejected(cls):
    with pytest.raises(TypeError):
        cls(1)


@pytest.mark.parametrize("cls", KNOBS, ids=lambda c: c.__name__)
def test_instances_are_frozen(cls):
    knob = cls()
    name = dataclasses.fields(cls)[0].name
    with pytest.raises(dataclasses.FrozenInstanceError):
        setattr(knob, name, object())


@pytest.mark.parametrize("cls", KNOBS, ids=lambda c: c.__name__)
def test_replace_returns_modified_copy(cls):
    knob = cls()
    fields = {f.name: getattr(knob, f.name) for f in dataclasses.fields(cls)}
    # Pick a numeric field to perturb; every knob class has at least one.
    name, value = next(
        (n, v) for n, v in fields.items() if isinstance(v, (int, float))
        and not isinstance(v, bool)
    )
    changed = knob.replace(**{name: value + 1})
    assert getattr(changed, name) == value + 1
    assert getattr(knob, name) == value  # original untouched
    for other in fields:
        if other != name:
            assert getattr(changed, other) == fields[other]


def test_replace_rejects_unknown_field():
    with pytest.raises(TypeError):
        MargoConfig().replace(not_a_knob=3)
