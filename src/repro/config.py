"""Shared behaviour for the repository's knob dataclasses.

Every tunable-parameter dataclass (``FabricConfig``, ``HGConfig``,
``MargoConfig``, ``SerializationModel``, ``RetryPolicy``, ...) is frozen
and keyword-only: experiments never depend on field order, and adding a
knob is always backward compatible.  :class:`Replaceable` contributes the
``replace`` helper so configs can be derived from one another without
rebuilding every field by hand::

    fast = FabricConfig()
    lossy = fast.replace(drop_rate=0.05)
"""

from __future__ import annotations

import dataclasses

__all__ = ["Replaceable"]


class Replaceable:
    """Mixin for frozen knob dataclasses: ``cfg.replace(**overrides)``
    returns a copy with the given fields replaced (and the usual
    ``__post_init__`` validation re-run)."""

    def replace(self, **overrides):
        return dataclasses.replace(self, **overrides)
