"""Store exporter: archive a run bundle into a persistent perf store.

Unlike the text exporters this one has no meaningful :meth:`render` --
its artifact is rows in a SQLite store (see :mod:`repro.store`), from
which the same bytes as every text export can be regenerated later via
:class:`~repro.store.archive.ArchivedRun`.

``repro.store`` is imported lazily inside methods: this module is part
of the ``repro.symbiosys.export`` package, which ``repro.store``'s
writer itself imports, and the laziness breaks the cycle.
"""

from __future__ import annotations

from .registry import ExportBundle, Exporter, register_exporter

__all__ = ["StoreExporter"]


@register_exporter
class StoreExporter(Exporter):
    """Record the bundle as one run in a :class:`~repro.store.PerfStore`."""

    name = "store"
    filename = "perf.db"

    def render(self, bundle: ExportBundle) -> str:
        raise ValueError(
            "the store exporter writes a database, not text; use "
            ".write(bundle, path) and query it with repro.analysis"
        )

    def write(self, bundle: ExportBundle, path) -> int:
        """Append the bundle to the store at ``path``; returns run_id."""
        from ...store import PerfStore, StoreWriter

        store = PerfStore(path)
        try:
            writer = StoreWriter(store)
            run_id = writer.begin_run(
                bundle.name or "run",
                kind=bundle.kind,
                seed=bundle.seed,
                config=bundle.config,
                tags=bundle.tags,
            )
            if bundle.monitor is not None:
                writer.record_monitor(run_id, bundle.monitor)
            if bundle.collector is not None:
                writer.record_collector(run_id, bundle.collector)
            writer.flush()
            return run_id
        finally:
            store.close()
