"""Instrumentation hook interface between Margo and SYMBIOSYS.

Margo is "the ideal software layer to host the performance measurement
system" (paper §IV-A): every RPC passes through it on both sides.
:class:`Instrumentation` is the contract -- ``MargoInstance`` accepts any
implementation of it, calling each hook at the interception points
SYMBIOSYS uses.  All hooks have no-op default bodies, so implementations
override only what they need.  :class:`NullInstrumentation` overrides
nothing (the overhead study's *Baseline*);
:class:`repro.symbiosys.instrument.SymbiosysInstrumentation` implements
the real behaviour at the configured stage.

Hook call sites and their Figure 2 timestamps:

* ``attach``               -- once, at MargoInstance construction
* ``on_forward``           -- origin, t1, caller ULT, before the post
* ``on_forward_complete``  -- origin, t14, caller ULT, after the response
* ``on_forward_timeout``   -- origin, caller ULT, per-attempt deadline hit
* ``on_forward_retry``     -- origin, caller ULT, before the backoff sleep
* ``on_handler_start``     -- target, t5, handler ULT first instruction
* ``on_respond``           -- target, t8, handler ULT entering respond
* ``on_handler_end``       -- target, after t13, handler ULT about to exit
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..argobots import ULT
    from ..mercury import HGHandle
    from .instance import MargoInstance

__all__ = ["CompositeInstrumentation", "Instrumentation", "NullInstrumentation"]


class Instrumentation:
    """The hook contract between :class:`MargoInstance` and a measurement
    system.  Subclass and override the hooks you need; every default body
    is a no-op, so partial implementations are always safe to install."""

    def attach(self, mi: "MargoInstance") -> None:
        """Called once by MargoInstance at construction."""

    def on_forward(
        self, mi: "MargoInstance", handle: "HGHandle", ult: Optional["ULT"]
    ) -> None:
        """Origin, t1.  May write request metadata into ``handle.header``."""

    def on_forward_complete(
        self,
        mi: "MargoInstance",
        handle: "HGHandle",
        ult: Optional["ULT"],
        t1: float,
        t14: float,
    ) -> None:
        """Origin, t14.  The full origin execution interval is [t1, t14]."""

    def on_forward_timeout(
        self,
        mi: "MargoInstance",
        handle: "HGHandle",
        ult: Optional["ULT"],
        timeout: float,
    ) -> None:
        """Origin: this attempt's per-RPC deadline expired and the handle
        was cancelled.  Fires before any retry decision."""

    def on_forward_retry(
        self,
        mi: "MargoInstance",
        handle: "HGHandle",
        ult: Optional["ULT"],
        attempt: int,
        delay: float,
        target: str,
    ) -> None:
        """Origin: retry number ``attempt`` (1-based) is about to run
        against ``target`` after sleeping ``delay`` seconds.  ``handle``
        is the handle of the attempt that just failed."""

    def on_handler_start(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, t5.  ``handle.marks['t4']`` holds the spawn time."""

    def on_respond(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, t8, just before the response is serialized."""

    def on_handler_end(
        self, mi: "MargoInstance", handle: "HGHandle", ult: "ULT"
    ) -> None:
        """Target, after the response-sent callback (t13 in marks)."""


class NullInstrumentation(Instrumentation):
    """No-op hooks: instrumentation and measurement fully disabled."""


class CompositeInstrumentation(Instrumentation):
    """Fan one hook surface out to several implementations.

    MargoInstance holds exactly one ``instr``; when two systems need the
    hooks on the same process (e.g. SYMBIOSYS measurement plus the
    validation layer's RPC-lifecycle checker), wrap them:
    ``mi.instr = CompositeInstrumentation([mi.instr, checker])``.
    Children are invoked in list order and may be added after
    construction with :meth:`add`; ``attach`` is forwarded like every
    other hook, so late-added children must be attached by the caller if
    they need it.
    """

    def __init__(self, children=()):
        self.children: list[Instrumentation] = list(children)

    def add(self, child: Instrumentation) -> None:
        self.children.append(child)

    def attach(self, mi: "MargoInstance") -> None:
        for child in self.children:
            child.attach(mi)

    def on_forward(self, mi, handle, ult) -> None:
        for child in self.children:
            child.on_forward(mi, handle, ult)

    def on_forward_complete(self, mi, handle, ult, t1, t14) -> None:
        for child in self.children:
            child.on_forward_complete(mi, handle, ult, t1, t14)

    def on_forward_timeout(self, mi, handle, ult, timeout) -> None:
        for child in self.children:
            child.on_forward_timeout(mi, handle, ult, timeout)

    def on_forward_retry(self, mi, handle, ult, attempt, delay, target) -> None:
        for child in self.children:
            child.on_forward_retry(mi, handle, ult, attempt, delay, target)

    def on_handler_start(self, mi, handle, ult) -> None:
        for child in self.children:
            child.on_handler_start(mi, handle, ult)

    def on_respond(self, mi, handle, ult) -> None:
        for child in self.children:
            child.on_respond(mi, handle, ult)

    def on_handler_end(self, mi, handle, ult) -> None:
        for child in self.children:
            child.on_handler_end(mi, handle, ult)
