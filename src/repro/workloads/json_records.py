"""JSON record-array generator for the Sonata benchmark (Figure 7).

Produces fixed-schema records resembling telemetry/event documents; the
Figure 7 benchmark stores a 50,000-entry record array in batches of
5,000 via ``sonata_store_multi_json``.
"""

from __future__ import annotations

from ..sim import RngRegistry

__all__ = ["generate_json_records"]

_TAGS = ("alpha", "beta", "gamma", "delta", "epsilon")


def generate_json_records(
    n_records: int, *, fields_per_record: int = 6, seed: int = 42
) -> list[dict]:
    """Deterministic record array with ``fields_per_record`` payload
    fields per record (plus id/tag)."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    if fields_per_record < 0:
        raise ValueError("fields_per_record must be non-negative")
    rng = RngRegistry(seed).stream("json_records")
    records = []
    for i in range(n_records):
        rec = {
            "id": i,
            "tag": _TAGS[int(rng.integers(0, len(_TAGS)))],
            "score": float(rng.random()),
        }
        for f in range(fields_per_record):
            rec[f"field{f}"] = float(rng.normal())
        records.append(rec)
    return records
