"""Smoke and invariant tests for the experiment harnesses (scaled-down)."""

import pytest

from repro.experiments import (
    TABLE_IV,
    run_hepnos_experiment,
    run_mobject_experiment,
    run_overhead_study,
    run_sonata_experiment,
    time_analysis_scripts,
)
from repro.experiments.overhead import OVERHEAD_STAGES
from repro.symbiosys import Stage
from repro.workloads import IorConfig

SMALL = TABLE_IV["C2"].scaled(
    name="small", total_clients=4, clients_per_node=2, total_servers=2,
    servers_per_node=1, threads=4, databases=8,
)


@pytest.fixture(scope="module")
def small_result():
    return run_hepnos_experiment(SMALL, events_per_client=256)


def test_hepnos_experiment_stores_all_events(small_result):
    assert small_result.events_stored == 4 * 256
    assert small_result.makespan > 0
    assert small_result.throughput > 0


def test_hepnos_experiment_profiles_put_packed(small_result):
    row = small_result.put_packed_row()
    assert row.call_count == small_result.rpcs_issued
    assert row.cumulative_latency > 0


def test_hepnos_target_breakdown_components(small_result):
    breakdown = small_result.target_breakdown()
    assert set(breakdown) == {
        "target_handler_time",
        "target_execution_time",
        "target_completion_callback_time",
    }
    assert all(v >= 0 for v in breakdown.values())
    assert breakdown["target_execution_time"] > 0


def test_hepnos_unaccounted_non_negative(small_result):
    assert 0 <= small_result.unaccounted_time <= small_result.cumulative_origin_time
    assert 0 <= small_result.unaccounted_fraction < 1


def test_hepnos_series_extractors(small_result):
    ofi = small_result.ofi_series()
    assert len(ofi) == small_result.rpcs_issued
    blocked = small_result.blocked_samples()
    assert len(blocked) == small_result.rpcs_issued


def test_hepnos_experiment_deterministic():
    r1 = run_hepnos_experiment(SMALL, events_per_client=128, seed=3)
    r2 = run_hepnos_experiment(SMALL, events_per_client=128, seed=3)
    assert r1.makespan == r2.makespan
    assert r1.cumulative_origin_time == r2.cumulative_origin_time


def test_hepnos_experiment_timeout_errors():
    with pytest.raises(RuntimeError, match="did not finish"):
        run_hepnos_experiment(SMALL, events_per_client=256, time_limit=1e-6)


def test_mobject_experiment_smoke():
    result = run_mobject_experiment(
        n_clients=3,
        ior_config=IorConfig(objects_per_client=2, transfer_size=4096,
                             read_iterations=1),
    )
    summary = result.summary
    names = {row.name for row in summary.rows}
    assert "mobject_write_op" in names
    assert "mobject_read_op -> sdskv_list_keyvals_rpc" in names
    trace = result.write_op_trace()
    assert trace is not None
    assert len(trace.discrete_calls()) == 12
    spans = result.write_op_zipkin()
    assert len(spans) == 13  # root + 12 children


def test_sonata_experiment_smoke():
    result = run_sonata_experiment(n_records=1000, batch_size=200)
    breakdown = result.target_execution_breakdown()
    assert breakdown["input_deserialization_time"] > 0
    assert breakdown["document_store_time"] > 0
    assert 0 < result.deserialization_fraction < 1


def test_overhead_study_runs_all_stages():
    study = run_overhead_study(
        config=SMALL, repetitions=1, events_per_client=64
    )
    assert set(study.timings) == set(OVERHEAD_STAGES)
    rows = study.rows()
    assert len(rows) == 4
    # Baseline collects no trace events; full support collects plenty.
    assert study.timings[Stage.OFF].trace_events == 0
    assert study.timings[Stage.FULL].trace_events > 0
    # Simulated makespan must be identical across stages (instrumentation
    # adds no simulated cost).
    makespans = {round(t.mean_makespan, 12) for t in study.timings.values()}
    assert len(makespans) == 1


def test_time_analysis_scripts():
    result = run_hepnos_experiment(SMALL, events_per_client=128)
    timings = time_analysis_scripts(result)
    assert timings.profile_summary_s >= 0
    assert timings.trace_summary_s >= 0
    assert timings.system_summary_s >= 0
    assert timings.trace_events == result.collector.total_trace_events
    assert timings.rows()[0]["trace events"] == timings.trace_events
