"""Seeded, seq-numbered inter-LP boundary channels.

A cross-LP message leaves its origin fabric as a
:class:`BoundaryEvent`: the sender stamps it with the simulated send
and receive times plus a per-LP sequence number (assigned in send
order when the outbox is drained at the end of a window).  The kernel
routes events between LPs and every receiver injects its inbound batch
in the *canonical order* ``(recv_ts, src_lp, seq)`` -- the same total
order regardless of how many OS processes carried the LPs, which is
what makes the parallel schedule byte-identical to the serial one.

At scale the per-event pickle becomes the boundary channel's hot path,
so the wire format is a :class:`BoundaryBatch`: one object per
(window, src LP -> dst LP) pair carrying the hot numeric fields
(``seq``, ``send_ts``, ``recv_ts``) as compact typed arrays and the
message payloads as one list.  A batch round-trips through pickle as a
single object -- one header instead of N -- and expands back to the
exact same :class:`BoundaryEvent` sequence on the receiving side, so
the canonical injection order, the byte ledger, and the run digests
are untouched by batching.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Union

__all__ = [
    "BoundaryBatch",
    "BoundaryEvent",
    "as_events",
    "inbound_order",
    "pickle_roundtrip",
]


@dataclass(frozen=True)
class BoundaryEvent:
    """One cross-LP message crossing a window barrier."""

    src_lp: int
    dst_lp: int
    seq: int
    send_ts: float
    recv_ts: float
    msg: Any  # repro.net.Message -- kept loose so channel stays import-light

    def sort_key(self) -> tuple[float, int, int]:
        return (self.recv_ts, self.src_lp, self.seq)


@dataclass(frozen=True)
class BoundaryBatch:
    """All boundary events of one (window, src LP -> dst LP) channel.

    Columnar: the three hot numeric fields live in typed arrays
    (``'q'`` for sequence numbers, ``'d'`` for timestamps) and pickle
    as flat machine buffers; only the payload objects take the generic
    pickle path.  Construction is via :meth:`from_events`, which
    requires a uniform, already seq-ordered (src, dst) event run --
    exactly what the LP outbox drain produces.
    """

    src_lp: int
    dst_lp: int
    seqs: array
    send_ts: array
    recv_ts: array
    msgs: tuple

    @classmethod
    def from_events(cls, events: list[BoundaryEvent]) -> "BoundaryBatch":
        if not events:
            raise ValueError("a BoundaryBatch cannot be empty")
        src, dst = events[0].src_lp, events[0].dst_lp
        for ev in events:
            if ev.src_lp != src or ev.dst_lp != dst:
                raise ValueError(
                    f"mixed channels in one batch: ({ev.src_lp}->{ev.dst_lp})"
                    f" vs ({src}->{dst})"
                )
        return cls(
            src_lp=src,
            dst_lp=dst,
            seqs=array("q", (ev.seq for ev in events)),
            send_ts=array("d", (ev.send_ts for ev in events)),
            recv_ts=array("d", (ev.recv_ts for ev in events)),
            msgs=tuple(ev.msg for ev in events),
        )

    def __len__(self) -> int:
        return len(self.seqs)

    def events(self) -> Iterator[BoundaryEvent]:
        """Expand back to the exact event sequence the batch encodes."""
        src, dst = self.src_lp, self.dst_lp
        for seq, send_ts, recv_ts, msg in zip(
            self.seqs, self.send_ts, self.recv_ts, self.msgs
        ):
            yield BoundaryEvent(
                src_lp=src,
                dst_lp=dst,
                seq=seq,
                send_ts=send_ts,
                recv_ts=recv_ts,
                msg=msg,
            )

    def min_recv_ts(self) -> float:
        # Within one channel the drain assigns seqs in send order and
        # FIFO wire times are non-decreasing only without jitter, so
        # scan rather than trust element 0.
        return min(self.recv_ts)

    def total_bytes(self) -> int:
        return sum(msg.size_bytes for msg in self.msgs)


#: What a boundary transport hands an LP: loose events (tests, the
#: explicit API) or channel batches (the kernel's wire format).
Inbound = Union[BoundaryEvent, BoundaryBatch]


def as_events(inbound: Iterable[Inbound]) -> list[BoundaryEvent]:
    """Flatten a mixed event/batch list into loose boundary events."""

    out: list[BoundaryEvent] = []
    for item in inbound:
        if isinstance(item, BoundaryBatch):
            out.extend(item.events())
        else:
            out.append(item)
    return out


def inbound_order(events: Iterable[Inbound]) -> list[BoundaryEvent]:
    """Canonical injection order for one LP's inbound batch."""

    return sorted(as_events(events), key=BoundaryEvent.sort_key)


def pickle_roundtrip(events: list) -> list:
    """Copy events or batches through pickle, exactly as a process
    pipe would.

    The in-process (serial) executor routes boundary traffic through
    this so both executors hand the receiver a private copy: a handler
    that mutated a request payload in place would otherwise alias the
    sender's object in serial mode but not in multiprocessing mode,
    and the two schedules could diverge.  It also surfaces
    unpicklable payloads in serial runs, long before anyone reaches
    for ``--workers``.
    """

    if not events:
        return events
    return pickle.loads(pickle.dumps(events))
