#!/usr/bin/env python3
"""ior over Mobject: finding dominant callpaths and request structure.

Reproduces the §V-A case study interactively: one Mobject provider node
(sequencer + BAKE + SDSKV), ten colocated ior clients, full SYMBIOSYS
instrumentation.  Prints the Figure 6 dominant-callpath profile and
writes the Figure 5 Zipkin JSON for one mobject_write_op request to
``mobject_write_op_trace.json`` (loadable in the OpenZipkin/Jaeger UI).

Run:  python examples/mobject_ior.py
"""

import json
from pathlib import Path

from repro.experiments import run_mobject_experiment
from repro.symbiosys.zipkin import to_zipkin_json
from repro.workloads import IorConfig


def main() -> None:
    result = run_mobject_experiment(
        n_clients=10,
        ior_config=IorConfig(
            objects_per_client=8, transfer_size=16 * 1024, read_iterations=5
        ),
    )
    print(f"ior finished at t={result.makespan * 1e3:.2f} ms "
          f"({len(result.clients)} clients, all data verified)\n")

    print("=== Figure 6: top-5 dominant callpaths ===")
    print(result.summary.render(top_n=5))

    request = result.write_op_trace()
    print("\n=== Figure 5: one mobject_write_op request ===")
    print(f"request {request.request_id} discovered "
          f"{len(request.discrete_calls())} discrete microservice calls:")
    for i, name in enumerate(request.discrete_calls(), 1):
        print(f"  step {i:>2}: {name}")

    out = Path(__file__).with_name("mobject_write_op_trace.json")
    out.write_text(to_zipkin_json([request]))
    print(f"\nZipkin trace written to {out}")
    spans = json.loads(out.read_text())
    print(f"({len(spans)} spans; import into Zipkin/Jaeger to view the "
          f"Gantt chart)")


if __name__ == "__main__":
    main()
