"""Unit and property tests for the profile stores."""

import pytest
from hypothesis import given, strategies as st

from repro.symbiosys import IntervalStats, ProfileKey, ProfileStore


def test_interval_stats_streaming():
    s = IntervalStats()
    for v in (1.0, 3.0, 2.0):
        s.add(v)
    assert s.count == 3
    assert s.total == pytest.approx(6.0)
    assert s.mean == pytest.approx(2.0)
    assert s.minimum == 1.0
    assert s.maximum == 3.0


def test_interval_stats_empty_mean():
    assert IntervalStats().mean == 0.0


def test_interval_stats_merge():
    a = IntervalStats()
    b = IntervalStats()
    for v in (1.0, 2.0):
        a.add(v)
    for v in (10.0, 20.0):
        b.add(v)
    a.merge(b)
    assert a.count == 4
    assert a.total == pytest.approx(33.0)
    assert a.minimum == 1.0
    assert a.maximum == 20.0


def test_store_add_and_get():
    store = ProfileStore()
    key = ProfileKey(callpath=0xAB, origin="cli", target="svr")
    store.add(key, "origin_execution_time", 0.5)
    store.add(key, "origin_execution_time", 1.5)
    stats = store.get(key, "origin_execution_time")
    assert stats.count == 2
    assert stats.total == pytest.approx(2.0)


def test_store_unknown_interval_rejected():
    store = ProfileStore()
    key = ProfileKey(callpath=1, origin="a", target="b")
    with pytest.raises(ValueError):
        store.add(key, "not_an_interval", 1.0)


def test_store_separate_keys():
    store = ProfileStore()
    k1 = ProfileKey(callpath=1, origin="a", target="b")
    k2 = ProfileKey(callpath=1, origin="a", target="c")
    store.add(k1, "origin_execution_time", 1.0)
    store.add(k2, "origin_execution_time", 2.0)
    assert len(store) == 2
    assert store.get(k1, "origin_execution_time").total == 1.0
    assert store.get(k2, "origin_execution_time").total == 2.0


def test_store_get_missing_returns_none():
    store = ProfileStore()
    key = ProfileKey(callpath=1, origin="a", target="b")
    assert store.get(key, "origin_execution_time") is None


def test_store_merge_disjoint_and_overlapping():
    s1 = ProfileStore()
    s2 = ProfileStore()
    shared = ProfileKey(callpath=1, origin="a", target="b")
    only2 = ProfileKey(callpath=2, origin="a", target="b")
    s1.add(shared, "origin_execution_time", 1.0)
    s2.add(shared, "origin_execution_time", 2.0)
    s2.add(only2, "target_handler_time", 0.25)
    s1.merge(s2)
    assert s1.get(shared, "origin_execution_time").total == pytest.approx(3.0)
    assert s1.get(only2, "target_handler_time").total == pytest.approx(0.25)
    # Merge must copy, not alias, the source stats.
    s2.add(only2, "target_handler_time", 1.0)
    assert s1.get(only2, "target_handler_time").total == pytest.approx(0.25)


def test_total_over_interval():
    store = ProfileStore()
    for i in range(4):
        key = ProfileKey(callpath=i, origin="a", target="b")
        store.add(key, "origin_execution_time", 1.0)
        store.add(key, "target_handler_time", 0.5)
    assert store.total_over_interval("origin_execution_time") == pytest.approx(4.0)
    assert store.total_over_interval("target_handler_time") == pytest.approx(2.0)


@given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50))
def test_property_stats_match_reference(values):
    s = IntervalStats()
    for v in values:
        s.add(v)
    assert s.count == len(values)
    assert s.total == pytest.approx(sum(values))
    assert s.minimum == min(values)
    assert s.maximum == max(values)
    assert s.mean == pytest.approx(sum(values) / len(values))


@given(
    st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=20),
    st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=20),
)
def test_property_merge_equals_combined(xs, ys):
    a = IntervalStats()
    b = IntervalStats()
    combined = IntervalStats()
    for v in xs:
        a.add(v)
        combined.add(v)
    for v in ys:
        b.add(v)
        combined.add(v)
    a.merge(b)
    assert a.count == combined.count
    assert a.total == pytest.approx(combined.total)
    assert a.minimum == combined.minimum
    assert a.maximum == combined.maximum
