"""An ior-like benchmark driver adapted to Mobject.

Mirrors the paper's modified ior: each simulated client process writes a
set of objects through the RADOS-subset API and then reads them back.
Used by the Figure 5/6 case studies (one Mobject provider node, 10
colocated clients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..margo import MargoInstance
from ..services.mobject import MobjectClient
from ..sim import RngRegistry, SimEvent, all_of

__all__ = ["IorConfig", "IorClient", "run_ior_clients"]


@dataclass(frozen=True)
class IorConfig:
    """Per-client transfer plan."""

    objects_per_client: int = 8
    transfer_size: int = 16 * 1024
    read_back: bool = True
    #: Read the object set this many times (ior -i style iterations).
    read_iterations: int = 5

    def __post_init__(self) -> None:
        if self.objects_per_client < 1:
            raise ValueError("objects_per_client must be positive")
        if self.transfer_size < 1:
            raise ValueError("transfer_size must be positive")
        if self.read_iterations < 0:
            raise ValueError("read_iterations must be non-negative")


class IorClient:
    """One ior rank driving Mobject."""

    def __init__(
        self,
        mi: MargoInstance,
        target: str,
        rank: int,
        config: IorConfig,
        seed: int = 99,
    ):
        self.mi = mi
        self.mobject = MobjectClient(mi)
        self.target = target
        self.rank = rank
        self.config = config
        self._rng = RngRegistry(seed).fork(f"ior{rank}").stream("data")
        self.write_errors = 0
        self.read_mismatches = 0
        self.finished_at: Optional[float] = None
        #: Fires (with the completion time) when :meth:`body` finishes.
        self.finished = mi.sim.event(f"ior.rank{rank}.finished")

    def _object_id(self, index: int) -> str:
        return f"ior.rank{self.rank}.obj{index}"

    def body(self) -> Generator:
        cfg = self.config
        written: dict[str, bytes] = {}
        for i in range(cfg.objects_per_client):
            oid = self._object_id(i)
            data = self._rng.integers(
                0, 256, size=cfg.transfer_size, dtype=np.uint8
            ).tobytes()
            ret = yield from self.mobject.write_op(self.target, oid, data)
            if ret != 0:
                self.write_errors += 1
            written[oid] = data
        if cfg.read_back:
            for _ in range(max(1, cfg.read_iterations)):
                for oid, expect in written.items():
                    got = yield from self.mobject.read_op(self.target, oid)
                    if got != expect:
                        self.read_mismatches += 1
        self.finished_at = self.mi.sim.now
        self.finished.succeed(self.finished_at)


def run_ior_clients(clients: list[IorClient]) -> SimEvent:
    """Spawn every client's body as a ULT on its own process; returns a
    latch event that fires once every client has finished (so callers
    can wait event-driven instead of polling a predicate)."""
    for client in clients:
        client.mi.client_ult(client.body(), name=f"ior.rank{client.rank}")
    sim = clients[0].mi.sim
    return all_of(sim, (c.finished for c in clients), name="ior-clients-done")
