"""Tests for the ASCII reporting helpers."""

import pytest

from repro.experiments import ascii_table, format_seconds, series_histogram


def test_ascii_table_basic():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = ascii_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "22" in lines[3]
    # Aligned columns: all lines equal length.
    assert len({len(l) for l in lines}) == 1


def test_ascii_table_column_selection_and_floats():
    rows = [{"a": 1.23456789, "b": 2}]
    text = ascii_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]
    text2 = ascii_table(rows, columns=["a"])
    assert "1.235" in text2


def test_ascii_table_empty():
    assert ascii_table([]) == "(empty table)"


def test_series_histogram_binning():
    text = series_histogram([1, 2, 16, 16, 40], bins=[4, 16], label="ofi")
    assert "5 samples" in text
    assert "<= 4" in text
    assert "5-16" in text
    assert "> " in text


def test_format_seconds_scales():
    assert format_seconds(5e-7) == "0.50us"
    assert format_seconds(1.5e-3) == "1.500ms"
    assert format_seconds(2.0) == "2.000s"
