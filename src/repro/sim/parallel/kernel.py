"""The conservative window coordinator and its two executors.

One loop -- shared verbatim by the in-process (serial) executor and
the ``multiprocessing`` executor -- decides every window from the same
inputs (per-LP next-event times, done flags, routed boundary events),
so the window schedule, and therefore every simulated outcome, is
byte-identical regardless of how many OS processes carry the LPs:

1. *floor*: the minimum pending timestamp across every LP's local
   queue and every routed-but-undelivered boundary event (idle spans
   are jumped, never stepped through),
2. *window*: ``[floor, floor + lookahead)`` executes on every LP
   (events strictly before the end),
3. *barrier*: outboxes drain into seq-numbered boundary events framed
   as per-(src, dst) columnar :class:`~repro.sim.parallel.channel.
   BoundaryBatch` objects, the kernel routes the batches, and the next
   floor is computed.

Conservative safety: a message sent at ``s`` inside the window arrives
no earlier than ``s + lookahead >= floor + lookahead`` = the window
end, so no LP can receive an event in a window it already executed --
no rollback is ever needed.

Kernel self-observability flows through the ordinary metrics types
(:class:`~repro.symbiosys.metrics.MetricsRegistry` counters/gauges +
a :class:`~repro.symbiosys.metrics.SeriesStore` of per-round samples):
``kernel_windows_executed``, ``kernel_boundary_events``,
``kernel_lp_imbalance``, and the wall-clock-based
``kernel_barrier_wait_frac``.  Everything except the barrier fraction
is a pure function of the simulated schedule and participates in the
deterministic report; wall-clock timing never does.
"""

from __future__ import annotations

import hashlib
import sys
import time
from typing import Any, Optional

from ...symbiosys.metrics import MetricsRegistry, SeriesStore
from .channel import BoundaryBatch, pickle_roundtrip
from .lp import LPRuntime
from .partition import PartitionPlan

__all__ = [
    "KernelError",
    "ParallelRunResult",
    "ParallelVerifyError",
    "run_partitioned",
]


class KernelError(RuntimeError):
    """The kernel could not execute or complete the partitioned run."""


class ParallelVerifyError(KernelError):
    """``verify=True`` found a serial-vs-parallel digest mismatch."""

    def __init__(self, mismatches: list[str]):
        self.mismatches = mismatches
        super().__init__(
            "parallel run diverged from serial reference in: "
            + ", ".join(mismatches)
        )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# executors: same protocol, different transports
# ---------------------------------------------------------------------------


class _SerialExecutor:
    """All LPs in this interpreter, stepped sequentially.

    Boundary events still round-trip through pickle so both executors
    hand receivers private copies (see
    :func:`~repro.sim.parallel.channel.pickle_roundtrip`).
    """

    workers_used = 1

    def __init__(self, plan: PartitionPlan):
        self._runtimes = [LPRuntime(plan, i) for i in range(plan.n_lps)]

    def init(self) -> dict[int, dict]:
        return {rt.lp_id: rt.init_info() for rt in self._runtimes}

    def bind(self, addr_to_lp: dict[str, int]) -> None:
        for rt in self._runtimes:
            rt.bind(addr_to_lp)

    def round(
        self,
        start: float,
        end: float,
        inbound: dict[int, list[BoundaryBatch]],
    ) -> dict[int, dict]:
        out = {}
        for rt in self._runtimes:
            t0 = time.perf_counter()
            rep = rt.window(
                start, end, pickle_roundtrip(inbound.get(rt.lp_id, []))
            )
            rep["wall"] = time.perf_counter() - t0
            out[rt.lp_id] = rep
        return out

    def finish(self) -> dict[int, dict]:
        return {rt.lp_id: rt.finish() for rt in self._runtimes}

    def close(self) -> None:
        pass


def _worker_main(plan: PartitionPlan, lp_ids: list[int], conn) -> None:
    """Entry point of one ``multiprocessing`` worker (fork context:
    the plan and its builder closures arrive by memory inheritance,
    never by pickle)."""
    try:
        runtimes = {i: LPRuntime(plan, i) for i in lp_ids}
        conn.send(("init", {i: rt.init_info() for i, rt in runtimes.items()}))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "bind":
                for rt in runtimes.values():
                    rt.bind(cmd[1])
            elif op == "round":
                _, start, end, inbound = cmd
                out = {}
                for i, rt in runtimes.items():
                    t0 = time.perf_counter()
                    rep = rt.window(start, end, inbound.get(i, []))
                    rep["wall"] = time.perf_counter() - t0
                    out[i] = rep
                conn.send(("round", out))
            elif op == "finish":
                conn.send(("finish", {i: rt.finish() for i, rt in runtimes.items()}))
                conn.close()
                return
            else:  # pragma: no cover - protocol bug
                raise KernelError(f"unknown kernel command {op!r}")
    except Exception:  # pragma: no cover - surfaced in the parent
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass


class _ProcessExecutor:
    """LPs spread round-robin over forked worker processes."""

    def __init__(self, plan: PartitionPlan, workers: int):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.workers_used = min(workers, plan.n_lps)
        assignment: list[list[int]] = [[] for _ in range(self.workers_used)]
        for lp_id in range(plan.n_lps):
            assignment[lp_id % self.workers_used].append(lp_id)
        self._lp_to_worker = {
            lp_id: w for w, ids in enumerate(assignment) for lp_id in ids
        }
        self._conns = []
        self._procs = []
        for ids in assignment:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(plan, ids, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _recv(self, conn, expect: str):
        try:
            tag, payload = conn.recv()
        except EOFError:
            raise KernelError("kernel worker died mid-protocol") from None
        if tag == "error":
            raise KernelError(f"kernel worker failed:\n{payload}")
        if tag != expect:  # pragma: no cover - protocol bug
            raise KernelError(f"expected {expect!r} reply, got {tag!r}")
        return payload

    def _gather(self, expect: str) -> dict[int, dict]:
        merged: dict[int, dict] = {}
        for conn in self._conns:
            merged.update(self._recv(conn, expect))
        return merged

    def init(self) -> dict[int, dict]:
        return self._gather("init")

    def bind(self, addr_to_lp: dict[str, int]) -> None:
        for conn in self._conns:
            conn.send(("bind", addr_to_lp))

    def round(
        self,
        start: float,
        end: float,
        inbound: dict[int, list[BoundaryBatch]],
    ) -> dict[int, dict]:
        for w, conn in enumerate(self._conns):
            batch = {
                lp_id: events
                for lp_id, events in inbound.items()
                if self._lp_to_worker[lp_id] == w
            }
            conn.send(("round", start, end, batch))
        return self._gather("round")

    def finish(self) -> dict[int, dict]:
        for conn in self._conns:
            conn.send(("finish",))
        return self._gather("finish")

    def close(self) -> None:
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


# ---------------------------------------------------------------------------
# result
# ---------------------------------------------------------------------------


class ParallelRunResult:
    """Outcome of one partitioned run.

    Everything :meth:`report` and :meth:`digests` expose is a pure
    function of the simulated schedule -- byte-identical across
    ``workers`` counts.  Wall-clock facts (:attr:`wall_time`,
    :attr:`barrier_wait_frac`) live in :meth:`timing` only.
    """

    def __init__(
        self,
        *,
        plan: PartitionPlan,
        workers_requested: int,
        workers_used: int,
        fallback: Optional[str],
        lp_reports: list[dict],
        windows_executed: int,
        boundary_events: int,
        wall_time: float,
        barrier_wait_frac: float,
        registry: MetricsRegistry,
        store: SeriesStore,
    ):
        self.plan_name = plan.name
        self.seed = plan.seed
        self.lookahead = plan.lookahead()
        self.n_lps = plan.n_lps
        self.workers_requested = workers_requested
        self.workers_used = workers_used
        self.fallback = fallback
        self.lp_reports = lp_reports
        self.windows_executed = windows_executed
        self.boundary_events = boundary_events
        self.wall_time = wall_time
        self.barrier_wait_frac = barrier_wait_frac
        #: Kernel self-observability: registry of counters/gauges plus
        #: per-round samples, both in the ordinary metrics types so
        #: the existing exporters and the store can consume them.
        self.registry = registry
        self.store = store
        self.verified_against: Optional[dict[str, str]] = None

    # -- derived ------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(
            r["makespan"] is not None
            for r in self.lp_reports
            if r["has_done"]
        )

    @property
    def makespan(self) -> float:
        spans = [
            r["makespan"] for r in self.lp_reports if r["makespan"] is not None
        ]
        return max(spans) if spans else 0.0

    @property
    def events_processed(self) -> int:
        return sum(r["events_processed"] for r in self.lp_reports)

    # -- deterministic merge ------------------------------------------------

    def merged_timeline_csv(self) -> str:
        """All per-LP trace rows interleaved by ``(true_ts, lp_id,
        order)`` -- one global timeline, identical for every worker
        count."""
        rows = []
        for r in self.lp_reports:
            for true_ts, process, order, kind, rpc, req in r["trace_rows"]:
                rows.append((true_ts, r["lp_id"], process, order, kind, rpc, req))
        rows.sort()
        lines = ["true_ts,lp,process,order,kind,rpc,request"]
        for true_ts, lp_id, process, order, kind, rpc, req in rows:
            lines.append(
                f"{true_ts!r},{lp_id},{process},{order},{kind},{rpc},{req}"
            )
        return "\n".join(lines) + "\n"

    def merged_series_csv(self) -> str:
        """All per-LP monitor samples merged, sorted by ``(name,
        labels, lp, time)`` to mirror the serial CSV exporter."""
        rows = []
        for r in self.lp_reports:
            for t, name, labels_text, v in r["series_rows"]:
                rows.append((name, labels_text, r["lp_id"], t, v))
        rows.sort()
        lines = ["name,labels,lp,time,value"]
        for name, labels_text, lp_id, t, v in rows:
            lines.append(f"{name},{labels_text},{lp_id},{t!r},{v!r}")
        return "\n".join(lines) + "\n"

    # -- verification surface -----------------------------------------------

    def digests(self) -> dict[str, str]:
        """Digest of every deterministic artifact: the merged
        timeline/series views, each LP's own exports, and the kernel
        schedule summary."""
        out = {
            "merged_timeline": _digest(self.merged_timeline_csv()),
            "merged_series": _digest(self.merged_series_csv()),
            "kernel": _digest(self.report()),
        }
        for r in self.lp_reports:
            for kind, text in sorted(r.get("artifacts", {}).items()):
                out[f"lp{r['lp_id']}:{r['name']}:{kind}"] = _digest(text)
        return out

    def report(self) -> str:
        """Deterministic run card (no wall-clock facts)."""
        lines = [
            f"parallel run: {self.plan_name}",
            f"  lps: {self.n_lps}  seed: {self.seed}  "
            f"lookahead: {self.lookahead!r}",
            f"  windows: {self.windows_executed}  "
            f"boundary events: {self.boundary_events}",
            f"  events: {self.events_processed}  done: {self.done}  "
            f"makespan: {self.makespan!r}",
        ]
        if self.fallback:
            lines.append(f"  serial fallback: {self.fallback}")
        for r in self.lp_reports:
            lines.append(
                f"  lp{r['lp_id']} {r['name']}: "
                f"events={r['events_processed']} "
                f"exported={r['exported_bytes']} "
                f"imported={r['imported_bytes']} "
                f"stranded={r['stranded_boundary']} "
                f"leaked={r['leaked_events']} "
                f"violations={r['violations']}"
            )
            for key in sorted(r["extra"]):
                lines.append(f"    {key}: {r['extra'][key]!r}")
        return "\n".join(lines)

    def timing(self) -> dict[str, float]:
        """Wall-clock facts -- real measurements, excluded from every
        deterministic surface."""
        return {
            "wall_time": self.wall_time,
            "barrier_wait_frac": self.barrier_wait_frac,
            "workers_used": float(self.workers_used),
        }

    def verify_mismatches(self, other: "ParallelRunResult") -> list[str]:
        mine, theirs = self.digests(), other.digests()
        keys = sorted(set(mine) | set(theirs))
        return [k for k in keys if mine.get(k) != theirs.get(k)]


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


def _validate_topology(plan: PartitionPlan, infos: dict[int, dict]) -> dict:
    """Partition rules: one node per LP, remotes must resolve."""
    addr_to_lp: dict[str, int] = {}
    addr_node: dict[str, str] = {}
    node_owner: dict[str, int] = {}
    for lp_id in sorted(infos):
        info = infos[lp_id]
        for node in info["local_nodes"]:
            prev = node_owner.get(node)
            if prev is not None:
                raise KernelError(
                    f"node {node!r} spans LPs {prev} and {lp_id}; "
                    "intra-node traffic cannot cross an LP boundary"
                )
            node_owner[node] = lp_id
        for addr, node in info["local_addrs"].items():
            if addr in addr_to_lp:
                raise KernelError(f"address {addr!r} created in two LPs")
            addr_to_lp[addr] = lp_id
            addr_node[addr] = node
    for lp_id in sorted(infos):
        for addr, node in infos[lp_id]["remote_addrs"].items():
            if addr not in addr_to_lp:
                raise KernelError(
                    f"LP {lp_id} declared remote {addr!r}, "
                    "but no LP created it"
                )
            if addr_to_lp[addr] == lp_id:
                raise KernelError(
                    f"LP {lp_id} declared its own process {addr!r} as remote"
                )
            if addr_node[addr] != node:
                raise KernelError(
                    f"remote {addr!r} declared on node {node!r} "
                    f"but lives on {addr_node[addr]!r}"
                )
    if not any(info["has_done"] for info in infos.values()):
        raise KernelError("no LP declared a done event (ctx.set_done)")
    return addr_to_lp


def _run_with_executor(
    plan: PartitionPlan, executor, workers_requested: int, fallback: Optional[str]
) -> ParallelRunResult:
    registry = MetricsRegistry()
    store = SeriesStore(capacity=65536)
    windows = registry.counter(
        "kernel_windows_executed",
        help="conservative windows the kernel executed",
    )
    boundary = registry.counter(
        "kernel_boundary_events",
        help="cross-LP boundary events routed at barriers",
    )
    imbalance = registry.gauge(
        "kernel_lp_imbalance",
        help="per-window (max-min)/max LP event-count imbalance",
    )
    barrier_frac = registry.gauge(
        "kernel_barrier_wait_frac",
        help="fraction of aggregate worker wall-time spent at barriers",
    )
    serial_fallback = registry.gauge(
        "kernel_serial_fallback",
        help="1 when a multi-worker request degraded to the serial "
        "executor (single-LP plan, no fork), else 0",
    )
    serial_fallback.set(1.0 if fallback else 0.0)
    t_start = time.perf_counter()
    busy_wall = 0.0
    round_wall = 0.0

    try:
        infos = executor.init()
        if set(infos) != set(range(plan.n_lps)):  # pragma: no cover
            raise KernelError("executor lost track of LPs")
        addr_to_lp = _validate_topology(plan, infos)
        executor.bind(addr_to_lp)

        lookahead = plan.lookahead()
        next_ts: dict[int, Optional[float]] = {
            i: infos[i]["next_ts"] for i in infos
        }
        done: dict[int, bool] = {i: not infos[i]["has_done"] for i in infos}
        pending: dict[int, list[BoundaryBatch]] = {i: [] for i in infos}
        quiesce_end: Optional[float] = None
        n_windows = 0
        n_boundary = 0

        while True:
            candidates = [t for t in next_ts.values() if t is not None]
            candidates += [
                batch.min_recv_ts()
                for batches in pending.values()
                for batch in batches
            ]
            if not candidates:
                break  # fully idle everywhere
            floor = min(candidates)
            have_pending = any(pending.values())
            if (
                quiesce_end is not None
                and not have_pending
                and floor >= quiesce_end
            ):
                break
            if floor >= plan.limit:
                if not all(done.values()):
                    raise KernelError(
                        f"partitioned run hit limit {plan.limit!r} before "
                        "every done event fired"
                    )
                break
            end = floor + lookahead
            inbound, pending = pending, {i: [] for i in infos}

            t0 = time.perf_counter()
            reports = executor.round(floor, end, inbound)
            dt = time.perf_counter() - t0
            round_wall += dt * executor.workers_used
            busy_wall += sum(rep["wall"] for rep in reports.values())

            n_routed = 0
            for lp_id in sorted(reports):
                rep = reports[lp_id]
                next_ts[lp_id] = rep["next_ts"]
                done[lp_id] = done[lp_id] or rep["done"]
                for batch in rep["outbound"]:
                    pending[batch.dst_lp].append(batch)
                    n_routed += len(batch)
            n_windows += 1
            n_boundary += n_routed

            counts = [reports[i]["events"] for i in sorted(reports)]
            peak = max(counts) if counts else 0
            imb = (peak - min(counts)) / peak if peak else 0.0
            windows.inc()
            boundary.inc(n_routed)
            imbalance.set(imb)
            store.series("kernel_boundary_events").append(floor, n_routed)
            store.series("kernel_lp_imbalance").append(floor, imb)
            for lp_id in sorted(reports):
                store.series(
                    "kernel_window_events",
                    {"lp": plan.lps[lp_id].name},
                ).append(floor, reports[lp_id]["events"])

            if all(done.values()) and quiesce_end is None:
                quiesce_end = end + plan.quiesce

        # A limit-break can leave routed-but-undelivered events; they
        # count against the exported side of the ledger below.
        undelivered_bytes = sum(
            batch.total_bytes()
            for batches in pending.values()
            for batch in batches
        )
        finish = executor.finish()
    finally:
        executor.close()

    frac = 1.0 - busy_wall / round_wall if round_wall > 0 else 0.0
    barrier_frac.set(frac)

    lp_reports = []
    exported = imported = stranded_bytes = 0
    for lp_id in sorted(finish):
        rep = finish[lp_id]
        rep["has_done"] = infos[lp_id]["has_done"]
        lp_reports.append(rep)
        exported += rep["exported_bytes"]
        imported += rep["imported_bytes"]
        stranded_bytes += rep.get("stranded_bytes", 0)
    if exported != imported + stranded_bytes + undelivered_bytes:
        raise KernelError(
            f"cross-LP byte ledger broken: exported {exported} != "
            f"imported {imported} + stranded {stranded_bytes} "
            f"+ undelivered {undelivered_bytes}"
        )

    return ParallelRunResult(
        plan=plan,
        workers_requested=workers_requested,
        workers_used=executor.workers_used,
        fallback=fallback,
        lp_reports=lp_reports,
        windows_executed=n_windows,
        boundary_events=n_boundary,
        wall_time=time.perf_counter() - t_start,
        barrier_wait_frac=max(0.0, frac),
        registry=registry,
        store=store,
    )


def run_partitioned(
    plan: PartitionPlan, *, workers: int = 1, verify: bool = False
) -> ParallelRunResult:
    """Execute ``plan`` with ``workers`` OS processes.

    ``workers=1`` (or a single-LP plan, or a platform without the
    ``fork`` start method) runs the identical window schedule
    in-process.  ``verify=True`` additionally runs the serial
    reference and raises :class:`ParallelVerifyError` unless every
    deterministic digest matches byte-for-byte.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    fallback = None
    if workers > 1 and plan.n_lps < 2:
        fallback = "single-LP plan"
    elif workers > 1 and not _fork_available():
        fallback = "no fork start method"

    if fallback is not None:
        # Degrading is correct (the schedule is identical) but never
        # silent: the caller asked for parallelism it will not get.
        print(
            f"repro.sim.parallel: {workers} worker(s) requested but "
            f"running serially ({fallback})",
            file=sys.stderr,
        )

    if workers > 1 and fallback is None:
        result = _run_with_executor(
            plan, _ProcessExecutor(plan, workers), workers, None
        )
    else:
        result = _run_with_executor(
            plan, _SerialExecutor(plan), workers, fallback
        )

    if verify and result.workers_used > 1:
        reference = _run_with_executor(
            plan, _SerialExecutor(plan), 1, None
        )
        mismatches = result.verify_mismatches(reference)
        if mismatches:
            raise ParallelVerifyError(mismatches)
        result.verified_against = reference.digests()
    return result


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()
