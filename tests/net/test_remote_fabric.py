"""Cross-LP fabric surface: lookahead floor, remote peers, the ledger.

The conservative parallel kernel leans on two fabric guarantees:
``min_cross_node_latency()`` is a true lower bound on every cross-node
wire time (so it can serve as the lookahead), and boundary transfers
are fully accounted in the exported/imported extension of the byte-
conservation identity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric, FabricConfig, WireFault
from repro.sim import Simulator


def make_world(config=None):
    sim = Simulator()
    fabric = Fabric(sim, config)
    fabric.create_endpoint("local", "nodeL")
    fabric.register_remote("far", "nodeF")
    return sim, fabric


# -- lookahead derivation -------------------------------------------------


def test_min_cross_node_latency_is_the_latency_floor():
    assert FabricConfig().min_cross_node_latency() == FabricConfig().latency
    config = FabricConfig(latency=3e-6)
    assert config.min_cross_node_latency() == 3e-6


def test_jitter_admits_no_lookahead():
    config = FabricConfig(jitter_sigma=0.1)
    with pytest.raises(ValueError, match="jitter"):
        config.min_cross_node_latency()


def test_zero_latency_admits_no_lookahead():
    config = FabricConfig(latency=0.0)
    with pytest.raises(ValueError, match="latency"):
        config.min_cross_node_latency()


def test_negative_fault_delay_rejected_at_construction():
    with pytest.raises(ValueError, match="extra_delay"):
        WireFault(extra_delay=-1e-6)
    with pytest.raises(ValueError, match="copies"):
        WireFault(copies=-1)


# -- remote peer registry -------------------------------------------------


def test_remote_registry_rejects_conflicts():
    _, fabric = make_world()
    with pytest.raises(ValueError, match="duplicate"):
        fabric.register_remote("far", "nodeF")
    with pytest.raises(ValueError, match="local endpoint"):
        fabric.register_remote("local", "nodeL")


def test_send_to_unknown_address_still_raises():
    _, fabric = make_world()
    from repro.net import Message

    with pytest.raises(KeyError):
        fabric.send(Message(src="local", dst="nowhere", size_bytes=8,
                            payload=None))


# -- boundary transfers ---------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=1 << 20),
    extra_delay=st.floats(min_value=0.0, max_value=1e-3,
                          allow_nan=False),
)
def test_boundary_recv_never_undercuts_lookahead(size, extra_delay):
    """Property: a cross-LP send at ``t`` lands no earlier than
    ``t + min_cross_node_latency()``, whatever the size or (validated
    non-negative) fault delay -- the conservative-safety precondition."""
    from repro.net import Message

    sim, fabric = make_world()
    lookahead = fabric.config.min_cross_node_latency()
    msg = Message(src="local", dst="far", size_bytes=size, payload=None)
    send_ts = sim.now

    class Hook:
        def on_message(self, m, src_ep, dst_ep):
            return WireFault(extra_delay=extra_delay)

    fabric.fault_hook = Hook()
    recv_at = fabric.send(msg)
    assert recv_at >= send_ts + lookahead
    (out_send, out_recv, out_msg) = fabric.boundary_outbox[-1]
    assert out_send == send_ts
    assert out_recv == recv_at
    assert out_msg is msg
    assert fabric.exported_bytes >= size


def test_export_import_ledger_roundtrip():
    from repro.net import Message

    sim, fabric = make_world()
    msg = Message(src="local", dst="far", size_bytes=64, payload={"k": 1})
    recv_at = fabric.send(msg)
    assert fabric.exported_bytes == 64
    assert len(fabric.boundary_outbox) == 1

    # The receiving side: a second fabric owning "far" imports it.
    sim2 = Simulator()
    fabric2 = Fabric(sim2, None)
    fabric2.create_endpoint("far", "nodeF")
    fabric2.inject_remote(msg, recv_at)
    assert fabric2.imported_bytes == 64
    sim2.run()
    assert fabric2.delivered_bytes == 64
    assert fabric2.inflight_bytes == 0
