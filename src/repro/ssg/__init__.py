"""SSG: Scalable Service Groups (Mochi core component)."""

from .group import SSGError, SSGGroup

__all__ = ["SSGError", "SSGGroup"]
