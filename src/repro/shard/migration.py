"""REMI-style shard migration driven by SSG view changes and hot-spot
detectors.

The :class:`ShardManager` owns the authoritative ring + placement map.
On every membership view it rebuilds the map, diffs it against the old
one, and turns each move into a migration:

* **failover** — the source died with its data; the destination merely
  adopts an empty shard (``shard_assign``).  Lost bytes are lost, and
  accounted as such.
* **handoff** — the source is alive (a revived node re-entering the
  ring): the source fences the shard, then a migration ULT on the
  *source process* pushes the content to the destination over an RDMA
  bulk transfer (``shard_install``), exactly REMI's origin-push shape.
* **rebalance** — same wire protocol as a handoff, but requested by a
  monitor hot-spot detector instead of a membership change.

Detector callbacks must not mutate the workload mid-sample, so
rebalance requests are deferred onto the simulator queue
(``sim.call_at``) and executed by one-shot ULTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..mercury import BulkRef
from ..ssg import SSGView
from .placement import ShardMap, ShardMove
from .service import RPC_INSTALL, ShardKvProvider

__all__ = ["MigrationRecord", "ShardManager"]

#: Forward timeout for migration control RPCs; migrations run during
#: churn, so they must never hang on a dead peer.
_MIGRATE_TIMEOUT = 2e-3


@dataclass
class MigrationRecord:
    """One shard migration, from decision to completion."""

    shard: int
    src: str
    dst: str
    kind: str  # "failover" | "handoff" | "rebalance"
    epoch: int
    start: float
    end: Optional[float] = None
    n_keys: int = 0
    nbytes: int = 0
    ok: bool = False

    def as_row(self) -> dict:
        return {
            "shard": self.shard,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "epoch": self.epoch,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "n_keys": self.n_keys,
            "nbytes": self.nbytes,
            "ok": self.ok,
        }


class ShardManager:
    """Owns ring + map, reacts to views, executes migrations."""

    def __init__(
        self,
        cluster,
        *,
        providers: dict[str, ShardKvProvider],
        group,
        ring,
        shard_map: ShardMap,
        provider_id: int = 1,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.providers = providers
        self.group = group
        self.ring = ring
        self.map = shard_map
        self.provider_id = provider_id
        self.records: list[MigrationRecord] = []
        #: Shards with a migration currently in flight (duplicate guard).
        self._migrating: set[int] = set()
        #: Shards whose data was lost to a failover (conservation audits
        #: exempt exactly these).
        self.lost_shards: set[int] = set()

    # -- membership-driven migration ---------------------------------------

    def on_view(self, view: SSGView) -> None:
        """Rebuild placement for ``view`` and launch the shard moves."""
        members = set(view.members)
        for addr in sorted(self.providers):
            # Crashed processes lose their volatile shard state the
            # moment the membership service evicts them.
            if addr not in members and self._crashed(addr):
                self.providers[addr].wipe()
        for addr in [a for a in self.ring.nodes if a not in members]:
            self.ring.remove_node(addr)
        for addr in [a for a in view.members if a not in self.ring]:
            self.ring.add_node(addr)
        new_map = ShardMap.build(self.ring, self.map.n_shards, view.epoch)
        moves = self.map.diff(new_map)
        self.map = new_map
        for move in moves:
            src_alive = move.src in members and not self._crashed(move.src)
            kind = "handoff" if src_alive else "failover"
            self._launch(move, kind, view.epoch)

    def _crashed(self, addr: str) -> bool:
        mi = self.cluster.processes.get(addr)
        return mi is None or mi.crashed

    # -- detector-driven rebalance -----------------------------------------

    def request_rebalance(self, shard: int, dst: str) -> bool:
        """Move ``shard`` to ``dst`` (hot-spot spreading).  Safe to call
        from a monitor sample tick: execution is deferred onto the event
        queue.  Returns False if the move is a no-op or already runs."""
        src = self.current_owner(shard)
        if (
            src is None
            or src == dst
            or dst not in self.group
            or self._crashed(dst)
            or shard in self._migrating
        ):
            return False
        move = ShardMove(shard=shard, src=src, dst=dst)
        self.sim.call_at(
            self.sim.now, self._launch, move, "rebalance", self.group.epoch
        )
        self._migrating.add(shard)
        return True

    def current_owner(self, shard: int) -> Optional[str]:
        """The process actually storing ``shard`` right now (data truth,
        not map opinion)."""
        for addr in sorted(self.providers):
            if self._crashed(addr):
                continue
            if shard in self.providers[addr].shards:
                return addr
        return None

    # -- execution ----------------------------------------------------------

    def _launch(self, move: ShardMove, kind: str, epoch: int) -> None:
        record = MigrationRecord(
            shard=move.shard,
            src=move.src,
            dst=move.dst,
            kind=kind,
            epoch=epoch,
            start=self.sim.now,
        )
        self.records.append(record)
        self._migrating.add(move.shard)
        if kind == "failover":
            self.lost_shards.add(move.shard)
            admin = self.providers[move.dst].mi
            admin.client_ult(
                self._run_assign(admin, record), f"failover-s{move.shard}"
            )
        else:
            src_mi = self.providers[move.src].mi
            src_mi.client_ult(
                self._run_push(src_mi, record), f"migrate-s{move.shard}"
            )

    def _run_assign(self, mi, record: MigrationRecord) -> Generator:
        """Adopt an empty shard on the destination's own process — the
        previous owner is dead, there is nothing to pull."""
        try:
            record.ok = yield from self.providers[record.dst].adopt_shard_ult(
                record.shard
            )
        except Exception:
            record.ok = False
        record.end = self.sim.now
        self._migrating.discard(record.shard)

    def _run_push(self, mi, record: MigrationRecord) -> Generator:
        """Origin-push migration ULT: fence, scan, bulk-push, drop."""
        provider = self.providers[record.src]
        db = provider.fence_shard(record.shard, record.dst)
        if db is None:
            record.end = self.sim.now
            self._migrating.discard(record.shard)
            return
        try:
            pairs = yield from db.list_keyvals("", None)
            nbytes = db.bytes_stored
            out = yield from mi.forward(
                record.dst,
                RPC_INSTALL,
                {
                    "shard": record.shard,
                    "epoch": record.epoch,
                    "bulk": BulkRef(pairs, nbytes),
                },
                self.provider_id,
                timeout=_MIGRATE_TIMEOUT,
            )
            record.ok = out["ret"] == 0
            record.n_keys = out.get("n_keys", len(pairs))
            record.nbytes = out.get("nbytes", nbytes)
            pvars = mi.hg.pvars
            pvars.add_at(provider._pv_mig_out, 1)
            pvars.add_at(provider._pv_bytes_out, record.nbytes)
            mi.stats.add_memory(-nbytes)
        except Exception:
            # The push failed (destination died mid-transfer): restore
            # the shard locally so the data is not stranded in limbo.
            record.ok = False
            provider.shards[record.shard] = db
            provider.forwards.pop(record.shard, None)
        record.end = self.sim.now
        self._migrating.discard(record.shard)

    # -- reporting -----------------------------------------------------------

    def completed(self, kind: Optional[str] = None) -> list[MigrationRecord]:
        return [
            r
            for r in self.records
            if r.ok and (kind is None or r.kind == kind)
        ]

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        for r in self.records:
            if r.ok:
                by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
        return {
            "migrations": len(self.records),
            "completed": sum(1 for r in self.records if r.ok),
            "by_kind": dict(sorted(by_kind.items())),
            "moved_keys": sum(r.n_keys for r in self.records if r.ok),
            "moved_bytes": sum(r.nbytes for r in self.records if r.ok),
            "lost_shards": sorted(self.lost_shards),
        }
