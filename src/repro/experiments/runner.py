"""Parallel fan-out of deterministic experiment cells.

Every experiment in this repository is a pure function of its seed and
configuration, so a study decomposes into independent ``(seed, config)``
*cells*.  :func:`map_cells` dispatches cells across a pool of worker
processes and returns results in submission order, so the merged output
of ``--jobs N`` is byte-identical to ``--jobs 1`` -- parallelism must
never observably reorder anything (determinism is this repository's
law; see ``docs/performance.md``).

Two properties of the pool matter beyond ordering:

* **One-time setup is hoisted into an initializer.**  Workers used to
  pay the heavy experiment-stack import (and any machine calibration a
  cell triggers) lazily inside the first cell they executed;
  :func:`_warm_worker` now runs once per worker at startup, and the
  parent warms the :func:`repro.bench.harness.calibrate` cache before
  forking so children inherit the constant copy-on-write instead of
  re-spinning the loop.
* **Workers are non-daemonic** (``ProcessPoolExecutor``, fork
  context), so a cell may itself fan out -- ``--jobs`` composes with
  the parallel kernel's ``--workers`` LP processes; daemonic
  ``multiprocessing.Pool`` workers cannot have children.

Cell workers are module-level functions taking one picklable dict, as
the pool requires.  Wall-clock fields returned by workers (the overhead
study times itself) naturally vary with ``jobs``; callers that promise
identical output across job counts must print only simulated quantities.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = [
    "fault_campaign_cell",
    "fuzz_check_cell",
    "map_cells",
    "overhead_cell",
    "run_fault_campaigns",
]


def _warm_worker() -> None:
    """Per-worker one-time setup, run by the pool initializer.

    Imports the experiment stack (simulator, fabric, services, the
    experiment modules every cell worker reaches for) once at worker
    start instead of once inside the first cell, and warms the bench
    calibration cache so a cell that asks for machine metadata does
    not re-run the spin loop.  Future per-process setup belongs here.
    """
    import repro.cluster  # noqa: F401  pulls sim/net/margo/symbiosys
    import repro.experiments.faults  # noqa: F401
    import repro.experiments.hepnos  # noqa: F401
    import repro.validate.fuzz  # noqa: F401


def map_cells(worker: Callable, cells: Iterable, jobs: int = 1) -> list:
    """Run ``worker`` over every cell, ``jobs`` at a time.

    Results come back in cell order regardless of completion order
    (``Executor.map`` preserves input order), so merging is
    deterministic.  ``jobs <= 1`` runs inline -- no pool, no pickling
    requirements.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    # Warm the calibration constant in the parent: the fork below hands
    # every worker the cached value copy-on-write.
    from ..bench.harness import calibrate

    calibrate()
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)),
        mp_context=multiprocessing.get_context("fork"),
        initializer=_warm_worker,
    ) as pool:
        return list(pool.map(worker, cells))


# -- cell workers (module level: the pool pickles them by name) ----------


def overhead_cell(cell: dict) -> dict:
    """One (stage, repetition) run of the overhead study.

    Returns plain floats, not the experiment result -- collectors hold
    the full trace and are expensive to ship between processes.
    """
    from .hepnos import run_hepnos_experiment

    t0 = time.perf_counter()
    result = run_hepnos_experiment(
        cell["config"],
        events_per_client=cell["events_per_client"],
        stage=cell["stage"],
        preset=cell["preset"],
        seed=cell["seed"],
        monitoring=cell["monitoring"],
    )
    return {
        "wall": time.perf_counter() - t0,
        "makespan": result.makespan,
        "trace_events": result.collector.total_trace_events,
    }


def fault_campaign_cell(cell: dict):
    """One seeded baseline-vs-faulted Sonata campaign."""
    from .faults import run_fault_campaign

    return run_fault_campaign(**cell)


def fuzz_check_cell(cell: dict):
    """One fuzz configuration's double-run determinism check; returns
    the failure detail string or None."""
    from ..validate.fuzz import FuzzConfig, check_config

    return check_config(FuzzConfig.from_dict(cell))


# -- multi-seed campaigns ------------------------------------------------


def run_fault_campaigns(
    seeds: Sequence[int], jobs: int = 1, **kwargs
) -> list:
    """Run the fault campaign once per seed (see
    :func:`~repro.experiments.faults.run_fault_campaign` for ``kwargs``);
    results are ordered by seed."""
    cells = [dict(kwargs, seed=seed) for seed in seeds]
    return map_cells(fault_campaign_cell, cells, jobs=jobs)
