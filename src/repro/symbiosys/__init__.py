"""SYMBIOSYS: integrated performance instrumentation, measurement, and
analysis for HPC microservices (the paper's core contribution).

Public surface:

* :class:`SymbiosysCollector` -- create per-process instrumentation and
  consolidate profiles/traces at the end of a run.
* :class:`Stage` -- Baseline / Stage 1 / Stage 2 / Full Support.
* :mod:`repro.symbiosys.analysis` -- the three analysis scripts.
* :mod:`repro.symbiosys.zipkin` -- Zipkin JSON trace export.
"""

from .callpath import MAX_DEPTH, CallpathRegistry, components, depth, hash16, push
from .collector import SymbiosysCollector
from .instrument import SymbiosysInstrumentation
from .policy import (
    DedicateProgressES,
    GrowHandlerPool,
    MetricSample,
    Policy,
    PolicyAction,
    PolicyEngine,
    RaiseOfiMaxEvents,
)
from .profiling import INTERVALS, IntervalStats, ProfileKey, ProfileStore
from .stages import Stage
from .tracing import EventKind, TraceBuffer, TraceEvent

__all__ = [
    "CallpathRegistry",
    "DedicateProgressES",
    "EventKind",
    "GrowHandlerPool",
    "MetricSample",
    "Policy",
    "PolicyAction",
    "PolicyEngine",
    "RaiseOfiMaxEvents",
    "INTERVALS",
    "IntervalStats",
    "MAX_DEPTH",
    "ProfileKey",
    "ProfileStore",
    "Stage",
    "SymbiosysCollector",
    "SymbiosysInstrumentation",
    "TraceBuffer",
    "TraceEvent",
    "components",
    "depth",
    "hash16",
    "push",
]
