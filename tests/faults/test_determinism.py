"""Seed-for-seed reproducibility of fault campaigns."""

from repro.experiments.faults import run_fault_campaign
from repro.faults import DelayRule, DropRule, DuplicateRule, FaultPlan, RestartFault
from repro.margo import MargoTimeoutError, RetryPolicy

from .conftest import make_echo_cluster


_PLAN = FaultPlan(
    name="determinism",
    wire_rules=[
        DropRule(kind="rpc_request", probability=0.3),
        DuplicateRule(kind="rpc_request", probability=0.2),
        DelayRule(kind="rpc_response", extra=50e-6, spread=50e-6, probability=0.4),
    ],
    process_faults=[RestartFault(addr="svr", at=1e-3, downtime=0.5e-3)],
)

_RETRY = RetryPolicy(max_attempts=4, timeout=0.5e-3, backoff=0.1e-3)


def _run_echo_burst(seed):
    """A fixed 20-call workload under _PLAN; returns (trace, outcomes)."""
    world = make_echo_cluster(plan=_PLAN, retry=_RETRY, seed=seed)
    outcomes = []

    def one(i):
        try:
            out = yield from world.client.forward("svr", "echo", {"i": i})
            outcomes.append(("ok", out["echo"]["i"], world.sim.now))
        except MargoTimeoutError:
            outcomes.append(("timeout", i, world.sim.now))

    for i in range(20):
        world.client.client_ult(one(i))
    world.sim.run_until(lambda: len(outcomes) == 20, limit=1.0)
    trace = world.injector.event_trace()
    world.cluster.shutdown()
    return trace, outcomes


def test_same_seed_same_trace_and_outcomes():
    trace_a, out_a = _run_echo_burst(seed=7)
    trace_b, out_b = _run_echo_burst(seed=7)
    assert trace_a, "plan fired no faults -- test is vacuous"
    assert trace_a == trace_b
    assert out_a == out_b


def test_different_seed_different_trace():
    trace_a, _ = _run_echo_burst(seed=7)
    trace_b, _ = _run_echo_burst(seed=8)
    assert trace_a != trace_b


def test_campaign_reports_are_byte_identical():
    kw = dict(seed=11, n_records=200, batch_size=50)
    first = run_fault_campaign(**kw)
    second = run_fault_campaign(**kw)
    assert first.report() == second.report()
    assert first.fault_events == second.fault_events


def test_campaign_seed_changes_outcome():
    a = run_fault_campaign(seed=11, n_records=200, batch_size=50)
    b = run_fault_campaign(seed=12, n_records=200, batch_size=50)
    assert a.report() != b.report()
