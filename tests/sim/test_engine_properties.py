"""Property-based tests for kernel scheduling invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator, Timeout


@given(st.lists(st.floats(0, 1e3, allow_nan=False), min_size=1, max_size=60))
@settings(max_examples=80)
def test_callbacks_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.call_at(d, fired.append, (d, i))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=80)
def test_equal_times_fire_fifo(delays):
    sim = Simulator()
    fired = []
    # Half the entries share one timestamp: FIFO among them.
    for i, d in enumerate(delays):
        when = 5.0 if i % 2 == 0 else d
        sim.call_at(when, fired.append, (when, i))
    sim.run()
    same = [i for t, i in fired if t == 5.0]
    assert same == sorted(same)


@given(
    st.lists(
        st.lists(st.floats(1e-6, 10, allow_nan=False), min_size=1, max_size=6),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50)
def test_tasks_accumulate_their_delays(task_delays):
    sim = Simulator()
    results = {}

    def proc(tag, delays):
        for d in delays:
            yield Timeout(d)
        results[tag] = sim.now

    for tag, delays in enumerate(task_delays):
        sim.spawn(proc(tag, delays))
    sim.run()
    for tag, delays in enumerate(task_delays):
        assert abs(results[tag] - sum(delays)) < 1e-9 * max(1, sum(delays))


@given(st.integers(1, 40), st.integers(1, 8))
@settings(max_examples=40)
def test_scheduler_conserves_ults(n_ults, n_es):
    """Every spawned ULT terminates; blocked count returns to zero."""
    from repro.argobots import AbtRuntime, Compute

    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    for _ in range(n_es):
        rt.create_xstream(pool)
    ev = rt.eventual()

    def waiter():
        yield from ev.wait()
        yield Compute(1e-6)

    def releaser():
        yield Compute(1e-3)
        ev.signal("go")

    for _ in range(n_ults):
        rt.spawn(waiter(), pool)
    rt.spawn(releaser(), pool)
    sim.run(until=1.0)
    assert rt.total_finished == rt.total_spawned == n_ults + 1
    assert rt.num_blocked == 0
    assert rt.num_ready == 0


@given(st.integers(2, 6), st.integers(2, 20))
@settings(max_examples=30)
def test_mutex_serialization_conservation(n_es, n_writers):
    """Total time inside a mutex-protected section equals the sum of the
    individual critical sections, regardless of ES count."""
    from repro.argobots import AbtRuntime, Compute

    sim = Simulator()
    rt = AbtRuntime(sim, ctx_switch_cost=0.0)
    pool = rt.create_pool()
    for _ in range(n_es):
        rt.create_xstream(pool)
    m = rt.mutex()
    section = 1e-3
    spans = []

    def writer():
        yield from m.lock()
        start = sim.now
        yield Compute(section)
        m.unlock()
        spans.append((start, sim.now))

    for _ in range(n_writers):
        rt.spawn(writer(), pool)
    sim.run(until=10.0)
    assert len(spans) == n_writers
    spans.sort()
    # No overlap, and the last section ends at >= n * section.
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12
    assert spans[-1][1] >= n_writers * section - 1e-9
