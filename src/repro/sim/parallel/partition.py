"""Partitioning a simulation into logical processes.

An :class:`LPSpec` names one LP and carries a *builder*: a callable
that receives an :class:`~repro.sim.parallel.lp.LPContext` and
populates that LP's private :class:`~repro.cluster.Cluster` -- its
processes, providers, remote-peer declarations, and workload
coroutines.  A :class:`PartitionPlan` groups the LP specs with the
shared knobs (seed, fabric config, limits) and derives the
*lookahead* from the fabric's minimum cross-node latency.

Partitioning rules (validated at kernel init):

* One simulated node lives in exactly one LP.  Intra-node traffic
  (``intra_node_latency`` = 0.4 us by default) never crosses an LP
  boundary, so the lookahead only has to cover the *cross-node* floor
  (``latency`` = 1.5 us by default).
* Every ``register_remote(addr, node)`` declaration must name a
  process that some other LP actually created, on the node it
  actually lives on.
* ``jitter_sigma > 0`` needs a declared ``jitter_bound``: the raw
  lognormal wire-time multiplier has no positive lower bound, but
  truncated sampling clamps every latency at ``latency -
  jitter_bound``, which becomes the lookahead
  (:meth:`~repro.net.FabricConfig.min_cross_node_latency`; it raises
  for jitter without a bound).  Delay faults are fine --
  ``extra_delay`` is validated non-negative, which can only push wire
  times *above* the floor.

Plans are usually derived, not hand-written:
:meth:`PartitionPlan.from_topology` packs a
:class:`~repro.sim.parallel.topology.ClusterTopology` into LPs with a
deterministic traffic-weighted greedy bin-packing.  Hand-declared
``LPSpec`` lists remain the explicit override.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ...net import FabricConfig
from .topology import ClusterTopology

__all__ = ["LPSpec", "PartitionPlan"]


@dataclass
class LPSpec:
    """One logical process: a name plus the builder that populates it.

    The builder runs inside the worker that owns the LP (under
    ``multiprocessing`` it runs after the fork, in the child), so it
    may close over arbitrary objects -- nothing about it is pickled.
    """

    name: str
    builder: Callable[[Any], None]  # receives an LPContext


@dataclass
class PartitionPlan:
    """Everything the kernel needs to execute a partitioned run."""

    lps: list[LPSpec]
    seed: int = 0
    #: Shared by every LP's fabric; also the source of the lookahead.
    fabric_config: Optional[FabricConfig] = None
    #: Hard ceiling on simulated time; exceeding it before every LP's
    #: done event fires is an error (mirrors the serial workloads'
    #: ``run_until_event(..., limit=...)`` convention).
    limit: float = 5.0
    #: Extra simulated time windowed through after the workload
    #: completes, so in-flight tails (responses, retries, monitor
    #: ticks) drain deterministically before per-LP shutdown.
    quiesce: float = 2e-3
    #: Keyword arguments applied to every per-LP ``Cluster`` (stage,
    #: monitoring, validate, retry, ...).  ``seed`` and
    #: ``fabric_config`` come from the plan itself.
    cluster_kw: dict = field(default_factory=dict)
    #: Assemble per-LP export artifacts (prometheus/CSV/perfetto/
    #: profile) at finish.  Benchmarks switch this off.
    collect: bool = True
    #: Display name for reports.
    name: str = "partitioned"

    def __post_init__(self) -> None:
        if not self.lps:
            raise ValueError("PartitionPlan needs at least one LP")
        names = [lp.name for lp in self.lps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate LP names: {names}")
        for key in ("seed", "fabric_config"):
            if key in self.cluster_kw:
                raise ValueError(
                    f"cluster_kw[{key!r}] conflicts with the plan field"
                )
        # Fail early: an invalid fabric (jitter, non-positive latency)
        # has no conservative lookahead.
        self.lookahead()

    def lookahead(self) -> float:
        """The conservative window width, from the fabric's floor."""
        config = self.fabric_config or FabricConfig()
        return config.min_cross_node_latency()

    @property
    def n_lps(self) -> int:
        return len(self.lps)

    @classmethod
    def from_topology(
        cls,
        topology: ClusterTopology,
        workers: int,
        **plan_kw: Any,
    ) -> "PartitionPlan":
        """Derive a plan from a deployed topology -- no hand-written
        LP declarations.

        ``workers`` is the *target* LP count (capped at the number of
        node groups); it is baked into the plan, so executing the
        result with any ``--workers`` value yields byte-identical
        digests.  Each derived LP is named ``part<i>`` and runs
        ``topology.builder(ctx, local_groups)`` with the sorted group
        names the traffic-weighted greedy bin-packing assigned to it.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        assignment = topology.assign(workers)

        def make_builder(local: list[str]) -> Callable[[Any], None]:
            def build(ctx: Any) -> None:
                topology.builder(ctx, local)

            return build

        plan_kw.setdefault("name", topology.name)
        return cls(
            lps=[
                LPSpec(f"part{i}", make_builder(local))
                for i, local in enumerate(assignment)
            ],
            **plan_kw,
        )
