"""Discrete-event simulation kernel.

The kernel is the foundation for every substrate in this repository: the
Argobots user-level threading runtime, the OFI-like network fabric, the
Mercury RPC library, and the Margo layer are all built as tasks scheduled
on a single :class:`Simulator`.

Tasks are plain Python generators.  A task communicates with the kernel by
yielding *waitables*:

* :class:`Timeout` -- resume the task after a fixed amount of simulated time.
* :class:`SimEvent` -- resume the task when the event is fired; the value
  passed to :meth:`SimEvent.succeed` becomes the result of the ``yield``.
* :class:`AnyOf` -- resume when the first of several waitables completes.

Subroutines compose with ``yield from``; the kernel never needs to know
about nesting.

Determinism law (load-bearing for the golden-trace corpus): events
scheduled for the same timestamp fire in the order they were scheduled.
Two structures uphold it:

* a ``heapq`` of ``(time, seq, fn, args)`` entries for future events,
  with a monotonically increasing sequence number breaking timestamp
  ties, and
* a plain FIFO *fast lane* (a ``deque``) for events scheduled at the
  **current** instant -- the dominant case (an event fires, a task
  resumes, a spawn takes its first step) -- which bypasses the heap
  entirely.

The split preserves global ordering because once ``now`` has advanced to
``T``, a heap entry at ``T`` can no longer be created (``call_at(T)``
lands in the fast lane), so every heap entry at ``T`` predates -- and
therefore precedes, by sequence number -- every fast-lane entry; the run
loop drains same-time heap entries before the lane.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "Task",
    "SimulationError",
    "StopSimulation",
    "all_of",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations (e.g. yielding a
    non-waitable, or firing an event twice)."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


class _Waitable:
    """Base class for objects a task may ``yield`` to the kernel."""

    __slots__ = ()

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Resume the yielding task after ``delay`` units of simulated time."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        delay = self.delay
        if delay == 0.0:
            # Zero-delay resume: straight onto the same-instant lane.
            sim._ready.append((task._resume, (self.value,)))
        else:
            sim.call_at(sim.now + delay, task._resume, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class SimEvent(_Waitable):
    """A one-shot event that tasks can wait on.

    An event is fired at most once with :meth:`succeed` (or :meth:`fail`);
    every task waiting on it is resumed with the event's value, and tasks
    that wait on an already-fired event resume immediately.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        ready = self.sim._ready
        for cb in callbacks:
            # Callbacks run at the *current* simulated instant but through
            # the event queue, preserving deterministic FIFO ordering.
            ready.append((cb, (self,)))
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        ready = self.sim._ready
        for cb in callbacks:
            ready.append((cb, (self,)))
        return self

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        """Invoke ``cb(event)`` once the event fires (immediately if it
        already has)."""
        if self._fired:
            self.sim._ready.append((cb, (self,)))
        else:
            self._callbacks.append(cb)

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        self.add_callback(task._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        return f"SimEvent({self.name!r}, {state})"


class _AnyOfWaiter:
    """Shared first-wins state of one :class:`AnyOf` subscription."""

    __slots__ = ("task", "fired")

    def __init__(self, task: "Task"):
        self.task = task
        self.fired = False

    def fire(self, index: int, value: Any = None) -> None:
        if self.fired:
            return
        self.fired = True
        self.task._resume((index, value))


class _AnyOfBranch:
    """Event-callback adapter binding one branch index to its waiter."""

    __slots__ = ("waiter", "index")

    def __init__(self, waiter: _AnyOfWaiter, index: int):
        self.waiter = waiter
        self.index = index

    def __call__(self, ev: "SimEvent") -> None:
        self.waiter.fire(self.index, ev._value)


class AnyOf(_Waitable):
    """Wait for the first of several waitables; yields ``(index, value)``.

    Losing :class:`Timeout` branches are discarded harmlessly (their kernel
    callback becomes a no-op); losing :class:`SimEvent` branches are *not*
    consumed -- the event stays available to other waiters.
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Iterable[_Waitable]):
        self.branches = list(branches)
        if not self.branches:
            raise ValueError("AnyOf requires at least one branch")

    def _subscribe(self, sim: "Simulator", task: "Task") -> None:
        waiter = _AnyOfWaiter(task)
        for i, br in enumerate(self.branches):
            if isinstance(br, Timeout):
                sim.call_at(sim.now + br.delay, waiter.fire, i, br.value)
            elif isinstance(br, SimEvent):
                br.add_callback(_AnyOfBranch(waiter, i))
            else:
                raise SimulationError(
                    f"AnyOf supports Timeout and SimEvent branches, got {br!r}"
                )


class Task:
    """A running generator task.

    ``task.done`` is a :class:`SimEvent` fired with the generator's return
    value when it finishes (or failed with its exception).  The event is
    allocated lazily on first access -- most tasks (ULT bodies, progress
    loops) are never awaited through it, so the common case skips the
    event, its name string, and its callback list entirely.
    """

    __slots__ = (
        "sim", "gen", "name", "_done", "_finished", "_result", "_exc",
        "_gen_send", "_gen_throw",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "task")
        self._done: Optional[SimEvent] = None
        self._finished = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        # Bound once: _step runs on every resume of every task.
        self._gen_send = gen.send
        self._gen_throw = gen.throw

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def done(self) -> SimEvent:
        ev = self._done
        if ev is None:
            ev = self._done = SimEvent(self.sim, name=f"{self.name}.done")
            if self._finished:
                # Finished before anyone looked: materialize as already
                # fired, so late waiters resume immediately (the same
                # behaviour an eagerly created, already-fired event had).
                ev._fired = True
                ev._value = self._result
                ev._exc = self._exc
        return ev

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is None:
                yielded = self._gen_send(value)
            else:
                yielded = self._gen_throw(exc)
        except StopIteration as stop:
            self._finished = True
            self._result = stop.value
            if self._done is not None:
                self._done.succeed(stop.value)
            return
        except StopSimulation:
            raise
        except BaseException as caught:
            self._finished = True
            self._exc = caught
            observed = (
                self._done is not None and bool(self._done._callbacks)
            ) or self.sim.swallow_task_errors
            if self._done is not None:
                self._done.fail(caught)
            if not observed:
                raise
            return
        if not isinstance(yielded, _Waitable):
            raise SimulationError(
                f"task {self.name!r} yielded non-waitable {yielded!r}"
            )
        yielded._subscribe(self.sim, self)

    def _resume(self, value: Any = None) -> None:
        self._step(value, None)

    def _throw(self, exc: BaseException) -> None:
        self._step(None, exc)

    def _on_event(self, ev: SimEvent) -> None:
        if ev._exc is not None:
            self._step(None, ev._exc)
        else:
            self._step(ev._value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}, finished={self._finished})"


class _AllOfLatch:
    """Countdown callback shared by every branch of an :func:`all_of`."""

    __slots__ = ("done", "remaining")

    def __init__(self, done: SimEvent, remaining: int):
        self.done = done
        self.remaining = remaining

    def __call__(self, ev: SimEvent) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.done.succeed(self.done.sim.now)


def all_of(
    sim: "Simulator", events: Iterable[SimEvent], name: str = "all-of"
) -> SimEvent:
    """A latch event that fires once every event in ``events`` has fired.

    The latch's value is the simulated time at which the last branch
    completed.  Already-fired branches count immediately (through the
    queue, like any fired-event callback); an empty collection fires the
    latch at the current instant.
    """
    branches = list(events)
    done = SimEvent(sim, name=name)
    if not branches:
        return done.succeed(sim.now)
    latch = _AllOfLatch(done, len(branches))
    for ev in branches:
        ev.add_callback(latch)
    return done


class _Waker:
    """Disarmable stop hook for :meth:`Simulator.run_until_event`.

    Registered as an event callback; while armed it halts the running
    simulation at the event's firing instant.  Disarmed once the wait
    returns, so a stale registration (the wait timed out, the event
    fired later during a drain) is a no-op instead of a stray stop.
    """

    __slots__ = ("armed",)

    def __init__(self) -> None:
        self.armed = True

    def __call__(self, ev: SimEvent) -> None:
        if self.armed:
            raise StopSimulation()


class Simulator:
    """Deterministic discrete-event simulator.

    Future events live in a priority queue of ``(time, seq, callback,
    args)`` entries; events scheduled at the current instant ride the
    FIFO fast lane (see the module docstring for the ordering law).  All
    substrate behaviour -- scheduling, networking, RPC progress --
    reduces to callbacks on these two queues.
    """

    def __init__(self, *, swallow_task_errors: bool = False):
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        #: Same-instant FIFO fast lane: ``(callback, args)`` entries
        #: scheduled for the current ``now``.
        self._ready: deque[tuple[Callable, tuple]] = deque()
        self._seq = itertools.count()
        self.now: float = 0.0
        self._running = False
        #: Cumulative callbacks processed (cheap; exposed for the
        #: benchmark suite's events/sec accounting).
        self.events_processed = 0
        #: If True, a task that dies with an unhandled exception records it
        #: on ``task.done`` instead of aborting the simulation.  Used by the
        #: failure-injection tests.
        self.swallow_task_errors = swallow_task_errors

    # -- scheduling -------------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at simulated time ``when``."""
        now = self.now
        if when == now:
            self._ready.append((fn, args))
            return
        if when < now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {now}"
            )
        heapq.heappush(self._queue, (when, next(self._seq), fn, args))

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` units of simulated time."""
        self.call_at(self.now + delay, fn, *args)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this simulator."""
        return SimEvent(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> Task:
        """Start a generator as a task.  The first step runs at the current
        simulated instant (through the queue, preserving order)."""
        task = Task(self, gen, name=name)
        self._ready.append((task._resume, (None,)))
        return task

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process queued events.

        ``until`` bounds simulated time (inclusive); ``max_events`` bounds
        the number of processed callbacks (a runaway-loop backstop for
        tests).  Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        # Localized hot bindings: every name in the loop below is a local.
        queue = self._queue
        ready = self._ready
        ready_popleft = ready.popleft
        heappop = heapq.heappop
        now = self.now
        processed = 0
        try:
            while True:
                # Same-time heap entries predate (and so must precede)
                # everything in the fast lane -- see the ordering law.
                if queue and queue[0][0] <= now:
                    entry = heappop(queue)
                    try:
                        entry[2](*entry[3])
                    except StopSimulation:
                        processed += 1
                        break
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        break
                elif ready:
                    # Tight same-instant drain.  While now == T, call_at
                    # routes every new T-entry here (a past time raises),
                    # so no heap entry at <= now can appear mid-drain and
                    # the heap needs no re-peek until the lane is empty.
                    try:
                        while ready:
                            fn, args = ready_popleft()
                            fn(*args)
                            processed += 1
                            if (
                                max_events is not None
                                and processed >= max_events
                            ):
                                break
                    except StopSimulation:
                        processed += 1
                        break
                    if max_events is not None and processed >= max_events:
                        break
                elif queue:
                    when = queue[0][0]
                    if until is not None and when > until:
                        now = until
                        break
                    entry = heappop(queue)
                    now = self.now = when
                    try:
                        entry[2](*entry[3])
                    except StopSimulation:
                        processed += 1
                        break
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        break
                else:
                    if until is not None and until > now:
                        now = until
                    break
        finally:
            self.now = now
            self._running = False
            self.events_processed += processed
        return now

    def run_until_event(
        self, event: SimEvent, limit: Optional[float] = None
    ) -> bool:
        """Process events until ``event`` fires; the event-driven wait.

        Stops *at the firing instant*: the waker rides the event's
        callback list through the FIFO lane, so callbacks registered
        before this wait still run at that instant, and nothing after it
        -- no fixed-step idle tail -- is simulated.  ``limit`` bounds
        simulated time.  Returns whether the event has fired.
        """
        if event._fired:
            return True
        if event.sim is not self:
            raise SimulationError("event belongs to a different simulator")
        waker = _Waker()
        event.add_callback(waker)
        try:
            self.run(until=limit)
        finally:
            waker.armed = False
        return event._fired

    def run_until(
        self,
        predicate: Callable[[], bool],
        limit: float,
    ) -> bool:
        """Advance until ``predicate()`` is true or ``limit`` is reached.

        The predicate is checked after every processed event, so the
        simulation stops exactly at the instant the predicate flips --
        no events past it are processed.  The per-event check makes this
        the *convenience* wait for tests and ad-hoc probes; hot paths
        should signal completion through a :class:`SimEvent` and use
        :meth:`run_until_event`, which costs nothing per event.
        """
        if predicate():
            return True
        while self.now < limit and (self._ready or self._queue):
            if self._queue and not self._ready:
                when = self._queue[0][0]
                if when > limit:
                    self.now = limit
                    break
            self.run(until=limit, max_events=1)
            if predicate():
                return True
        if self.now < limit and not (self._ready or self._queue):
            self.now = limit
        return predicate()

    def run_window(self, end: float) -> int:
        """Process every event strictly before ``end`` and stop.

        The window-bounded hook of the conservative parallel kernel
        (:mod:`repro.sim.parallel`): a logical process executes the
        half-open window ``[now, end)``, so an event at exactly ``end``
        belongs to the *next* window and is left queued.  ``now`` is
        left at the last processed instant (never advanced to ``end``),
        which keeps a later ``call_at(end, ...)`` -- the injection path
        for boundary events arriving exactly on a window edge -- on the
        heap, ordered by sequence number with the events already there,
        instead of jumping the queue through the same-instant lane.

        Returns the number of callbacks processed.  Same-instant
        cascades at a timestamp below ``end`` drain fully (the fast
        lane empties before time advances), so the window boundary can
        never split the events of one instant.
        """
        before = self.events_processed
        while True:
            nxt = self.peek()
            if nxt is None or nxt >= end:
                break
            self.run(until=nxt)
        return self.events_processed - before

    def peek(self) -> Optional[float]:
        """Timestamp of the next queued event, or None if the queue is empty."""
        if self._ready:
            return self.now
        return self._queue[0][0] if self._queue else None

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
