"""In-situ policy-driven dynamic reconfiguration.

The paper's stated future work: "the creation of policy-driven
mechanisms whereby rules governing response to poor performance behavior
can be formulated and applied based on performance monitoring."  This
module implements that loop on top of the SYMBIOSYS data sources:

* a :class:`PolicyEngine` runs as a monitoring ULT on its own execution
  stream (so it observes rather than perturbs), samples live metrics --
  Mercury PVARs through a tool session, OFI queue depths, Argobots
  blocked/ready counts, handler-pool backlogs -- at a fixed period, and
* evaluates :class:`Policy` rules over the recent metric history; a rule
  whose condition holds (and whose cooldown has elapsed) applies its
  reconfiguration action to the live Margo instance.

Built-in policies target the paper's three §V-C root causes:

* :class:`RaiseOfiMaxEvents`   -- Figure 12's backed-up OFI event queue,
* :class:`DedicateProgressES`  -- Figure 11's starved progress ULT,
* :class:`GrowHandlerPool`     -- Figure 9's saturated handler pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..margo import MargoInstance

__all__ = [
    "MetricSample",
    "Policy",
    "PolicyAction",
    "PolicyEngine",
    "RaiseOfiMaxEvents",
    "DedicateProgressES",
    "GrowHandlerPool",
]


@dataclass(frozen=True)
class MetricSample:
    """One periodic observation of a process's live state."""

    time: float
    ofi_events_read: int  # num_ofi_events_read PVAR (last read batch)
    ofi_max_events: int  # current cap
    cq_depth: int  # instantaneous OFI completion-queue depth
    completion_queue_size: int  # Mercury completion queue
    num_blocked: int
    num_ready: int
    handler_backlog: int  # READY ULTs waiting in the handler pool
    handler_es: int


@dataclass
class PolicyAction:
    """Record of one applied reconfiguration (the engine's audit log)."""

    time: float
    policy: str
    description: str


class Policy:
    """Base rule: override :meth:`condition` and :meth:`apply`."""

    #: Minimum simulated seconds between two firings of this rule.
    cooldown: float = 1e-3
    #: Samples of history the condition needs before it can fire.
    min_history: int = 3

    def __init__(self) -> None:
        self.last_fired: Optional[float] = None
        self.times_fired = 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def condition(self, history: list[MetricSample]) -> bool:
        raise NotImplementedError

    def apply(self, mi: "MargoInstance") -> str:
        """Perform the reconfiguration; returns a description."""
        raise NotImplementedError

    def ready(self, now: float, history: list[MetricSample]) -> bool:
        if len(history) < self.min_history:
            return False
        if self.last_fired is not None and now - self.last_fired < self.cooldown:
            return False
        return self.condition(history)


class RaiseOfiMaxEvents(Policy):
    """If the OFI read batch keeps hitting the cap, the event queue is
    backed up (Figure 12's C5 signature): double the cap."""

    def __init__(
        self,
        *,
        window: int = 4,
        pegged_fraction: float = 0.75,
        factor: int = 2,
        max_cap: int = 256,
        cooldown: float = 1e-3,
    ):
        super().__init__()
        if not 0 < pegged_fraction <= 1:
            raise ValueError("pegged_fraction must be in (0, 1]")
        if factor < 2 or max_cap < 2:
            raise ValueError("factor and max_cap must be at least 2")
        self.window = window
        self.pegged_fraction = pegged_fraction
        self.factor = factor
        self.max_cap = max_cap
        self.cooldown = cooldown
        self.min_history = window

    def condition(self, history: list[MetricSample]) -> bool:
        recent = history[-self.window:]
        cap = recent[-1].ofi_max_events
        if cap >= self.max_cap:
            return False
        pegged = sum(1 for s in recent if s.ofi_events_read >= cap)
        return pegged / len(recent) >= self.pegged_fraction

    def apply(self, mi: "MargoInstance") -> str:
        old = mi.hg.ofi_max_events
        new = min(self.max_cap, old * self.factor)
        mi.set_ofi_max_events(new)
        return f"OFI_max_events {old} -> {new}"


class DedicateProgressES(Policy):
    """If the OFI queue stays deep even with a generous read cap, the
    progress ULT is starved for CPU (Figure 11's C5/C6 signature): give
    it a dedicated execution stream."""

    def __init__(self, *, window: int = 4, depth_threshold: int = 8,
                 cooldown: float = 1e-3):
        super().__init__()
        if depth_threshold < 1:
            raise ValueError("depth_threshold must be positive")
        self.window = window
        self.depth_threshold = depth_threshold
        self.cooldown = cooldown
        self.min_history = window

    def condition(self, history: list[MetricSample]) -> bool:
        recent = history[-self.window:]
        deep = sum(
            1
            for s in recent
            if s.cq_depth + s.completion_queue_size >= self.depth_threshold
        )
        return deep >= max(1, len(recent) // 2)

    def apply(self, mi: "MargoInstance") -> str:
        migrated = mi.enable_progress_thread()
        return (
            "progress loop moved to dedicated ES"
            if migrated
            else "progress ES already dedicated"
        )


class GrowHandlerPool(Policy):
    """If spawned handler ULTs keep queueing in the pool, the target
    lacks execution streams (Figure 9's C1 signature): add one."""

    def __init__(self, *, window: int = 4, backlog_per_es: float = 2.0,
                 max_es: int = 64, cooldown: float = 1e-3):
        super().__init__()
        if backlog_per_es <= 0 or max_es < 1:
            raise ValueError("backlog_per_es and max_es must be positive")
        self.window = window
        self.backlog_per_es = backlog_per_es
        self.max_es = max_es
        self.cooldown = cooldown
        self.min_history = window

    def condition(self, history: list[MetricSample]) -> bool:
        recent = history[-self.window:]
        if recent[-1].handler_es >= self.max_es:
            return False
        saturated = sum(
            1
            for s in recent
            if s.handler_backlog >= self.backlog_per_es * max(1, s.handler_es)
        )
        return saturated >= max(1, len(recent) // 2)

    def apply(self, mi: "MargoInstance") -> str:
        mi.add_handler_es()
        n = sum(1 for es in mi.rt.xstreams if es.pool is mi.handler_pool)
        return f"handler pool grown to {n} execution streams"


class PolicyEngine:
    """The in-situ monitoring + reconfiguration loop for one process."""

    def __init__(
        self,
        mi: "MargoInstance",
        policies: list[Policy],
        *,
        period: float = 100e-6,
        history_limit: int = 256,
        dedicated_es: bool = True,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.mi = mi
        self.policies = policies
        self.period = period
        self.history: list[MetricSample] = []
        self._history_limit = history_limit
        self.actions: list[PolicyAction] = []
        self._stopped = False
        # The engine is a PVAR-interface client, like any external tool.
        mi.hg.pvars_enabled = True
        self._session = mi.hg.pvar_session_init()
        # Bind the sampled PVARs to slot readers once; the periodic
        # sampling loop then reads without per-tick name resolution.
        self._read_ofi_events = self._session.reader("num_ofi_events_read")
        self._read_cq_size = self._session.reader("completion_queue_size")
        if dedicated_es:
            pool = mi.rt.create_pool(f"{mi.addr}.monitor")
            mi.rt.create_xstream(pool, f"{mi.addr}.es-monitor")
        else:
            pool = mi.primary_pool
        self._ult = mi.rt.spawn(self._loop(), pool, name=f"{mi.addr}.policy")

    def stop(self) -> None:
        self._stopped = True

    # -- sampling -------------------------------------------------------------

    def sample(self) -> MetricSample:
        mi = self.mi
        handler_backlog = (
            len(mi.handler_pool) if mi.handler_pool is not mi.primary_pool else 0
        )
        return MetricSample(
            time=mi.sim.now,
            ofi_events_read=self._read_ofi_events(),
            ofi_max_events=mi.hg.ofi_max_events,
            cq_depth=mi.endpoint.cq_depth,
            completion_queue_size=self._read_cq_size(),
            num_blocked=mi.rt.num_blocked,
            num_ready=mi.rt.num_ready,
            handler_backlog=handler_backlog,
            handler_es=sum(
                1 for es in mi.rt.xstreams if es.pool is mi.handler_pool
            ),
        )

    # -- the monitoring ULT ------------------------------------------------------

    def _loop(self) -> Generator:
        rt = self.mi.rt
        while not self._stopped:
            sample = self.sample()
            self.history.append(sample)
            if len(self.history) > self._history_limit:
                del self.history[: -self._history_limit]
            for policy in self.policies:
                if policy.ready(sample.time, self.history):
                    description = policy.apply(self.mi)
                    policy.last_fired = sample.time
                    policy.times_fired += 1
                    self.actions.append(
                        PolicyAction(
                            time=sample.time,
                            policy=policy.name,
                            description=description,
                        )
                    )
            yield from rt.sleep(self.period)
